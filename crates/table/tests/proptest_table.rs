//! Property-based tests for the table substrate: CSV round-trips,
//! normalization invariants, and sort/take consistency.

use proptest::prelude::*;
use rf_table::{
    read_csv_str, write_csv_string, Column, CsvOptions, NormalizationMethod, Normalizer, Table,
};

/// Strategy for a CSV-safe string cell (no exotic control characters, but
/// includes commas, quotes and spaces which must survive quoting).
fn cell_string() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ,\"_-]{0,12}"
}

proptest! {
    #[test]
    fn csv_roundtrip_preserves_table(
        names in prop::collection::vec("[a-z]{1,8}", 1..5),
        rows in 1usize..20,
        seed_values in prop::collection::vec(-1.0e4..1.0e4f64, 1..100),
    ) {
        // Build a table of float columns with unique names.
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        let mut table = Table::new();
        for (ci, name) in unique.iter().enumerate() {
            let values: Vec<f64> = (0..rows)
                .map(|r| seed_values[(ci * rows + r) % seed_values.len()])
                .collect();
            table.add_column(name.clone(), Column::from_f64(values)).unwrap();
        }
        let written = write_csv_string(&table);
        let parsed = read_csv_str(&written, &CsvOptions::default()).unwrap();
        prop_assert_eq!(parsed.num_rows(), table.num_rows());
        prop_assert_eq!(parsed.num_columns(), table.num_columns());
        for name in &unique {
            let orig = table.numeric_column(name).unwrap();
            let round = parsed.numeric_column(name).unwrap();
            for (a, b) in orig.iter().zip(round.iter()) {
                prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn csv_string_cells_roundtrip(cells in prop::collection::vec(cell_string(), 1..30)) {
        // A fully empty cell in a single-column table serializes to a blank
        // line, which CSV readers (including ours) skip; exclude that case.
        prop_assume!(cells.iter().all(|c| !c.is_empty()));
        let table = Table::from_columns(vec![(
            "label",
            Column::from_strings(cells.clone()),
        )]).unwrap();
        let written = write_csv_string(&table);
        let parsed = read_csv_str(&written, &CsvOptions::default()).unwrap();
        let round = parsed.categorical_column("label").unwrap();
        for (orig, got) in cells.iter().zip(round.iter()) {
            // Empty cells legitimately become nulls; everything else must match.
            if orig.is_empty() {
                prop_assert!(got.is_none() || got.as_deref() == Some(""));
            } else {
                prop_assert_eq!(Some(orig.as_str()), got.as_deref());
            }
        }
    }

    #[test]
    fn minmax_normalization_bounded_and_monotone(values in prop::collection::vec(-1.0e5..1.0e5f64, 2..64)) {
        // Skip the degenerate constant case which the normalizer rejects.
        let distinct = values.iter().any(|v| (v - values[0]).abs() > 1e-9);
        prop_assume!(distinct);
        let table = Table::from_columns(vec![("x", Column::from_f64(values.clone()))]).unwrap();
        let norm = Normalizer::fit(&table, &["x"], NormalizationMethod::MinMax).unwrap();
        let out = norm.transform_table(&table).unwrap();
        let transformed = out.numeric_column("x").unwrap();
        for &t in &transformed {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&t));
        }
        // Monotonicity: order of any two values is preserved.
        for i in 0..values.len() {
            for j in (i + 1)..values.len() {
                let before = values[i].partial_cmp(&values[j]).unwrap();
                let after = transformed[i].partial_cmp(&transformed[j]).unwrap();
                if before != std::cmp::Ordering::Equal {
                    prop_assert_eq!(before, after);
                }
            }
        }
    }

    #[test]
    fn zscore_normalization_centres(values in prop::collection::vec(-1.0e4..1.0e4f64, 3..64)) {
        let distinct = values.iter().any(|v| (v - values[0]).abs() > 1e-6);
        prop_assume!(distinct);
        let table = Table::from_columns(vec![("x", Column::from_f64(values.clone()))]).unwrap();
        let norm = Normalizer::fit(&table, &["x"], NormalizationMethod::ZScore).unwrap();
        let out = norm.transform_table(&table).unwrap();
        let transformed = out.numeric_column("x").unwrap();
        let mean = rf_stats::mean(&transformed).unwrap();
        let sd = rf_stats::stddev(&transformed).unwrap();
        prop_assert!(mean.abs() < 1e-6, "mean {}", mean);
        prop_assert!((sd - 1.0).abs() < 1e-6, "sd {}", sd);
    }

    #[test]
    fn sort_take_is_permutation(values in prop::collection::vec(-1.0e5..1.0e5f64, 1..64)) {
        let table = Table::from_columns(vec![("score", Column::from_f64(values.clone()))]).unwrap();
        let sorted = table.sort_by("score", true).unwrap();
        prop_assert_eq!(sorted.num_rows(), table.num_rows());
        let mut orig = values.clone();
        let mut got = sorted.numeric_column("score").unwrap();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in orig.iter().zip(got.iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        // And the sorted order is non-increasing.
        let ordered = sorted.numeric_column("score").unwrap();
        for pair in ordered.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-12);
        }
    }

    #[test]
    fn head_never_exceeds_rows(values in prop::collection::vec(-10.0..10.0f64, 0..32), n in 0usize..64) {
        if values.is_empty() {
            return Ok(());
        }
        let table = Table::from_columns(vec![("x", Column::from_f64(values.clone()))]).unwrap();
        let head = table.head(n);
        prop_assert_eq!(head.num_rows(), n.min(values.len()));
    }

    #[test]
    fn fingerprint_changes_under_any_single_cell_mutation(
        values in prop::collection::vec(-1.0e3..1.0e3f64, 2..40),
        labels in prop::collection::vec("[g-s]{1,8}", 2..40),
        pick in 0usize..1000,
        bump in 1.0..100.0f64,
    ) {
        // Half-integer floats survive CSV round-trips exactly and are never
        // re-inferred as integers; [g-s] strings can never look like bools,
        // ints, or null markers.
        let rows = values.len().min(labels.len());
        let floats: Vec<f64> = values[..rows].iter().map(|v| v.floor() + 0.5).collect();
        let strings: Vec<String> = labels[..rows].to_vec();
        let table = Table::from_columns(vec![
            ("score", Column::from_f64(floats.clone())),
            ("label", Column::from_strings(strings.clone())),
        ]).unwrap();
        let base = table.fingerprint();

        // Mutating any one float cell changes the fingerprint.
        let row = pick % rows;
        let mut mutated_floats = floats.clone();
        mutated_floats[row] += bump.floor() + 1.0;
        let mutated = Table::from_columns(vec![
            ("score", Column::from_f64(mutated_floats)),
            ("label", Column::from_strings(strings.clone())),
        ]).unwrap();
        prop_assert_ne!(base, mutated.fingerprint());

        // Mutating any one string cell changes the fingerprint.
        let mut mutated_strings = strings.clone();
        mutated_strings[row] = format!("{}x", mutated_strings[row]);
        let mutated = Table::from_columns(vec![
            ("score", Column::from_f64(floats)),
            ("label", Column::from_strings(mutated_strings)),
        ]).unwrap();
        prop_assert_ne!(base, mutated.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_across_reloads(
        values in prop::collection::vec(-1.0e3..1.0e3f64, 2..40),
        labels in prop::collection::vec("[g-s]{1,8}", 2..40),
    ) {
        let rows = values.len().min(labels.len());
        let floats: Vec<f64> = values[..rows].iter().map(|v| v.floor() + 0.5).collect();
        let strings: Vec<String> = labels[..rows].to_vec();
        let build = || Table::from_columns(vec![
            ("score", Column::from_f64(floats.clone())),
            ("label", Column::from_strings(strings.clone())),
        ]).unwrap();
        let table = build();

        // Rebuilding from the same cells and cloning both preserve identity.
        prop_assert_eq!(table.fingerprint(), build().fingerprint());
        prop_assert_eq!(table.fingerprint(), table.clone().fingerprint());

        // A full CSV write → read round-trip preserves identity too: the
        // fingerprint addresses content, not the in-memory instance.
        let written = write_csv_string(&table);
        let reloaded = read_csv_str(&written, &CsvOptions::default()).unwrap();
        prop_assert_eq!(table.fingerprint(), reloaded.fingerprint());
    }
}
