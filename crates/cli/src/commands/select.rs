//! `ranking-facts select` — constrained top-k selection (EDBT 2018).

use crate::args::{parse_category_count, ParsedArgs};
use crate::commands::load_input;
use crate::error::{CliError, CliResult};
use rf_setsel::{
    expected_utility_ratio, offline_select, Candidate, ConstraintSet, GroupConstraint,
    OnlineSelector, OnlineStrategy,
};
use std::fmt::Write as _;

const ALLOWED: &[&str] = &[
    "dataset", "data", "rows", "seed", "utility", "category", "k", "floor", "ceiling", "strategy",
    "warmup", "runs", "sim-seed",
];

/// Runs the command.
///
/// # Errors
/// Returns a usage error for malformed options or an execution error when the
/// constraints are infeasible for the dataset.
pub fn run(args: &ParsedArgs) -> CliResult<String> {
    args.reject_unknown(ALLOWED)?;
    let (table, name) = load_input(args)?;
    let utility = args.require("utility")?;
    let category = args.require("category")?;
    let candidates =
        Candidate::from_table(&table, utility, category).map_err(CliError::execution)?;

    let k = args.get_usize("k", 10)?;
    let mut constraints = Vec::new();
    for spec in args.get_all("floor") {
        let (cat, count) = parse_category_count(spec)?;
        constraints.push(GroupConstraint::at_least(cat, count).map_err(CliError::execution)?);
    }
    for spec in args.get_all("ceiling") {
        let (cat, count) = parse_category_count(spec)?;
        match constraints.iter_mut().find(|c| c.category == cat) {
            Some(existing) => {
                *existing = GroupConstraint::new(cat, existing.floor, count)
                    .map_err(CliError::execution)?;
            }
            None => {
                constraints.push(GroupConstraint::at_most(cat, count).map_err(CliError::execution)?)
            }
        }
    }
    let constraints = ConstraintSet::new(k, constraints).map_err(CliError::execution)?;

    let strategy = match args.get("strategy").unwrap_or("secretary") {
        "greedy" => OnlineStrategy::Greedy,
        "secretary" => OnlineStrategy::secretary(),
        "warmup" => OnlineStrategy::Warmup {
            warmup_fraction: args.get_f64("warmup", 1.0 / std::f64::consts::E)?,
        },
        other => {
            return Err(CliError::usage(format!(
                "unknown strategy `{other}` (available: greedy, secretary, warmup)"
            )))
        }
    };

    let offline = offline_select(&candidates, &constraints).map_err(CliError::execution)?;
    let selector =
        OnlineSelector::new(constraints.clone(), strategy).map_err(CliError::execution)?;
    let runs = args.get_usize("runs", 50)?;
    let sim_seed = args.get_u64("sim-seed", 1)?;
    let summary = expected_utility_ratio(&candidates, &selector, runs, sim_seed)
        .map_err(CliError::execution)?;
    let single = selector
        .run_shuffled(&candidates, sim_seed)
        .map_err(CliError::execution)?;

    let mut out = String::new();
    let _ = writeln!(out, "=== Constrained selection — {name} ===");
    let _ = writeln!(
        out,
        "{} candidates; utility = {utility}, category = {category}; k = {k}",
        candidates.len()
    );
    for constraint in constraints.constraints() {
        let ceiling = if constraint.ceiling == usize::MAX {
            "k".to_string()
        } else {
            constraint.ceiling.to_string()
        };
        let _ = writeln!(
            out,
            "  constraint: {} in [{}, {}]",
            constraint.category, constraint.floor, ceiling
        );
    }

    let _ = writeln!(
        out,
        "\noffline optimum: utility {:.3}; per-category counts {:?}; {} item(s) forced by floors",
        offline.total_utility, offline.category_counts, offline.forced_by_floors
    );
    let _ = writeln!(
        out,
        "one online run (seed {sim_seed}): utility {:.3} ({:.1}% of offline); per-category counts {:?}",
        single.total_utility,
        100.0 * single.total_utility / offline.total_utility.max(f64::EPSILON),
        single.category_counts
    );
    let _ = writeln!(
        out,
        "\nover {runs} random arrival orders: utility ratio mean {:.3} (std {:.3}, min {:.3}, max {:.3});\n\
         constraints satisfied in {:.0}% of runs",
        summary.mean,
        summary.std_dev,
        summary.min,
        summary.max,
        100.0 * summary.constraint_satisfaction_rate
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    fn compas_args(extra: &[&str]) -> ParsedArgs {
        let mut tokens = vec![
            "select",
            "--dataset",
            "compas",
            "--rows",
            "300",
            "--seed",
            "5",
            "--utility",
            "decile_score",
            "--category",
            "race",
            "--k",
            "20",
            "--floor",
            "Other=8",
            "--ceiling",
            "African-American=12",
            "--runs",
            "10",
        ];
        tokens.extend_from_slice(extra);
        ParsedArgs::parse(tokens).unwrap()
    }

    #[test]
    fn select_reports_offline_online_and_ratio() {
        let out = run(&compas_args(&[])).unwrap();
        assert!(out.contains("offline optimum"));
        assert!(out.contains("one online run"));
        assert!(out.contains("random arrival orders"));
        assert!(out.contains("constraints satisfied in 100%"));
    }

    #[test]
    fn greedy_and_warmup_strategies_are_accepted() {
        assert!(run(&compas_args(&["--strategy", "greedy"])).is_ok());
        assert!(run(&compas_args(&["--strategy", "warmup", "--warmup", "0.25"])).is_ok());
        assert!(run(&compas_args(&["--strategy", "psychic"])).is_err());
    }

    #[test]
    fn floor_and_ceiling_for_the_same_category_combine() {
        let out = run(&compas_args(&["--floor", "African-American=5"])).unwrap();
        assert!(out.contains("African-American in [5, 12]"));
    }

    #[test]
    fn infeasible_constraints_are_execution_errors() {
        // A floor larger than the whole selection is rejected when building
        // the constraint set.
        let err = run(&compas_args(&["--floor", "Other=25"])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn missing_required_options_are_usage_errors() {
        let args = ParsedArgs::parse(["select", "--dataset", "compas", "--rows", "100"]).unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
