//! `ranking-facts design` — the scoring-function design view (Figure 3).

use crate::args::ParsedArgs;
use crate::commands::{build_scoring, load_input, parse_normalization};
use crate::error::{CliError, CliResult};
use rf_core::DesignView;
use std::fmt::Write as _;

const ALLOWED: &[&str] = &[
    "dataset",
    "data",
    "rows",
    "seed",
    "normalize",
    "bins",
    "preview-rows",
    "attribute",
    "score",
    "preview",
];

/// Runs the command.
///
/// # Errors
/// Returns a usage error for malformed options or an execution error from the
/// design-view construction.
pub fn run(args: &ParsedArgs) -> CliResult<String> {
    args.reject_unknown(ALLOWED)?;
    let (table, name) = load_input(args)?;
    let normalization = parse_normalization(args)?;
    let bins = args.get_usize("bins", 10)?;
    let preview_rows = args.get_usize("preview-rows", 5)?;
    let view = DesignView::build(&table, normalization, preview_rows, bins)
        .map_err(CliError::execution)?;

    let mut out = String::new();
    let _ = writeln!(out, "=== Scoring function design — {name} ===");
    let _ = writeln!(
        out,
        "{} rows; numeric attributes: {}; categorical attributes: {}",
        view.rows,
        view.numeric_attributes.join(", "),
        view.categorical_attributes.join(", ")
    );
    let _ = writeln!(out, "normalization: {}\n", view.normalization);
    let _ = writeln!(out, "--- data preview ---\n{}", view.data_preview);

    // Per-attribute summaries, optionally restricted to one attribute.
    let filter = args.get("attribute");
    for preview in &view.attribute_previews {
        if let Some(wanted) = filter {
            if preview.attribute != wanted {
                continue;
            }
        }
        let raw = &preview.raw_summary;
        let _ = writeln!(
            out,
            "--- {} ---\n  raw:        min {:.3}  median {:.3}  max {:.3}  mean {:.3}  stddev {:.3}",
            preview.attribute, raw.min, raw.median, raw.max, raw.mean, raw.stddev
        );
        if let Some(norm) = &preview.normalized_summary {
            let _ = writeln!(
                out,
                "  normalized: min {:.3}  median {:.3}  max {:.3}",
                norm.min, norm.median, norm.max
            );
        }
        let _ = writeln!(
            out,
            "  histogram ({} bins):",
            preview.histogram.counts.len()
        );
        let peak = preview
            .histogram
            .counts
            .iter()
            .copied()
            .max()
            .unwrap_or(1)
            .max(1);
        for (bin, &count) in preview.histogram.counts.iter().enumerate() {
            let lo = preview.histogram.min + bin as f64 * preview.histogram.bin_width;
            let bar_len = (count as f64 / peak as f64 * 40.0).round() as usize;
            let _ = writeln!(out, "    [{lo:>10.2}) {:<40} {count}", "#".repeat(bar_len));
        }
    }
    if let Some(wanted) = filter {
        if !view
            .attribute_previews
            .iter()
            .any(|p| p.attribute == wanted)
        {
            return Err(CliError::usage(format!(
                "`--attribute {wanted}` does not name a numeric attribute (available: {})",
                view.numeric_attributes.join(", ")
            )));
        }
    }

    // Optional ranking preview when a candidate scoring function is given.
    if args.get("score").is_some() {
        let scoring = build_scoring(args)?;
        let n = args.get_usize("preview", 10)?;
        let preview = view
            .preview_ranking(&table, &scoring, n)
            .map_err(CliError::execution)?;
        let _ = writeln!(
            out,
            "\n--- ranking preview (top {}) ---",
            preview.top_items.len()
        );
        for (rank, (item, score)) in preview
            .top_items
            .iter()
            .zip(preview.top_scores.iter())
            .enumerate()
        {
            let _ = writeln!(out, "  {:>2}. {item}  (score {score:.4})", rank + 1);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    #[test]
    fn design_view_lists_attributes_and_histograms() {
        let args = ParsedArgs::parse([
            "design",
            "--dataset",
            "cs",
            "--rows",
            "50",
            "--seed",
            "1",
            "--bins",
            "8",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("Scoring function design"));
        assert!(out.contains("GRE"));
        assert!(out.contains("histogram (8 bins)"));
        assert!(out.contains("data preview"));
    }

    #[test]
    fn attribute_filter_and_ranking_preview() {
        let args = ParsedArgs::parse([
            "design",
            "--dataset",
            "cs",
            "--rows",
            "50",
            "--attribute",
            "GRE",
            "--score",
            "PubCount=0.6,Faculty=0.4",
            "--preview",
            "5",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("--- GRE ---"));
        assert!(!out.contains("--- PubCount ---"));
        assert!(out.contains("ranking preview"));
        assert!(out.contains(" 5. "));
    }

    #[test]
    fn unknown_attribute_is_a_usage_error() {
        let args = ParsedArgs::parse([
            "design",
            "--dataset",
            "cs",
            "--rows",
            "30",
            "--attribute",
            "Ghost",
        ])
        .unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn zero_bins_is_an_execution_error() {
        let args = ParsedArgs::parse(["design", "--dataset", "cs", "--rows", "30", "--bins", "0"])
            .unwrap();
        assert!(run(&args).is_err());
    }
}
