//! `ranking-facts rerank` — repair an unfair ranking with FA*IR re-ranking.

use crate::args::{parse_attribute_value, ParsedArgs};
use crate::commands::{build_scoring, load_input};
use crate::error::{CliError, CliResult};
use rf_fairness::{FairRerank, FairStarTest, ProtectedGroup};
use std::fmt::Write as _;

const ALLOWED: &[&str] = &[
    "dataset",
    "data",
    "rows",
    "seed",
    "score",
    "normalize",
    "sensitive",
    "k",
    "p",
    "alpha",
    "no-adjust",
];

/// Runs the command.
///
/// # Errors
/// Returns a usage error for malformed options or an execution error from the
/// ranking / fairness pipeline (including infeasible re-ranks).
pub fn run(args: &ParsedArgs) -> CliResult<String> {
    args.reject_unknown(ALLOWED)?;
    let (table, name) = load_input(args)?;
    let scoring = build_scoring(args)?;
    let (attribute, value) = parse_attribute_value(args.require("sensitive")?)?;

    let ranking = scoring.rank_table(&table).map_err(CliError::execution)?;
    let group =
        ProtectedGroup::from_table(&table, &attribute, &value).map_err(CliError::execution)?;

    let k = args.get_usize("k", 10)?;
    let p = args.get_f64("p", group.protected_proportion())?;
    let alpha = args.get_f64("alpha", 0.05)?;
    let adjust = match args.get("no-adjust") {
        None | Some("false") => true,
        Some(_) => false,
    };

    let test = FairStarTest::new(k, p)
        .and_then(|t| t.with_alpha(alpha))
        .map(|t| t.with_adjustment(adjust))
        .map_err(CliError::execution)?;
    let before = test
        .evaluate(&group, &ranking)
        .map_err(CliError::execution)?;

    let reranker = FairRerank::new(k, p)
        .and_then(|r| r.with_alpha(alpha))
        .map(|r| r.with_adjustment(adjust))
        .map_err(CliError::execution)?;
    let outcome = reranker
        .rerank(&group, &ranking)
        .map_err(CliError::execution)?;
    let after = test
        .evaluate(&group, &outcome.reranked)
        .map_err(CliError::execution)?;

    let mut out = String::new();
    let _ = writeln!(out, "=== FA*IR re-ranking — {name} ===");
    let _ = writeln!(
        out,
        "protected feature: {attribute}={value} (overall proportion {:.3}); k = {k}, p = {p:.3}, alpha = {alpha}{}",
        group.protected_proportion(),
        if adjust { " (adjusted)" } else { " (unadjusted)" }
    );
    let _ = writeln!(
        out,
        "\nbefore: {}  (p-value {:.4}, protected in top-{k}: {})",
        if before.satisfied { "FAIR" } else { "UNFAIR" },
        before.p_value,
        before.observed_counts.last().copied().unwrap_or(0)
    );
    let _ = writeln!(
        out,
        "after:  {}  (p-value {:.4}, protected in top-{k}: {})",
        if after.satisfied { "FAIR" } else { "UNFAIR" },
        after.p_value,
        after.observed_counts.last().copied().unwrap_or(0)
    );
    let _ = writeln!(
        out,
        "\nrepair cost: {} item(s) boosted into the top-{k}, max boost {} positions,\n\
         total score loss {:.4} (mean {:.4} per audited position), Kendall tau to original {:.4}",
        outcome.boosted_into_top_k.len(),
        outcome.max_rank_boost,
        outcome.total_score_loss,
        outcome.mean_score_loss(),
        outcome.kendall_tau_to_original
    );
    if outcome.changed {
        let _ = writeln!(
            out,
            "\nrows boosted into the top-{k}: {:?}",
            outcome.boosted_into_top_k
        );
    } else {
        let _ = writeln!(
            out,
            "\nthe original ranking already satisfies the constraint; no change needed"
        );
    }
    let _ = writeln!(
        out,
        "\nre-ranked top-{k} (row indices): {:?}",
        outcome.reranked.top_k_indices(k)
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    fn compas_args(extra: &[&str]) -> ParsedArgs {
        let mut tokens = vec![
            "rerank",
            "--dataset",
            "compas",
            "--rows",
            "400",
            "--seed",
            "7",
            "--score",
            "decile_score=0.7,priors_count=0.3",
            "--sensitive",
            "race=African-American",
            "--k",
            "20",
        ];
        tokens.extend_from_slice(extra);
        ParsedArgs::parse(tokens).unwrap()
    }

    #[test]
    fn rerank_reports_before_and_after() {
        let out = run(&compas_args(&[])).unwrap();
        assert!(out.contains("before:"));
        assert!(out.contains("after:"));
        assert!(out.contains("repair cost"));
        assert!(out.contains("re-ranked top-20"));
    }

    #[test]
    fn rerank_requires_sensitive_and_score() {
        let args = ParsedArgs::parse(["rerank", "--dataset", "compas", "--rows", "100"]).unwrap();
        assert!(run(&args).is_err());
        let args = ParsedArgs::parse([
            "rerank",
            "--dataset",
            "compas",
            "--rows",
            "100",
            "--score",
            "decile_score=1.0",
        ])
        .unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn explicit_p_and_no_adjust_are_accepted() {
        let out = run(&compas_args(&["--p", "0.4", "--no-adjust", "true"])).unwrap();
        assert!(out.contains("p = 0.400"));
        assert!(out.contains("unadjusted"));
    }
}
