//! `ranking-facts generate` — export a built-in dataset as CSV.

use crate::args::ParsedArgs;
use crate::commands::{load_input, write_or_return};
use crate::error::{CliError, CliResult};
use rf_table::write_csv_string;

/// Runs the command.
///
/// # Errors
/// Returns a usage error for missing / unknown options or an I/O error when
/// `--out` cannot be written.
pub fn run(args: &ParsedArgs) -> CliResult<String> {
    args.reject_unknown(&["dataset", "rows", "seed", "out"])?;
    if args.get("dataset").is_none() {
        return Err(CliError::usage(
            "`generate` requires `--dataset cs|compas|german|synth`",
        ));
    }
    let (table, _) = load_input(args)?;
    write_or_return(args, write_csv_string(&table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    #[test]
    fn generates_csv_with_header_and_rows() {
        let args =
            ParsedArgs::parse(["generate", "--dataset", "cs", "--rows", "12", "--seed", "3"])
                .unwrap();
        let csv = run(&args).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 13); // header + 12 rows
        assert!(lines[0].contains("PubCount"));
        assert!(lines[0].contains("DeptSizeBin"));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let args = ParsedArgs::parse([
            "generate",
            "--dataset",
            "german",
            "--rows",
            "20",
            "--seed",
            "9",
        ])
        .unwrap();
        assert_eq!(run(&args).unwrap(), run(&args).unwrap());
    }

    #[test]
    fn requires_a_dataset() {
        let args = ParsedArgs::parse(["generate"]).unwrap();
        assert!(run(&args).is_err());
        // `--data` is not a valid source for `generate`.
        let args = ParsedArgs::parse(["generate", "--data", "x.csv"]).unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn writes_to_a_file_when_out_is_given() {
        let dir = std::env::temp_dir().join("rf_cli_generate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cs.csv");
        let args = ParsedArgs::parse([
            "generate",
            "--dataset",
            "cs",
            "--rows",
            "5",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let message = run(&args).unwrap();
        assert!(message.contains("wrote"));
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written.lines().count(), 6);
    }
}
