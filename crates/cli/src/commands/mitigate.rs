//! `ranking-facts mitigate` — suggest alternative scoring weights.
//!
//! Implements the extension the paper announces in §4: "methods that help the
//! user mitigate lack of fairness and diversity by suggesting modified
//! scoring functions".

use crate::args::ParsedArgs;
use crate::commands::label::build_config;
use crate::commands::load_input;
use crate::error::{CliError, CliResult};
use rf_core::MitigationSearch;
use std::fmt::Write as _;

const ALLOWED: &[&str] = &[
    "dataset",
    "data",
    "rows",
    "seed",
    "score",
    "normalize",
    "sensitive",
    "diversity",
    "k",
    "alpha",
    "ingredients",
    "method",
    "stability-threshold",
    "trials",
    "data-noise",
    "weight-noise",
    "mc-seed",
    "suggestions",
    "min-similarity",
];

/// Runs the command.
///
/// # Errors
/// Returns a usage error for malformed options or an execution error from the
/// mitigation search.
pub fn run(args: &ParsedArgs) -> CliResult<String> {
    args.reject_unknown(ALLOWED)?;
    let (table, name) = load_input(args)?;
    let config = build_config(args, name.clone())?;
    if config.sensitive_attributes.is_empty() && config.diversity_attributes.is_empty() {
        return Err(CliError::usage(
            "`mitigate` needs at least one `--sensitive attr=value` or `--diversity attr` \
             to know what to repair",
        ));
    }
    let search = MitigationSearch::new()
        .with_max_suggestions(args.get_usize("suggestions", 5)?)
        .with_min_similarity(args.get_f64("min-similarity", 0.2)?);
    let suggestions = search
        .suggest(&table, &config)
        .map_err(CliError::execution)?;

    let mut out = String::new();
    let _ = writeln!(out, "=== Mitigation suggestions — {name} ===");
    let _ = writeln!(
        out,
        "original recipe: {}",
        format_weights(config.scoring.weights())
    );
    for (i, suggestion) in suggestions.iter().enumerate() {
        let _ = writeln!(
            out,
            "\n{}. {}{}",
            i + 1,
            format_weights(&suggestion.weights),
            if suggestion.is_original {
                "  (the original recipe)"
            } else {
                ""
            }
        );
        let _ = writeln!(
            out,
            "   unfair features: {}   attributes losing categories: {}   similarity to original: {:.3}{}",
            suggestion.unfair_features,
            suggestion.attributes_losing_categories,
            suggestion.similarity_to_original,
            if suggestion.resolves_all_issues() {
                "   [resolves all issues]"
            } else {
                ""
            }
        );
    }
    if suggestions.is_empty() {
        let _ = writeln!(out, "\nno candidate recipe met the similarity requirement");
    }
    Ok(out)
}

fn format_weights(weights: &[rf_ranking::AttributeWeight]) -> String {
    weights
        .iter()
        .map(|w| format!("{}={:.3}", w.attribute, w.weight))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    #[test]
    fn suggestions_are_produced_for_the_cs_scenario() {
        let args = ParsedArgs::parse([
            "mitigate",
            "--dataset",
            "cs",
            "--rows",
            "60",
            "--seed",
            "42",
            "--score",
            "PubCount=0.4,Faculty=0.4,GRE=0.2",
            "--sensitive",
            "DeptSizeBin=small",
            "--diversity",
            "DeptSizeBin",
            "--suggestions",
            "3",
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("Mitigation suggestions"));
        assert!(out.contains("original recipe: PubCount=0.400"));
        assert!(out.contains("1. "));
        assert!(out.contains("similarity to original"));
    }

    #[test]
    fn requires_something_to_repair() {
        let args = ParsedArgs::parse([
            "mitigate",
            "--dataset",
            "cs",
            "--rows",
            "40",
            "--score",
            "PubCount=1.0",
        ])
        .unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
