//! Command implementations and the shared input-loading helpers.

pub mod datasets;
pub mod design;
pub mod generate;
pub mod label;
pub mod mitigate;
pub mod rerank;
pub mod select;

use crate::args::{parse_weight_spec, ParsedArgs};
use crate::error::{CliError, CliResult};
use rf_datasets::{CompasConfig, CsDepartmentsConfig, GermanCreditConfig, SynthScenarioConfig};
use rf_ranking::{AttributeWeight, ScoringFunction};
use rf_table::{NormalizationMethod, Table};

/// Loads the input table: either a built-in synthetic dataset (`--dataset
/// cs|compas|german|synth`, honouring `--rows` and `--seed`) or a user CSV
/// file (`--data path`), mirroring the demo's "choose one of these datasets,
/// or upload one of their own" flow (paper §3).  `synth` is the parameterized
/// large-scale scenario generator (`score_0..score_3` plus a `group` column;
/// dense, so it labels cleanly under the default noise knobs).
///
/// Returns the table together with a display name for the label header.
pub(crate) fn load_input(args: &ParsedArgs) -> CliResult<(Table, String)> {
    match (args.get("dataset"), args.get("data")) {
        (Some(_), Some(_)) => Err(CliError::usage(
            "give either `--dataset` or `--data`, not both",
        )),
        (Some(name), None) => {
            let seed = args.get_u64("seed", 42)?;
            let rows = args.get("rows");
            let table = match name {
                "cs" | "cs-departments" => {
                    let mut config = CsDepartmentsConfig::with_seed(seed);
                    if let Some(rows) = rows {
                        config.rows = parse_rows(rows)?;
                    }
                    config.generate().map_err(CliError::execution)?
                }
                "compas" => {
                    let mut config = CompasConfig::with_seed(seed);
                    if let Some(rows) = rows {
                        config.rows = parse_rows(rows)?;
                    }
                    config.generate().map_err(CliError::execution)?
                }
                "german" | "german-credit" => {
                    let mut config = GermanCreditConfig::with_seed(seed);
                    if let Some(rows) = rows {
                        config.rows = parse_rows(rows)?;
                    }
                    config.generate().map_err(CliError::execution)?
                }
                "synth" => {
                    let rows = match rows {
                        Some(rows) => parse_rows(rows)?,
                        None => SynthScenarioConfig::default().rows,
                    };
                    SynthScenarioConfig::with_rows(rows)
                        .with_seed(seed)
                        .with_missingness(0.0)
                        .generate()
                        .map_err(CliError::execution)?
                }
                other => {
                    return Err(CliError::usage(format!(
                        "unknown dataset `{other}` (available: cs, compas, german, synth)"
                    )))
                }
            };
            Ok((table, display_name(name).to_string()))
        }
        (None, Some(path)) => {
            let (table, _) = rf_datasets::load_csv_file(path).map_err(CliError::execution)?;
            Ok((table, path.to_string()))
        }
        (None, None) => Err(CliError::usage(
            "specify the input with `--dataset cs|compas|german` or `--data FILE.csv`",
        )),
    }
}

fn parse_rows(raw: &str) -> CliResult<usize> {
    raw.parse()
        .map_err(|_| CliError::usage(format!("`--rows` expects an integer, got `{raw}`")))
}

fn display_name(dataset: &str) -> &'static str {
    match dataset {
        "compas" => "COMPAS-like criminal risk (synthetic)",
        "german" | "german-credit" => "German-credit-like applicants (synthetic)",
        "synth" => "Large-scale synthetic scenario",
        _ => "CS departments (synthetic)",
    }
}

/// Builds the scoring function from `--score attr=w,...` and `--normalize`.
pub(crate) fn build_scoring(args: &ParsedArgs) -> CliResult<ScoringFunction> {
    let spec = args.require("score")?;
    let pairs = parse_weight_spec(spec)?;
    let weights: Vec<AttributeWeight> = pairs
        .into_iter()
        .map(|(name, weight)| AttributeWeight::new(name, weight))
        .collect();
    ScoringFunction::with_normalization(weights, parse_normalization(args)?)
        .map_err(CliError::execution)
}

/// Parses `--normalize none|minmax|zscore` (min-max when absent, matching the
/// ticked-by-default checkbox of the design view).
pub(crate) fn parse_normalization(args: &ParsedArgs) -> CliResult<NormalizationMethod> {
    match args.get("normalize") {
        None => Ok(NormalizationMethod::MinMax),
        Some("none") | Some("raw") => Ok(NormalizationMethod::None),
        Some("minmax") | Some("min-max") => Ok(NormalizationMethod::MinMax),
        Some("zscore") | Some("z-score") => Ok(NormalizationMethod::ZScore),
        Some(other) => Err(CliError::usage(format!(
            "unknown normalization `{other}` (available: none, minmax, zscore)"
        ))),
    }
}

/// Writes `content` to `--out FILE`, or returns it unchanged when `--out` is
/// absent or `-`.
pub(crate) fn write_or_return(args: &ParsedArgs, content: String) -> CliResult<String> {
    match args.get("out") {
        None | Some("-") => Ok(content),
        Some(path) => {
            std::fs::write(path, &content).map_err(|source| CliError::Io {
                path: path.to_string(),
                source,
            })?;
            Ok(format!("wrote {} bytes to {path}", content.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(tokens: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn load_input_generates_builtin_datasets() {
        let (table, name) = load_input(&parsed(&[
            "label",
            "--dataset",
            "cs",
            "--rows",
            "30",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(table.num_rows(), 30);
        assert!(name.contains("CS departments"));
        let (table, _) =
            load_input(&parsed(&["label", "--dataset", "german", "--rows", "50"])).unwrap();
        assert_eq!(table.num_rows(), 50);
        let (table, _) =
            load_input(&parsed(&["label", "--dataset", "compas", "--rows", "80"])).unwrap();
        assert_eq!(table.num_rows(), 80);
    }

    #[test]
    fn load_input_generates_the_synth_scenario() {
        let (table, name) = load_input(&parsed(&[
            "label",
            "--dataset",
            "synth",
            "--rows",
            "500",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert_eq!(table.num_rows(), 500);
        assert!(name.contains("synthetic scenario"));
        assert!(table.column("score_0").is_ok());
        assert!(table.column("group").is_ok());
        // Same seed → same table; different seed → different table.
        let (again, _) = load_input(&parsed(&[
            "label",
            "--dataset",
            "synth",
            "--rows",
            "500",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert_eq!(table.fingerprint(), again.fingerprint());
        let (other, _) = load_input(&parsed(&[
            "label",
            "--dataset",
            "synth",
            "--rows",
            "500",
            "--seed",
            "4",
        ]))
        .unwrap();
        assert_ne!(table.fingerprint(), other.fingerprint());
    }

    #[test]
    fn load_input_rejects_bad_specifications() {
        assert!(load_input(&parsed(&["label"])).is_err());
        assert!(load_input(&parsed(&["label", "--dataset", "nope"])).is_err());
        assert!(load_input(&parsed(&["label", "--dataset", "cs", "--data", "x.csv"])).is_err());
        assert!(load_input(&parsed(&["label", "--dataset", "cs", "--rows", "abc"])).is_err());
        assert!(load_input(&parsed(&["label", "--data", "/no/such/file.csv"])).is_err());
    }

    #[test]
    fn scoring_and_normalization_parsing() {
        let args = parsed(&[
            "label",
            "--score",
            "PubCount=0.5,Faculty=0.5",
            "--normalize",
            "zscore",
        ]);
        let scoring = build_scoring(&args).unwrap();
        assert_eq!(scoring.weights().len(), 2);
        assert_eq!(scoring.normalization(), NormalizationMethod::ZScore);
        assert!(build_scoring(&parsed(&["label"])).is_err());
        assert!(parse_normalization(&parsed(&["label", "--normalize", "weird"])).is_err());
        assert_eq!(
            parse_normalization(&parsed(&["label"])).unwrap(),
            NormalizationMethod::MinMax
        );
        assert_eq!(
            parse_normalization(&parsed(&["label", "--normalize", "none"])).unwrap(),
            NormalizationMethod::None
        );
    }

    #[test]
    fn write_or_return_roundtrips() {
        let args = parsed(&["generate"]);
        assert_eq!(
            write_or_return(&args, "abc".to_string()).unwrap(),
            "abc".to_string()
        );
        let dir = std::env::temp_dir().join("rf_cli_write_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        let args = parsed(&["generate", "--out", path.to_str().unwrap()]);
        let message = write_or_return(&args, "hello".to_string()).unwrap();
        assert!(message.contains("5 bytes"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        let args = parsed(&["generate", "--out", "/no/such/dir/out.txt"]);
        assert!(write_or_return(&args, "x".to_string()).is_err());
    }
}
