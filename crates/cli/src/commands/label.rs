//! `ranking-facts label` — produce a nutritional label (Figure 1).

use crate::args::{parse_attribute_value, ParsedArgs};
use crate::commands::{build_scoring, load_input, write_or_return};
use crate::error::{CliError, CliResult};
use rf_core::{AnalysisPipeline, IngredientsMethod, LabelConfig, NutritionalLabel};
use std::sync::Arc;

const ALLOWED: &[&str] = &[
    "dataset",
    "data",
    "rows",
    "seed",
    "score",
    "normalize",
    "sensitive",
    "diversity",
    "k",
    "ks",
    "alpha",
    "ingredients",
    "method",
    "stability-threshold",
    "trials",
    "data-noise",
    "weight-noise",
    "mc-seed",
    "mc-deadline",
    "relaxed-fp",
    "format",
    "out",
    "cache-dir",
    "cache-disk-bytes",
];

/// Default size bound for `--cache-dir` (64 MiB — one-shot CLI runs rarely
/// need more).
const DEFAULT_CACHE_DISK_BYTES: u64 = 64 * 1024 * 1024;

/// Runs the command.
///
/// With `--ks 5,10,20` the command produces one label per audited prefix
/// size, backed by [`AnalysisPipeline::generate_sweep`]: the ranking and the
/// shared analysis context are computed once and re-rendered per `k`
/// (byte-identical to running the command once per size).
///
/// # Errors
/// Returns a usage error for malformed options or an execution error from the
/// label pipeline (unknown columns, non-binary sensitive attributes, ...).
pub fn run(args: &ParsedArgs) -> CliResult<String> {
    args.reject_unknown(ALLOWED)?;
    if args.get("k").is_some() && args.get("ks").is_some() {
        return Err(CliError::usage(
            "give either `--k N` or `--ks N,N,...`, not both",
        ));
    }
    let (table, name) = load_input(args)?;
    let config = build_config(args, name)?;
    let format = args.get("format").unwrap_or("text");
    if !matches!(format, "text" | "json" | "html") {
        return Err(CliError::usage(format!(
            "unknown format `{format}` (available: text, json, html)"
        )));
    }
    // The command owns its table, so it hands it straight to the parallel
    // pipeline without the copy `NutritionalLabel::generate` would make.
    let pipeline = AnalysisPipeline::new();
    let table = Arc::new(table);
    let config = Arc::new(config);
    let sweep = args.get("ks").is_some();
    // `--cache-dir` reuses labels across one-shot runs through the same
    // crash-safe disk tier the server uses.  Sweeps stay on the pipeline
    // path (the bulk renderer shares one prepared context; per-k disk
    // probes would cost more than they save).
    if !sweep {
        if let Some(dir) = args.get("cache-dir") {
            let max_bytes = args.get_u64("cache-disk-bytes", DEFAULT_CACHE_DISK_BYTES)?;
            let store = rf_store::DiskStore::open(dir, max_bytes)
                .map_err(|err| CliError::execution(format!("cache dir `{dir}`: {err}")))?;
            let service = rf_core::LabelService::with_cache_policy(pipeline, 8, 1 << 22, None)
                .with_disk_tier(Arc::new(store));
            let cached = service
                .label(&table, &config)
                .map_err(CliError::execution)?;
            let rendered = match format {
                "json" => cached.json.as_ref().clone(),
                "html" => cached.label.to_html(),
                _ => cached.label.to_text(),
            };
            // Dropping the service joins the store's write-behind thread,
            // so the fill is durable before the process exits.
            drop(service);
            return write_or_return(args, rendered);
        }
    }
    let labels = match args.get("ks") {
        Some(spec) => {
            let ks = parse_ks(spec)?;
            pipeline
                .generate_sweep(table, config, &ks)
                .map_err(CliError::execution)?
        }
        None => vec![pipeline
            .generate(table, config)
            .map_err(CliError::execution)?],
    };
    let rendered = match format {
        "json" => {
            let mut documents = Vec::with_capacity(labels.len());
            for label in &labels {
                documents.push(label.to_json().map_err(CliError::execution)?);
            }
            if sweep {
                // A sweep always renders as one JSON array of label
                // documents, even for a single k, so scripted consumers see
                // one stable shape.
                format!("[\n{}\n]", documents.join(",\n"))
            } else {
                documents.pop().expect("one label")
            }
        }
        "html" => labels
            .iter()
            .map(NutritionalLabel::to_html)
            .collect::<Vec<_>>()
            .join("\n"),
        _ => labels
            .iter()
            .map(NutritionalLabel::to_text)
            .collect::<Vec<_>>()
            .join("\n"),
    };
    write_or_return(args, rendered)
}

/// Parses `--ks 5,10,20` into prefix sizes (at least one required).
fn parse_ks(spec: &str) -> CliResult<Vec<usize>> {
    let mut ks = Vec::new();
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let k: usize = entry.trim().parse().map_err(|_| {
            CliError::usage(format!("`--ks` expects integers, got `{}`", entry.trim()))
        })?;
        ks.push(k);
    }
    if ks.is_empty() {
        return Err(CliError::usage(
            "`--ks` must list at least one prefix size (e.g. `--ks 5,10,20`)",
        ));
    }
    Ok(ks)
}

/// Builds the [`LabelConfig`] shared by `label` and `mitigate`.
///
/// The Monte-Carlo stability detail is tunable without recompiling:
/// `--trials N` (0 disables the detail view), `--data-noise F` /
/// `--weight-noise F` (fractions), `--mc-seed S`, `--mc-deadline MS`
/// (wall-clock budget in milliseconds — past it, the label ships the trials
/// that completed, flagged truncated), and `--relaxed-fp BOOL` (allow the
/// trial kernel to reassociate float reductions for SIMD; scores may differ
/// from the exact path by ~1e-9 relative) map straight onto
/// [`rf_core::MonteCarloConfig`].
pub(crate) fn build_config(args: &ParsedArgs, dataset_name: String) -> CliResult<LabelConfig> {
    let scoring = build_scoring(args)?;
    let defaults = rf_core::MonteCarloConfig::default();
    let deadline = match args.get("mc-deadline") {
        Some(raw) => Some(raw.parse::<u64>().map_err(|_| {
            CliError::usage(format!(
                "`--mc-deadline` expects whole milliseconds, got `{raw}`"
            ))
        })?),
        None => None,
    };
    let mut config = LabelConfig::new(scoring)
        .with_top_k(args.get_usize("k", 10)?)
        .with_alpha(args.get_f64("alpha", 0.05)?)
        .with_stability_threshold(args.get_f64("stability-threshold", 0.25)?)
        .with_ingredient_count(args.get_usize("ingredients", 3)?)
        .with_monte_carlo_trials(args.get_usize("trials", defaults.trials)?)
        .with_monte_carlo_noise(
            args.get_f64("data-noise", defaults.data_noise)?,
            args.get_f64("weight-noise", defaults.weight_noise)?,
        )
        .with_monte_carlo_seed(args.get_u64("mc-seed", defaults.seed)?)
        .with_monte_carlo_deadline_millis(deadline)
        .with_monte_carlo_relaxed_fp(args.get_bool("relaxed-fp", defaults.relaxed_fp)?)
        .with_dataset_name(dataset_name);
    config = match args.get("method") {
        None | Some("linear") => config,
        Some("rank-aware") => {
            config.with_ingredients_method(IngredientsMethod::RankAwareSimilarity)
        }
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown ingredients method `{other}` (available: linear, rank-aware)"
            )))
        }
    };
    for spec in args.get_all("sensitive") {
        let (attribute, value) = parse_attribute_value(spec)?;
        config = config.with_sensitive_attribute(attribute, [value]);
    }
    for attribute in args.get_all("diversity") {
        config = config.with_diversity_attribute(attribute.to_string());
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    fn cs_args(extra: &[&str]) -> ParsedArgs {
        let mut tokens = vec![
            "label",
            "--dataset",
            "cs",
            "--rows",
            "60",
            "--seed",
            "42",
            "--score",
            "PubCount=0.4,Faculty=0.4,GRE=0.2",
            "--sensitive",
            "DeptSizeBin=small",
            "--diversity",
            "DeptSizeBin",
            "--diversity",
            "Region",
        ];
        tokens.extend_from_slice(extra);
        ParsedArgs::parse(tokens).unwrap()
    }

    #[test]
    fn text_label_contains_all_widgets() {
        let out = run(&cs_args(&[])).unwrap();
        assert!(out.contains("Recipe"));
        assert!(out.contains("Ingredients"));
        assert!(out.contains("Stability"));
        assert!(out.contains("Fairness"));
        assert!(out.contains("Diversity"));
    }

    #[test]
    fn json_label_parses_and_names_the_dataset() {
        let out = run(&cs_args(&["--format", "json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(value["dataset_name"]
            .as_str()
            .unwrap()
            .contains("CS departments"));
        assert!(value["fairness"].is_object() || value["fairness"].is_array());
    }

    #[test]
    fn html_label_is_well_formed_enough() {
        let out = run(&cs_args(&["--format", "html"])).unwrap();
        assert!(out.contains("<html"));
        assert!(out.contains("Fairness"));
    }

    #[test]
    fn ks_sweep_produces_one_label_per_size() {
        let out = run(&cs_args(&["--ks", "5,10,20", "--format", "json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        let labels = value.as_array().expect("a sweep renders a JSON array");
        assert_eq!(labels.len(), 3);
        for (label, expected_k) in labels.iter().zip([5u64, 10, 20]) {
            assert_eq!(label["config"]["top_k"].as_u64().unwrap(), expected_k);
            assert_eq!(
                label["top_k_rows"].as_array().unwrap().len() as u64,
                expected_k
            );
        }
    }

    #[test]
    fn ks_sweep_matches_independent_runs() {
        let sweep = run(&cs_args(&["--ks", "5,10", "--format", "json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&sweep).unwrap();
        for (i, k) in ["5", "10"].into_iter().enumerate() {
            let single = run(&cs_args(&["--k", k, "--format", "json"])).unwrap();
            let single: serde_json::Value = serde_json::from_str(&single).unwrap();
            assert_eq!(value[i], single, "sweep entry {i} diverges from --k {k}");
        }
    }

    #[test]
    fn single_k_sweep_still_renders_an_array() {
        let out = run(&cs_args(&["--ks", "5", "--format", "json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(value.as_array().expect("array even for one k").len(), 1);
    }

    #[test]
    fn ks_sweep_rejects_bad_specs() {
        assert!(run(&cs_args(&["--ks", "5,banana"])).is_err());
        assert!(run(&cs_args(&["--ks", ","])).is_err());
        // A k exceeding the dataset is an execution error, like --k.
        assert!(run(&cs_args(&["--ks", "5,100000"])).is_err());
        // --k and --ks conflict; rejecting beats silently dropping --k.
        assert!(run(&cs_args(&["--k", "7", "--ks", "5,10"])).is_err());
    }

    #[test]
    fn monte_carlo_flags_are_wired_into_the_config() {
        let out = run(&cs_args(&[
            "--trials",
            "7",
            "--data-noise",
            "0.1",
            "--weight-noise",
            "0.02",
            "--mc-seed",
            "9",
            "--format",
            "json",
        ]))
        .unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(value["config"]["monte_carlo"]["trials"], 7);
        assert_eq!(value["config"]["monte_carlo"]["data_noise"], 0.1);
        assert_eq!(value["config"]["monte_carlo"]["weight_noise"], 0.02);
        assert_eq!(value["config"]["monte_carlo"]["seed"], 9);
        assert_eq!(value["stability"]["monte_carlo"]["trials"], 7);
        // The text render shows the detail too.
        let text = run(&cs_args(&["--trials", "7"])).unwrap();
        assert!(text.contains("monte carlo (7 trials"));
    }

    #[test]
    fn mc_deadline_flag_truncates_and_reports() {
        // A 0ms budget on a large trial count: the label still renders, the
        // detail reports a truncated trial prefix.
        let out = run(&cs_args(&[
            "--trials",
            "512",
            "--mc-deadline",
            "0",
            "--format",
            "json",
        ]))
        .unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(value["config"]["monte_carlo"]["deadline_millis"], 0);
        let mc = &value["stability"]["monte_carlo"];
        assert_eq!(mc["truncated"], true);
        assert_eq!(mc["trials_requested"], 512);
        assert!(mc["trials"].as_u64().unwrap() < 512);
        // A generous budget completes everything.
        let out = run(&cs_args(&[
            "--trials",
            "16",
            "--mc-deadline",
            "60000",
            "--format",
            "json",
        ]))
        .unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(value["stability"]["monte_carlo"]["truncated"], false);
        assert_eq!(value["stability"]["monte_carlo"]["trials"], 16);
        // Junk is a usage error.
        assert!(run(&cs_args(&["--mc-deadline", "soonish"])).is_err());
    }

    #[test]
    fn relaxed_fp_flag_reaches_the_config() {
        let out = run(&cs_args(&["--relaxed-fp", "true", "--format", "json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(value["config"]["monte_carlo"]["relaxed_fp"], true);
        let out = run(&cs_args(&["--format", "json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(value["config"]["monte_carlo"]["relaxed_fp"], false);
        assert!(run(&cs_args(&["--relaxed-fp", "sometimes"])).is_err());
    }

    #[test]
    fn zero_trials_disables_the_detail_view() {
        let out = run(&cs_args(&["--trials", "0", "--format", "json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(value["stability"]["monte_carlo"].is_null());
        let text = run(&cs_args(&["--trials", "0"])).unwrap();
        assert!(!text.contains("monte carlo ("));
    }

    #[test]
    fn bad_monte_carlo_flags_are_usage_errors() {
        assert!(run(&cs_args(&["--trials", "many"])).is_err());
        assert!(run(&cs_args(&["--data-noise", "x"])).is_err());
        // Negative noise passes flag parsing but fails config validation.
        assert!(run(&cs_args(&["--data-noise", "-0.5"])).is_err());
    }

    #[test]
    fn rank_aware_method_is_accepted() {
        let out = run(&cs_args(&["--method", "rank-aware"])).unwrap();
        assert!(out.contains("rank-aware similarity"));
    }

    #[test]
    fn bad_options_are_usage_errors() {
        assert!(run(&cs_args(&["--format", "pdf"])).is_err());
        assert!(run(&cs_args(&["--method", "psychic"])).is_err());
        let args = ParsedArgs::parse(["label", "--dataset", "cs"]).unwrap();
        assert!(run(&args).is_err()); // missing --score
        let args = ParsedArgs::parse([
            "label",
            "--dataset",
            "cs",
            "--score",
            "PubCount=1.0",
            "--unknown",
            "1",
        ])
        .unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn cache_dir_reuses_labels_across_runs() {
        let dir = std::env::temp_dir().join(format!("rf-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_arg = dir.to_string_lossy().into_owned();
        // First run fills the disk tier (one durable entry)…
        let cold = run(&cs_args(&["--format", "json", "--cache-dir", &dir_arg])).unwrap();
        let entries = || {
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|ext| ext == "label"))
                .count()
        };
        assert_eq!(entries(), 1, "the fill is durable before the process exits");
        // …and a second, fresh run serves the identical bytes from it.
        let warm = run(&cs_args(&["--format", "json", "--cache-dir", &dir_arg])).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(entries(), 1, "write-once: no second file for the same key");
        // The other render formats work through the cached path too.
        let text = run(&cs_args(&["--cache-dir", &dir_arg])).unwrap();
        assert!(text.contains("Fairness"));
        // An unusable directory is an execution error, not a panic: the CLI
        // is explicit about --cache-dir, so (unlike the server's degraded
        // mode) silently ignoring it would hide a misconfiguration.
        let file = dir.join("plain-file");
        std::fs::write(&file, b"x").unwrap();
        let bad = file.join("nested").to_string_lossy().into_owned();
        let err = run(&cs_args(&["--cache-dir", &bad])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn execution_errors_surface_pipeline_problems() {
        // Region has five values; the fairness widget requires binary attributes.
        let args = ParsedArgs::parse([
            "label",
            "--dataset",
            "cs",
            "--rows",
            "40",
            "--score",
            "PubCount=1.0",
            "--sensitive",
            "Region=NE",
        ])
        .unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }
}
