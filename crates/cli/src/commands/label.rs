//! `ranking-facts label` — produce a nutritional label (Figure 1).

use crate::args::{parse_attribute_value, ParsedArgs};
use crate::commands::{build_scoring, load_input, write_or_return};
use crate::error::{CliError, CliResult};
use rf_core::{AnalysisPipeline, IngredientsMethod, LabelConfig};
use std::sync::Arc;

const ALLOWED: &[&str] = &[
    "dataset",
    "data",
    "rows",
    "seed",
    "score",
    "normalize",
    "sensitive",
    "diversity",
    "k",
    "alpha",
    "ingredients",
    "method",
    "stability-threshold",
    "format",
    "out",
];

/// Runs the command.
///
/// # Errors
/// Returns a usage error for malformed options or an execution error from the
/// label pipeline (unknown columns, non-binary sensitive attributes, ...).
pub fn run(args: &ParsedArgs) -> CliResult<String> {
    args.reject_unknown(ALLOWED)?;
    let (table, name) = load_input(args)?;
    let config = build_config(args, name)?;
    // The command owns its table, so it hands it straight to the parallel
    // pipeline without the copy `NutritionalLabel::generate` would make.
    let label = AnalysisPipeline::new()
        .generate(Arc::new(table), Arc::new(config))
        .map_err(CliError::execution)?;
    let rendered = match args.get("format").unwrap_or("text") {
        "text" => label.to_text(),
        "json" => label.to_json().map_err(CliError::execution)?,
        "html" => label.to_html(),
        other => {
            return Err(CliError::usage(format!(
                "unknown format `{other}` (available: text, json, html)"
            )))
        }
    };
    write_or_return(args, rendered)
}

/// Builds the [`LabelConfig`] shared by `label` and `mitigate`.
pub(crate) fn build_config(args: &ParsedArgs, dataset_name: String) -> CliResult<LabelConfig> {
    let scoring = build_scoring(args)?;
    let mut config = LabelConfig::new(scoring)
        .with_top_k(args.get_usize("k", 10)?)
        .with_alpha(args.get_f64("alpha", 0.05)?)
        .with_stability_threshold(args.get_f64("stability-threshold", 0.25)?)
        .with_ingredient_count(args.get_usize("ingredients", 3)?)
        .with_dataset_name(dataset_name);
    config = match args.get("method") {
        None | Some("linear") => config,
        Some("rank-aware") => {
            config.with_ingredients_method(IngredientsMethod::RankAwareSimilarity)
        }
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown ingredients method `{other}` (available: linear, rank-aware)"
            )))
        }
    };
    for spec in args.get_all("sensitive") {
        let (attribute, value) = parse_attribute_value(spec)?;
        config = config.with_sensitive_attribute(attribute, [value]);
    }
    for attribute in args.get_all("diversity") {
        config = config.with_diversity_attribute(attribute.to_string());
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    fn cs_args(extra: &[&str]) -> ParsedArgs {
        let mut tokens = vec![
            "label",
            "--dataset",
            "cs",
            "--rows",
            "60",
            "--seed",
            "42",
            "--score",
            "PubCount=0.4,Faculty=0.4,GRE=0.2",
            "--sensitive",
            "DeptSizeBin=small",
            "--diversity",
            "DeptSizeBin",
            "--diversity",
            "Region",
        ];
        tokens.extend_from_slice(extra);
        ParsedArgs::parse(tokens).unwrap()
    }

    #[test]
    fn text_label_contains_all_widgets() {
        let out = run(&cs_args(&[])).unwrap();
        assert!(out.contains("Recipe"));
        assert!(out.contains("Ingredients"));
        assert!(out.contains("Stability"));
        assert!(out.contains("Fairness"));
        assert!(out.contains("Diversity"));
    }

    #[test]
    fn json_label_parses_and_names_the_dataset() {
        let out = run(&cs_args(&["--format", "json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(value["dataset_name"]
            .as_str()
            .unwrap()
            .contains("CS departments"));
        assert!(value["fairness"].is_object() || value["fairness"].is_array());
    }

    #[test]
    fn html_label_is_well_formed_enough() {
        let out = run(&cs_args(&["--format", "html"])).unwrap();
        assert!(out.contains("<html"));
        assert!(out.contains("Fairness"));
    }

    #[test]
    fn rank_aware_method_is_accepted() {
        let out = run(&cs_args(&["--method", "rank-aware"])).unwrap();
        assert!(out.contains("rank-aware similarity"));
    }

    #[test]
    fn bad_options_are_usage_errors() {
        assert!(run(&cs_args(&["--format", "pdf"])).is_err());
        assert!(run(&cs_args(&["--method", "psychic"])).is_err());
        let args = ParsedArgs::parse(["label", "--dataset", "cs"]).unwrap();
        assert!(run(&args).is_err()); // missing --score
        let args = ParsedArgs::parse([
            "label",
            "--dataset",
            "cs",
            "--score",
            "PubCount=1.0",
            "--unknown",
            "1",
        ])
        .unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn execution_errors_surface_pipeline_problems() {
        // Region has five values; the fairness widget requires binary attributes.
        let args = ParsedArgs::parse([
            "label",
            "--dataset",
            "cs",
            "--rows",
            "40",
            "--score",
            "PubCount=1.0",
            "--sensitive",
            "Region=NE",
        ])
        .unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }
}
