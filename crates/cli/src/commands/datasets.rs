//! `ranking-facts datasets` — list the built-in synthetic datasets.

use crate::args::ParsedArgs;
use crate::error::CliResult;
use rf_datasets::{CompasConfig, CsDepartmentsConfig, GermanCreditConfig, SynthScenarioConfig};

/// Runs the command.
///
/// # Errors
/// Returns a usage error for unknown options.
pub fn run(args: &ParsedArgs) -> CliResult<String> {
    args.reject_unknown(&[])?;
    let cs = CsDepartmentsConfig::default();
    let compas = CompasConfig::default();
    let german = GermanCreditConfig::default();
    let synth = SynthScenarioConfig::default();
    Ok(format!(
        "built-in synthetic datasets (paper §3):\n\
         \n\
         \x20 cs       CS departments (CS Rankings + NRC schema)\n\
         \x20          {} rows by default; attributes: Dept, PubCount, Faculty, GRE, Region, DeptSizeBin\n\
         \x20 compas   COMPAS-like criminal risk assessment\n\
         \x20          {} rows by default; demographics, priors, decile risk score\n\
         \x20 german   German-credit-like loan applicants\n\
         \x20          {} rows by default; demographics, credit amount, duration, credit score\n\
         \x20 synth    parameterized large-scale ranking scenario (data-plane benchmarking)\n\
         \x20          {} rows by default (--rows scales to millions); score_0..score_{}, group\n\
         \n\
         use `ranking-facts generate --dataset <name>` to export one as CSV,\n\
         or pass `--dataset <name>` directly to `label`, `design`, `mitigate`, `rerank`, `select`.",
        cs.rows,
        compas.rows,
        german.rows,
        synth.rows,
        synth.score_columns - 1
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    #[test]
    fn lists_all_three_datasets() {
        let out = run(&ParsedArgs::parse(["datasets"]).unwrap()).unwrap();
        assert!(out.contains("cs "));
        assert!(out.contains("compas"));
        assert!(out.contains("german"));
        assert!(out.contains("synth"));
        assert!(out.contains("6889") || out.contains("6,889") || out.contains("rows"));
    }

    #[test]
    fn rejects_unknown_options() {
        let args = ParsedArgs::parse(["datasets", "--verbose", "1"]).unwrap();
        assert!(run(&args).is_err());
    }
}
