//! `ranking-facts` — the Ranking Facts command line.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rf_cli::run(args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("ranking-facts: {err}");
            if matches!(err, rf_cli::CliError::Usage { .. }) {
                eprintln!("\n{}", rf_cli::usage());
            }
            ExitCode::from(u8::try_from(err.exit_code()).unwrap_or(1))
        }
    }
}
