//! # rf-cli — the Ranking Facts command line
//!
//! The paper demonstrates Ranking Facts as a web application; this crate
//! exposes the identical flow from a terminal so the library can be exercised
//! without the HTTP front end (`rf-server`) — useful for scripting the
//! experiments of EXPERIMENTS.md and for the integration tests.
//!
//! ```text
//! ranking-facts <command> [--option value ...]
//!
//! commands:
//!   datasets   list the built-in synthetic datasets
//!   generate   write one of the built-in datasets as CSV
//!   design     inspect attributes before choosing a scoring function (Figure 3)
//!   label      produce a nutritional label (Figure 1) as text, JSON or HTML
//!   mitigate   suggest alternative weights that restore fairness / diversity
//!   rerank     repair an unfair ranking with the FA*IR re-ranking algorithm
//!   select     constrained top-k selection, offline and online (EDBT 2018)
//!   help       show usage
//! ```
//!
//! The library entry point is [`run`], which executes a full command line and
//! returns the textual output; `main.rs` is a thin wrapper around it.  This
//! keeps every command testable in-process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;

pub use args::ParsedArgs;
pub use error::{CliError, CliResult};

/// Executes a command line (excluding the program name) and returns the
/// output that should be printed to stdout.
///
/// # Errors
/// Returns a [`CliError`] for unknown commands, malformed options, I/O
/// failures, or any failure of the underlying Ranking Facts pipeline.
pub fn run<I, S>(raw: I) -> CliResult<String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let raw: Vec<String> = raw.into_iter().map(Into::into).collect();
    // `--help` / `-h` before any command short-circuits to the usage text.
    if matches!(raw.first().map(String::as_str), Some("--help" | "-h")) {
        return Ok(usage().to_string());
    }
    let args = ParsedArgs::parse(raw)?;
    match args.command.as_str() {
        "datasets" => commands::datasets::run(&args),
        "generate" => commands::generate::run(&args),
        "design" => commands::design::run(&args),
        "label" => commands::label::run(&args),
        "mitigate" => commands::mitigate::run(&args),
        "rerank" => commands::rerank::run(&args),
        "select" => commands::select::run(&args),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(CliError::usage(format!(
            "unknown command `{other}`; try `help`"
        ))),
    }
}

/// The top-level usage text.
#[must_use]
pub fn usage() -> &'static str {
    "ranking-facts — nutritional labels for rankings\n\
     \n\
     usage: ranking-facts <command> [--option value ...]\n\
     \n\
     commands:\n\
     \x20 datasets   list the built-in synthetic datasets\n\
     \x20 generate   write one of the built-in datasets as CSV\n\
     \x20            (--dataset cs|compas|german|synth [--rows N] [--seed S] [--out FILE])\n\
     \x20 design     inspect attributes before choosing a scoring function\n\
     \x20            (--dataset ... | --data FILE.csv) [--normalize none|minmax|zscore]\n\
     \x20            [--bins N] [--attribute NAME] [--score attr=w,...]\n\
     \x20 label      produce a nutritional label\n\
     \x20            (--dataset ... | --data FILE.csv) --score attr=w,...\n\
     \x20            [--sensitive attr=value]... [--diversity attr]... [--k N]\n\
     \x20            [--ks N,N,...] (sweep: one label per k, ranking computed once)\n\
     \x20            [--alpha A] [--ingredients N] [--method linear|rank-aware]\n\
     \x20            [--trials N] [--data-noise F] [--weight-noise F] [--mc-seed S]\n\
     \x20            [--relaxed-fp true|false] (SIMD-friendly trial kernel, ~1e-9 rel. drift)\n\
     \x20            (Monte-Carlo stability detail; --trials 0 disables it)\n\
     \x20            [--normalize none|minmax|zscore] [--format text|json|html] [--out FILE]\n\
     \x20            [--cache-dir DIR] [--cache-disk-bytes N] (reuse labels across runs\n\
     \x20            through the crash-safe on-disk cache tier; sweeps bypass it)\n\
     \x20 mitigate   suggest alternative weights that restore fairness / diversity\n\
     \x20            (same data/score/sensitive/diversity options as `label`)\n\
     \x20 rerank     repair an unfair ranking with the FA*IR re-ranking algorithm\n\
     \x20            ... --score attr=w,... --sensitive attr=value [--k N] [--p P] [--alpha A]\n\
     \x20 select     constrained top-k selection, offline and online\n\
     \x20            ... --utility attr --category attr [--k N] [--floor cat=n]...\n\
     \x20            [--ceiling cat=n]... [--strategy greedy|secretary] [--runs N] [--seed S]\n\
     \x20 help       show this message\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(["help"]).unwrap().contains("ranking-facts"));
        assert!(run(["--help"]).is_ok());
        let err = run(["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
        assert_eq!(err.exit_code(), 2);
    }
}
