//! Error type for the command-line front end.

use std::fmt;

/// Result alias used throughout `rf-cli`.
pub type CliResult<T> = Result<T, CliError>;

/// Errors produced while parsing arguments or executing a command.
#[derive(Debug)]
pub enum CliError {
    /// The command line could not be parsed (unknown command, missing or
    /// malformed option).
    Usage {
        /// What went wrong.
        message: String,
    },
    /// A file could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A label / table / measure error while executing the command.
    Execution {
        /// Human-readable description of the failure.
        message: String,
    },
}

impl CliError {
    /// Creates a usage error.
    #[must_use]
    pub fn usage(message: impl Into<String>) -> Self {
        CliError::Usage {
            message: message.into(),
        }
    }

    /// Creates an execution error from any displayable failure.
    #[must_use]
    pub fn execution(err: impl fmt::Display) -> Self {
        CliError::Execution {
            message: err.to_string(),
        }
    }

    /// Process exit code associated with this error (2 for usage problems,
    /// 1 for everything else), mirroring common Unix tool conventions.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage { .. } => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage { message } => write!(f, "usage error: {message}"),
            CliError::Io { path, source } => write!(f, "I/O error on `{path}`: {source}"),
            CliError::Execution { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_exit_codes() {
        let e = CliError::usage("unknown command `frobnicate`");
        assert!(e.to_string().contains("frobnicate"));
        assert_eq!(e.exit_code(), 2);

        let e = CliError::execution("ranking failed");
        assert!(e.to_string().contains("ranking failed"));
        assert_eq!(e.exit_code(), 1);

        let e = CliError::Io {
            path: "data.csv".to_string(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(e.to_string().contains("data.csv"));
        assert_eq!(e.exit_code(), 1);
        assert!(std::error::Error::source(&e).is_some());
    }
}
