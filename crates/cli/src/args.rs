//! A small, dependency-free command-line argument parser.
//!
//! The demo tool's surface is simple enough that a full parser framework is
//! not justified: one subcommand followed by `--key value` options (and the
//! occasional repeatable option).  [`ParsedArgs`] splits that shape, reports
//! unknown or repeated options precisely, and offers typed getters so that
//! the command modules stay free of string handling.

use crate::error::{CliError, CliResult};

/// A parsed command line: the subcommand plus its `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag token).
    pub command: String,
    options: Vec<(String, String)>,
}

impl ParsedArgs {
    /// Parses raw arguments (excluding the program name).
    ///
    /// # Errors
    /// Returns a usage error when no subcommand is given, an option has no
    /// value, or a bare token appears where an option was expected.
    pub fn parse<I, S>(raw: I) -> CliResult<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut tokens = raw.into_iter().map(Into::into);
        let command = tokens
            .next()
            .ok_or_else(|| CliError::usage("expected a command; try `help`"))?;
        if command.starts_with("--") {
            return Err(CliError::usage(format!(
                "expected a command before options, found `{command}`"
            )));
        }
        let mut options = Vec::new();
        while let Some(token) = tokens.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(CliError::usage(format!(
                    "unexpected positional argument `{token}` (options are `--key value`)"
                )));
            };
            if key.is_empty() {
                return Err(CliError::usage("empty option name `--`"));
            }
            // `--key=value` and `--key value` are both accepted.
            let (key, value) = match key.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => {
                    let value = tokens.next().ok_or_else(|| {
                        CliError::usage(format!("option `--{key}` is missing its value"))
                    })?;
                    (key.to_string(), value)
                }
            };
            options.push((key, value));
        }
        Ok(ParsedArgs {
            command: command.to_string(),
            options,
        })
    }

    /// The last value given for `key`, if any (later occurrences win, like
    /// most Unix tools).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All values given for `key`, in order (for repeatable options).
    #[must_use]
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.options
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// The value of `key`, or a usage error naming the option.
    ///
    /// # Errors
    /// Returns a usage error when the option is absent.
    pub fn require(&self, key: &str) -> CliResult<&str> {
        self.get(key)
            .ok_or_else(|| CliError::usage(format!("missing required option `--{key}`")))
    }

    /// The value of `key` parsed as `usize`, or `default` when absent.
    ///
    /// # Errors
    /// Returns a usage error when the value is present but not a number.
    pub fn get_usize(&self, key: &str, default: usize) -> CliResult<usize> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                CliError::usage(format!("option `--{key}` expects an integer, got `{raw}`"))
            }),
        }
    }

    /// The value of `key` parsed as `u64`, or `default` when absent.
    ///
    /// # Errors
    /// Returns a usage error when the value is present but not a number.
    pub fn get_u64(&self, key: &str, default: u64) -> CliResult<u64> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                CliError::usage(format!("option `--{key}` expects an integer, got `{raw}`"))
            }),
        }
    }

    /// The value of `key` parsed as `f64`, or `default` when absent.
    ///
    /// # Errors
    /// Returns a usage error when the value is present but not a number.
    pub fn get_f64(&self, key: &str, default: f64) -> CliResult<f64> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                CliError::usage(format!("option `--{key}` expects a number, got `{raw}`"))
            }),
        }
    }

    /// The value of `key` parsed as a boolean, or `default` when absent.
    /// Accepts `true`/`false`, `1`/`0`, and `on`/`off` (all options take a
    /// value — there are no bare flags).
    ///
    /// # Errors
    /// Returns a usage error when the value is present but not one of the
    /// accepted spellings.
    pub fn get_bool(&self, key: &str, default: bool) -> CliResult<bool> {
        match self.get(key) {
            None => Ok(default),
            Some("true" | "1" | "on") => Ok(true),
            Some("false" | "0" | "off") => Ok(false),
            Some(raw) => Err(CliError::usage(format!(
                "option `--{key}` expects true/false, 1/0, or on/off, got `{raw}`"
            ))),
        }
    }

    /// Rejects any option not in `allowed`, so typos fail loudly instead of
    /// being silently ignored.
    ///
    /// # Errors
    /// Returns a usage error naming the first unknown option.
    pub fn reject_unknown(&self, allowed: &[&str]) -> CliResult<()> {
        for (key, _) in &self.options {
            if !allowed.contains(&key.as_str()) {
                return Err(CliError::usage(format!(
                    "unknown option `--{key}` for command `{}` (allowed: {})",
                    self.command,
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Parses a comma-separated `name=value` list (e.g. `PubCount=0.4,Faculty=0.4`)
/// into `(name, value)` pairs.
///
/// # Errors
/// Returns a usage error when an entry has no `=`, an empty name, or a
/// non-numeric value.
pub fn parse_weight_spec(spec: &str) -> CliResult<Vec<(String, f64)>> {
    let mut pairs = Vec::new();
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let (name, value) = entry.split_once('=').ok_or_else(|| {
            CliError::usage(format!(
                "weight entry `{entry}` must have the form `attribute=weight`"
            ))
        })?;
        let name = name.trim();
        if name.is_empty() {
            return Err(CliError::usage(format!(
                "weight entry `{entry}` has an empty attribute name"
            )));
        }
        let value: f64 = value.trim().parse().map_err(|_| {
            CliError::usage(format!(
                "weight for `{name}` must be a number, got `{value}`"
            ))
        })?;
        pairs.push((name.to_string(), value));
    }
    if pairs.is_empty() {
        return Err(CliError::usage(
            "the scoring specification must list at least one `attribute=weight` pair",
        ));
    }
    Ok(pairs)
}

/// Parses an `attribute=value` pair (e.g. `DeptSizeBin=small`).
///
/// # Errors
/// Returns a usage error when there is no `=` or either side is empty.
pub fn parse_attribute_value(spec: &str) -> CliResult<(String, String)> {
    let (attribute, value) = spec
        .split_once('=')
        .ok_or_else(|| CliError::usage(format!("`{spec}` must have the form `attribute=value`")))?;
    if attribute.trim().is_empty() || value.trim().is_empty() {
        return Err(CliError::usage(format!(
            "`{spec}` must name both an attribute and a value"
        )));
    }
    Ok((attribute.trim().to_string(), value.trim().to_string()))
}

/// Parses a `category=count` pair (e.g. `small=3`) for floors and ceilings.
///
/// # Errors
/// Returns a usage error when the count is not a non-negative integer.
pub fn parse_category_count(spec: &str) -> CliResult<(String, usize)> {
    let (category, count) = parse_attribute_value(spec)?;
    let count: usize = count.parse().map_err(|_| {
        CliError::usage(format!(
            "count for `{category}` must be an integer, got `{count}`"
        ))
    })?;
    Ok((category, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_options() {
        let args =
            ParsedArgs::parse(["label", "--data", "x.csv", "--k", "10", "--format=json"]).unwrap();
        assert_eq!(args.command, "label");
        assert_eq!(args.get("data"), Some("x.csv"));
        assert_eq!(args.get("k"), Some("10"));
        assert_eq!(args.get("format"), Some("json"));
        assert_eq!(args.get("missing"), None);
    }

    #[test]
    fn later_occurrences_win_and_get_all_preserves_order() {
        let args =
            ParsedArgs::parse(["label", "--sensitive", "a=x", "--sensitive", "b=y"]).unwrap();
        assert_eq!(args.get("sensitive"), Some("b=y"));
        assert_eq!(args.get_all("sensitive"), vec!["a=x", "b=y"]);
    }

    #[test]
    fn rejects_malformed_command_lines() {
        assert!(ParsedArgs::parse(Vec::<String>::new()).is_err());
        assert!(ParsedArgs::parse(["--data", "x.csv"]).is_err());
        assert!(ParsedArgs::parse(["label", "stray"]).is_err());
        assert!(ParsedArgs::parse(["label", "--data"]).is_err());
        assert!(ParsedArgs::parse(["label", "--"]).is_err());
    }

    #[test]
    fn typed_getters_validate() {
        let args = ParsedArgs::parse(["x", "--k", "7", "--alpha", "0.1", "--bad", "zz"]).unwrap();
        assert_eq!(args.get_usize("k", 10).unwrap(), 7);
        assert_eq!(args.get_usize("missing", 10).unwrap(), 10);
        assert!((args.get_f64("alpha", 0.05).unwrap() - 0.1).abs() < 1e-12);
        assert!(args.get_usize("bad", 0).is_err());
        assert!(args.get_f64("bad", 0.0).is_err());
        assert!(args.get_u64("bad", 0).is_err());
        assert_eq!(args.get_u64("missing", 42).unwrap(), 42);
        assert!(args.require("k").is_ok());
        assert!(args.require("missing").is_err());
    }

    #[test]
    fn bool_getter_accepts_the_usual_spellings() {
        let args = ParsedArgs::parse(["x", "--a", "true", "--b", "0", "--c", "on"]).unwrap();
        assert!(args.get_bool("a", false).unwrap());
        assert!(!args.get_bool("b", true).unwrap());
        assert!(args.get_bool("c", false).unwrap());
        assert!(args.get_bool("missing", true).unwrap());
        assert!(!args.get_bool("missing", false).unwrap());
        let bad = ParsedArgs::parse(["x", "--a", "yeah"]).unwrap();
        assert!(bad.get_bool("a", false).is_err());
    }

    #[test]
    fn unknown_options_are_rejected_by_allowlist() {
        let args = ParsedArgs::parse(["label", "--data", "x.csv", "--typo", "1"]).unwrap();
        let err = args.reject_unknown(&["data", "k"]).unwrap_err();
        assert!(err.to_string().contains("--typo"));
        assert!(args.reject_unknown(&["data", "typo"]).is_ok());
    }

    #[test]
    fn weight_spec_parsing() {
        let pairs = parse_weight_spec("PubCount=0.4, Faculty=0.4,GRE=0.2").unwrap();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0].0, "PubCount");
        assert!((pairs[2].1 - 0.2).abs() < 1e-12);
        assert!(parse_weight_spec("").is_err());
        assert!(parse_weight_spec("PubCount").is_err());
        assert!(parse_weight_spec("=0.4").is_err());
        assert!(parse_weight_spec("PubCount=abc").is_err());
    }

    #[test]
    fn attribute_value_and_category_count_parsing() {
        assert_eq!(
            parse_attribute_value("DeptSizeBin=small").unwrap(),
            ("DeptSizeBin".to_string(), "small".to_string())
        );
        assert!(parse_attribute_value("nope").is_err());
        assert!(parse_attribute_value("=x").is_err());
        assert_eq!(
            parse_category_count("small=3").unwrap(),
            ("small".to_string(), 3)
        );
        assert!(parse_category_count("small=three").is_err());
    }
}
