//! # rf-diversity
//!
//! Diversity measures over categorical attributes of ranked outputs,
//! reproducing the Diversity widget of *"A Nutritional Label for Rankings"*
//! (SIGMOD 2018).
//!
//! "The Diversity widget shows diversity with respect to a set of demographic
//! categories of individuals, or a set of categorical attributes of other
//! kinds of items.  The widget displays the proportion of each category in
//! the top-10 ranked list and over-all" (paper §2.4).  In the paper's CS
//! departments example, comparing the two pie charts reveals that "only large
//! departments are present in the top-10".
//!
//! * [`proportions`] — category counts and proportions of an attribute at the
//!   top-k and over the whole dataset (the data behind the pie charts).
//! * [`indices`] — scalar diversity indices (Shannon entropy, normalized
//!   entropy, Simpson/Gini-Simpson, richness) for the detailed widget.
//! * [`report`] — the per-attribute [`DiversityReport`] consumed by the label,
//!   including the categories that disappear from the top-k.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod indices;
pub mod proportions;
pub mod report;

pub use error::{DiversityError, DiversityResult};
pub use indices::{gini_simpson, normalized_entropy, richness, shannon_entropy, simpson};
pub use proportions::{CategoryCount, CategoryProportions};
pub use report::DiversityReport;
