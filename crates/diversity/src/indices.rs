//! Scalar diversity indices.
//!
//! The overview Diversity widget shows pie charts; the detailed widget
//! summarizes each distribution with standard ecology/IR diversity indices so
//! that the top-k and over-all distributions can be compared at a glance.

use crate::error::{DiversityError, DiversityResult};

/// Validates a proportion vector: non-empty, entries in [0, 1], summing to ~1.
fn validate_proportions(proportions: &[f64]) -> DiversityResult<()> {
    if proportions.is_empty() {
        return Err(DiversityError::InvalidDistribution {
            message: "no categories".to_string(),
        });
    }
    if proportions
        .iter()
        .any(|&p| !(0.0..=1.0 + 1e-9).contains(&p) || p.is_nan())
    {
        return Err(DiversityError::InvalidDistribution {
            message: "proportions must lie in [0, 1]".to_string(),
        });
    }
    let sum: f64 = proportions.iter().sum();
    if (sum - 1.0).abs() > 1e-6 {
        return Err(DiversityError::InvalidDistribution {
            message: format!("proportions must sum to 1, got {sum}"),
        });
    }
    Ok(())
}

/// Shannon entropy `−Σ p ln p` (natural log) of a proportion vector.
///
/// # Errors
/// Invalid distribution (empty, out-of-range, not summing to 1).
pub fn shannon_entropy(proportions: &[f64]) -> DiversityResult<f64> {
    validate_proportions(proportions)?;
    Ok(proportions
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum())
}

/// Entropy normalized by `ln(number of categories)`, in `[0, 1]`
/// (1 = perfectly even).  A single-category distribution has normalized
/// entropy 0 by convention.
///
/// # Errors
/// Invalid distribution.
pub fn normalized_entropy(proportions: &[f64]) -> DiversityResult<f64> {
    let h = shannon_entropy(proportions)?;
    let k = proportions.iter().filter(|&&p| p > 0.0).count();
    if k <= 1 {
        return Ok(0.0);
    }
    Ok((h / (k as f64).ln()).clamp(0.0, 1.0))
}

/// Simpson concentration index `Σ p²` (1 = one category dominates completely,
/// 1/k = perfectly even over k categories).
///
/// # Errors
/// Invalid distribution.
pub fn simpson(proportions: &[f64]) -> DiversityResult<f64> {
    validate_proportions(proportions)?;
    Ok(proportions.iter().map(|&p| p * p).sum())
}

/// Gini–Simpson diversity `1 − Σ p²` (0 = one category, higher = more diverse).
///
/// # Errors
/// Invalid distribution.
pub fn gini_simpson(proportions: &[f64]) -> DiversityResult<f64> {
    Ok(1.0 - simpson(proportions)?)
}

/// Richness: the number of categories with non-zero proportion.
///
/// # Errors
/// Invalid distribution.
pub fn richness(proportions: &[f64]) -> DiversityResult<usize> {
    validate_proportions(proportions)?;
    Ok(proportions.iter().filter(|&&p| p > 0.0).count())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} != {b}");
    }

    #[test]
    fn entropy_of_uniform_distribution() {
        let p = [0.25, 0.25, 0.25, 0.25];
        assert_close(shannon_entropy(&p).unwrap(), (4.0f64).ln());
        assert_close(normalized_entropy(&p).unwrap(), 1.0);
    }

    #[test]
    fn entropy_of_degenerate_distribution() {
        let p = [1.0, 0.0, 0.0];
        assert_close(shannon_entropy(&p).unwrap(), 0.0);
        assert_close(normalized_entropy(&p).unwrap(), 0.0);
    }

    #[test]
    fn entropy_of_skewed_distribution() {
        let p = [0.9, 0.1];
        let h = shannon_entropy(&p).unwrap();
        assert!(h > 0.0 && h < (2.0f64).ln());
        let nh = normalized_entropy(&p).unwrap();
        assert!(nh > 0.0 && nh < 1.0);
    }

    #[test]
    fn simpson_extremes() {
        assert_close(simpson(&[1.0]).unwrap(), 1.0);
        assert_close(simpson(&[0.5, 0.5]).unwrap(), 0.5);
        assert_close(gini_simpson(&[0.5, 0.5]).unwrap(), 0.5);
        assert_close(gini_simpson(&[1.0]).unwrap(), 0.0);
    }

    #[test]
    fn richness_counts_support() {
        assert_eq!(richness(&[0.5, 0.5, 0.0]).unwrap(), 2);
        assert_eq!(richness(&[1.0]).unwrap(), 1);
    }

    #[test]
    fn invalid_distributions_rejected() {
        assert!(shannon_entropy(&[]).is_err());
        assert!(shannon_entropy(&[0.5, 0.6]).is_err());
        assert!(simpson(&[-0.1, 1.1]).is_err());
        assert!(normalized_entropy(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn uniform_maximizes_entropy_among_same_support() {
        let uniform = [1.0 / 3.0; 3];
        let skewed = [0.6, 0.3, 0.1];
        assert!(shannon_entropy(&uniform).unwrap() > shannon_entropy(&skewed).unwrap());
        assert!(gini_simpson(&uniform).unwrap() > gini_simpson(&skewed).unwrap());
    }
}
