//! Error type for the diversity measures.

use std::fmt;

/// Result alias used throughout `rf-diversity`.
pub type DiversityResult<T> = Result<T, DiversityError>;

/// Errors produced while computing diversity measures.
#[derive(Debug, Clone, PartialEq)]
pub enum DiversityError {
    /// The categorical attribute has no non-missing values.
    EmptyAttribute {
        /// Attribute name.
        attribute: String,
    },
    /// `k` (the prefix size) is invalid: zero or larger than the ranking.
    InvalidK {
        /// Requested prefix size.
        k: usize,
        /// Ranking size.
        n: usize,
    },
    /// A proportion vector did not sum to 1 (internal consistency violation).
    InvalidDistribution {
        /// Description of the problem.
        message: String,
    },
    /// An underlying table error.
    Table(rf_table::TableError),
    /// An underlying ranking error.
    Ranking(rf_ranking::RankingError),
}

impl fmt::Display for DiversityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiversityError::EmptyAttribute { attribute } => {
                write!(f, "attribute `{attribute}` has no non-missing values")
            }
            DiversityError::InvalidK { k, n } => {
                write!(f, "invalid prefix size k={k} for a ranking of {n} items")
            }
            DiversityError::InvalidDistribution { message } => {
                write!(f, "invalid distribution: {message}")
            }
            DiversityError::Table(err) => write!(f, "table error: {err}"),
            DiversityError::Ranking(err) => write!(f, "ranking error: {err}"),
        }
    }
}

impl std::error::Error for DiversityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiversityError::Table(err) => Some(err),
            DiversityError::Ranking(err) => Some(err),
            _ => None,
        }
    }
}

impl From<rf_table::TableError> for DiversityError {
    fn from(err: rf_table::TableError) -> Self {
        DiversityError::Table(err)
    }
}

impl From<rf_ranking::RankingError> for DiversityError {
    fn from(err: rf_ranking::RankingError) -> Self {
        DiversityError::Ranking(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DiversityError::EmptyAttribute {
            attribute: "Region".to_string(),
        };
        assert!(e.to_string().contains("Region"));
        let e = DiversityError::InvalidK { k: 50, n: 10 };
        assert!(e.to_string().contains("k=50"));
    }

    #[test]
    fn conversions() {
        let e: DiversityError = rf_table::TableError::Empty { operation: "x" }.into();
        assert!(matches!(e, DiversityError::Table(_)));
        let e: DiversityError = rf_ranking::RankingError::EmptyRanking.into();
        assert!(matches!(e, DiversityError::Ranking(_)));
    }
}
