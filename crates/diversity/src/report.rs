//! The per-attribute diversity report consumed by the Diversity widget.

use crate::error::DiversityResult;
use crate::indices::{gini_simpson, normalized_entropy, richness, shannon_entropy};
use crate::proportions::CategoryProportions;
use rf_ranking::Ranking;
use rf_table::Table;

/// Diversity indices of one distribution.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiversityIndices {
    /// Shannon entropy (natural log).
    pub shannon_entropy: f64,
    /// Entropy normalized to [0, 1].
    pub normalized_entropy: f64,
    /// Gini–Simpson diversity.
    pub gini_simpson: f64,
    /// Number of categories present.
    pub richness: usize,
}

impl DiversityIndices {
    fn of(proportions: &CategoryProportions) -> DiversityResult<Self> {
        let p = proportions.proportions();
        Ok(DiversityIndices {
            shannon_entropy: shannon_entropy(&p)?,
            normalized_entropy: normalized_entropy(&p)?,
            gini_simpson: gini_simpson(&p)?,
            richness: richness(&p)?,
        })
    }
}

/// Diversity of one categorical attribute at the top-k and over-all —
/// the content of one row of the Diversity widget.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiversityReport {
    /// Attribute name.
    pub attribute: String,
    /// Audited prefix size.
    pub k: usize,
    /// Category distribution over the top-k ("the pie chart on the left").
    pub top_k: CategoryProportions,
    /// Category distribution over the whole dataset ("the pie chart on the right").
    pub overall: CategoryProportions,
    /// Indices of the top-k distribution.
    pub top_k_indices: DiversityIndices,
    /// Indices of the over-all distribution.
    pub overall_indices: DiversityIndices,
    /// Categories that occur in the dataset but are absent from the top-k —
    /// the observation the paper highlights ("only large departments are
    /// present in the top-10").
    pub missing_from_top_k: Vec<String>,
}

impl DiversityReport {
    /// Builds the diversity report for `attribute` on `ranking` over `table`.
    ///
    /// # Errors
    /// Unknown/float attribute, `k` out of range, or an attribute with no
    /// non-missing values.
    pub fn evaluate(
        table: &Table,
        ranking: &Ranking,
        attribute: &str,
        k: usize,
    ) -> DiversityResult<Self> {
        let top_k = CategoryProportions::over_top_k(table, ranking, attribute, k)?;
        let overall = CategoryProportions::over_table(table, attribute)?;
        let top_k_indices = DiversityIndices::of(&top_k)?;
        let overall_indices = DiversityIndices::of(&overall)?;
        let missing_from_top_k = overall
            .categories
            .iter()
            .filter(|c| top_k.proportion_of(&c.category) == 0.0)
            .map(|c| c.category.clone())
            .collect();
        Ok(DiversityReport {
            attribute: attribute.to_string(),
            k,
            top_k,
            overall,
            top_k_indices,
            overall_indices,
            missing_from_top_k,
        })
    }

    /// `true` when the top-k contains every category present over-all.
    #[must_use]
    pub fn covers_all_categories(&self) -> bool {
        self.missing_from_top_k.is_empty()
    }

    /// Drop in normalized entropy from over-all to top-k (positive = the
    /// top-k is less diverse than the dataset).
    #[must_use]
    pub fn entropy_drop(&self) -> f64 {
        self.overall_indices.normalized_entropy - self.top_k_indices.normalized_entropy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    /// Dataset where only "large" departments reach the top of the ranking —
    /// the situation shown in Figure 1 of the paper.
    fn size_skewed_table() -> (Table, Ranking) {
        let sizes: Vec<&str> = (0..20)
            .map(|i| if i < 10 { "large" } else { "small" })
            .collect();
        let regions: Vec<&str> = (0..20)
            .map(|i| match i % 4 {
                0 => "NE",
                1 => "MW",
                2 => "SA",
                _ => "W",
            })
            .collect();
        let scores: Vec<f64> = (0..20).map(|i| 100.0 - i as f64).collect();
        let table = Table::from_columns(vec![
            ("DeptSizeBin", Column::from_strings(sizes)),
            ("Region", Column::from_strings(regions)),
            ("score", Column::from_f64(scores.clone())),
        ])
        .unwrap();
        let ranking = Ranking::from_scores(&scores).unwrap();
        (table, ranking)
    }

    #[test]
    fn report_detects_missing_category_in_top_k() {
        let (table, ranking) = size_skewed_table();
        let report = DiversityReport::evaluate(&table, &ranking, "DeptSizeBin", 10).unwrap();
        assert_eq!(report.k, 10);
        // Only "large" departments occupy the top-10.
        assert_eq!(report.top_k.proportion_of("large"), 1.0);
        assert_eq!(report.top_k.proportion_of("small"), 0.0);
        assert_eq!(report.missing_from_top_k, vec!["small".to_string()]);
        assert!(!report.covers_all_categories());
        // Diversity collapses in the top-10: entropy drop is large.
        assert!(report.entropy_drop() > 0.9);
        assert_eq!(report.top_k_indices.richness, 1);
        assert_eq!(report.overall_indices.richness, 2);
    }

    #[test]
    fn balanced_attribute_keeps_full_coverage() {
        let (table, ranking) = size_skewed_table();
        let report = DiversityReport::evaluate(&table, &ranking, "Region", 10).unwrap();
        assert!(report.covers_all_categories());
        assert_eq!(report.top_k_indices.richness, 4);
        assert!(report.entropy_drop().abs() < 0.1);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (table, ranking) = size_skewed_table();
        assert!(DiversityReport::evaluate(&table, &ranking, "score", 10).is_err());
        assert!(DiversityReport::evaluate(&table, &ranking, "ghost", 10).is_err());
        assert!(DiversityReport::evaluate(&table, &ranking, "Region", 0).is_err());
        assert!(DiversityReport::evaluate(&table, &ranking, "Region", 21).is_err());
    }

    #[test]
    fn k_equal_to_n_makes_both_views_identical() {
        let (table, ranking) = size_skewed_table();
        let report = DiversityReport::evaluate(&table, &ranking, "DeptSizeBin", 20).unwrap();
        assert_eq!(report.top_k.proportions(), report.overall.proportions());
        assert!(report.covers_all_categories());
        assert!(report.entropy_drop().abs() < 1e-12);
    }
}
