//! Category proportions at the top-k and over-all — the pie-chart data.

use crate::error::{DiversityError, DiversityResult};
use rf_ranking::Ranking;
use rf_table::Table;

/// Count and proportion of one category.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CategoryCount {
    /// Category label.
    pub category: String,
    /// Number of items with this label.
    pub count: usize,
    /// Proportion of items with this label (count / total).
    pub proportion: f64,
}

/// Category distribution of one categorical attribute over one set of rows.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CategoryProportions {
    /// Attribute name.
    pub attribute: String,
    /// Number of rows with a non-missing label.
    pub total: usize,
    /// Number of rows with a missing label (excluded from proportions).
    pub missing: usize,
    /// Per-category counts, ordered by decreasing count (ties by label).
    pub categories: Vec<CategoryCount>,
}

impl CategoryProportions {
    /// Computes the distribution of `attribute` over all rows of `table`.
    ///
    /// # Errors
    /// Unknown/float column, or a column with no non-missing values.
    pub fn over_table(table: &Table, attribute: &str) -> DiversityResult<Self> {
        let labels = table.categorical_column(attribute)?;
        Self::from_labels(attribute, labels.iter().map(|l| l.as_deref()))
    }

    /// Computes the distribution of `attribute` over the top-k rows of
    /// `ranking`.
    ///
    /// # Errors
    /// Unknown/float column, `k` out of range, or no non-missing values among
    /// the top-k.
    pub fn over_top_k(
        table: &Table,
        ranking: &Ranking,
        attribute: &str,
        k: usize,
    ) -> DiversityResult<Self> {
        if k == 0 || k > ranking.len() {
            return Err(DiversityError::InvalidK {
                k,
                n: ranking.len(),
            });
        }
        let labels = table.categorical_column(attribute)?;
        let top_indices = ranking.top_k_indices(k);
        Self::from_labels(attribute, top_indices.iter().map(|&i| labels[i].as_deref()))
    }

    /// Builds the distribution from an iterator of optional labels.
    ///
    /// # Errors
    /// [`DiversityError::EmptyAttribute`] when every label is missing.
    pub fn from_labels<'a, I>(attribute: &str, labels: I) -> DiversityResult<Self>
    where
        I: IntoIterator<Item = Option<&'a str>>,
    {
        let mut counts: Vec<(String, usize)> = Vec::new();
        let mut total = 0usize;
        let mut missing = 0usize;
        for label in labels {
            match label {
                Some(value) => {
                    total += 1;
                    match counts.iter_mut().find(|(cat, _)| cat == value) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((value.to_string(), 1)),
                    }
                }
                None => missing += 1,
            }
        }
        if total == 0 {
            return Err(DiversityError::EmptyAttribute {
                attribute: attribute.to_string(),
            });
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let categories = counts
            .into_iter()
            .map(|(category, count)| CategoryCount {
                category,
                count,
                proportion: count as f64 / total as f64,
            })
            .collect();
        Ok(CategoryProportions {
            attribute: attribute.to_string(),
            total,
            missing,
            categories,
        })
    }

    /// Number of distinct categories present.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.categories.len()
    }

    /// The proportion of a given category (0.0 when absent).
    #[must_use]
    pub fn proportion_of(&self, category: &str) -> f64 {
        self.categories
            .iter()
            .find(|c| c.category == category)
            .map_or(0.0, |c| c.proportion)
    }

    /// The proportion vector (ordered as [`Self::categories`]).
    #[must_use]
    pub fn proportions(&self) -> Vec<f64> {
        self.categories.iter().map(|c| c.proportion).collect()
    }

    /// Category labels present, in the same order as the counts.
    #[must_use]
    pub fn labels(&self) -> Vec<&str> {
        self.categories
            .iter()
            .map(|c| c.category.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    fn table() -> Table {
        Table::from_columns(vec![
            (
                "Region",
                Column::from_strings(["NE", "NE", "MW", "W", "NE", "SA", "MW", "W"]),
            ),
            (
                "score",
                Column::from_f64(vec![8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn over_table_counts_everything() {
        let p = CategoryProportions::over_table(&table(), "Region").unwrap();
        assert_eq!(p.total, 8);
        assert_eq!(p.missing, 0);
        assert_eq!(p.distinct(), 4);
        assert_eq!(p.categories[0].category, "NE");
        assert_eq!(p.categories[0].count, 3);
        assert!((p.proportion_of("NE") - 0.375).abs() < 1e-12);
        assert!((p.proportions().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn over_top_k_uses_ranking_order() {
        let t = table();
        let ranking = Ranking::from_scores(&t.numeric_column("score").unwrap()).unwrap();
        let p = CategoryProportions::over_top_k(&t, &ranking, "Region", 3).unwrap();
        // Top 3 by score are rows 0, 1, 2 → NE, NE, MW.
        assert_eq!(p.total, 3);
        assert_eq!(p.proportion_of("NE"), 2.0 / 3.0);
        assert_eq!(p.proportion_of("MW"), 1.0 / 3.0);
        assert_eq!(p.proportion_of("W"), 0.0);
    }

    #[test]
    fn k_bounds_checked() {
        let t = table();
        let ranking = Ranking::from_scores(&t.numeric_column("score").unwrap()).unwrap();
        assert!(CategoryProportions::over_top_k(&t, &ranking, "Region", 0).is_err());
        assert!(CategoryProportions::over_top_k(&t, &ranking, "Region", 9).is_err());
    }

    #[test]
    fn missing_labels_are_counted_separately() {
        let labels = [Some("a"), None, Some("b"), Some("a"), None];
        let p = CategoryProportions::from_labels("attr", labels).unwrap();
        assert_eq!(p.total, 3);
        assert_eq!(p.missing, 2);
        assert!((p.proportion_of("a") - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_missing_is_error() {
        let labels: [Option<&str>; 2] = [None, None];
        assert!(matches!(
            CategoryProportions::from_labels("attr", labels),
            Err(DiversityError::EmptyAttribute { .. })
        ));
    }

    #[test]
    fn ties_sorted_by_label() {
        let labels = [Some("b"), Some("a"), Some("b"), Some("a")];
        let p = CategoryProportions::from_labels("attr", labels).unwrap();
        assert_eq!(p.labels(), vec!["a", "b"]);
    }

    #[test]
    fn float_column_rejected() {
        let t = table();
        assert!(CategoryProportions::over_table(&t, "score").is_err());
        assert!(CategoryProportions::over_table(&t, "ghost").is_err());
    }
}
