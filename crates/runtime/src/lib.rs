//! # rf-runtime — shared worker-pool runtime
//!
//! The execution substrate shared by the Ranking Facts workspace.  It hosts
//! the fixed-size [`ThreadPool`] that used to live (hand-rolled, crossbeam
//! based) inside `rf-server`, so that every layer schedules onto the same
//! abstraction:
//!
//! * `rf-core`'s `AnalysisPipeline` fans the label widgets out across the
//!   pool instead of building them serially;
//! * `rf-server` dispatches accepted connections to the pool;
//! * future scaling work (dataset sharding, batched label generation,
//!   caching refresh) gets a single place to queue work.
//!
//! A process-wide pool is available through [`global`]; independent pools can
//! be created for tests or dedicated subsystems.  Jobs are `'static` — shared
//! state crosses into the pool via `Arc`, which is how the pipeline shares
//! its analysis context between widget builders.
//!
//! Panics inside a job are caught and counted (see
//! [`ThreadPool::panicked_jobs`]) so one poisoned request cannot take a
//! worker down with it; callers that need completion signals send results
//! back over channels and treat a missing answer as a failed job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

std::thread_local! {
    /// Identity of the pool the current thread is a worker of (the address
    /// of the pool's shared panic counter), or 0 on non-worker threads.
    /// Lets [`ThreadPool::run_all`] detect re-entrant use and fall back to
    /// inline execution instead of deadlocking on its own queue.
    static WORKER_OF_POOL: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// A fixed-size pool of worker threads executing queued jobs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
    panicked: Arc<AtomicUsize>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .field("panicked_jobs", &self.panicked.load(Ordering::Relaxed))
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `size` workers (at least one).
    #[must_use]
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let panicked = Arc::new(AtomicUsize::new(0));
        let workers = (0..size)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                let panicked = Arc::clone(&panicked);
                std::thread::Builder::new()
                    .name(format!("rf-runtime-{index}"))
                    .spawn(move || worker_loop(&receiver, &panicked))
                    .expect("spawn rf-runtime worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            size,
            panicked,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of jobs that panicked since the pool was created.
    #[must_use]
    pub fn panicked_jobs(&self) -> usize {
        self.panicked.load(Ordering::Relaxed)
    }

    /// Queues a job for execution on the pool.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.sender
            .as_ref()
            .expect("pool sender alive until drop")
            .send(Box::new(job))
            .expect("pool workers alive until drop");
    }

    /// Runs every job on the pool and blocks until all of them finish,
    /// returning the outputs in job order.
    ///
    /// A job that panics yields `None` in its slot; the others still run to
    /// completion.
    ///
    /// Safe to call from inside a job running on this same pool: nested
    /// calls execute their jobs inline on the calling worker (blocking on
    /// the shared queue from a worker would deadlock once every worker
    /// waited on jobs stuck behind it).
    pub fn run_all<T, F>(&self, jobs: Vec<F>) -> Vec<Option<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if WORKER_OF_POOL.with(std::cell::Cell::get) == Arc::as_ptr(&self.panicked) as usize {
            return jobs
                .into_iter()
                .map(|job| match catch_unwind(AssertUnwindSafe(job)) {
                    Ok(output) => Some(output),
                    Err(_) => {
                        self.panicked.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                })
                .collect();
        }
        let total = jobs.len();
        let (sender, receiver) = channel::<(usize, T)>();
        for (index, job) in jobs.into_iter().enumerate() {
            let sender = sender.clone();
            self.execute(move || {
                let output = job();
                // The receiver may be gone if the caller gave up; ignore.
                let _ = sender.send((index, output));
            });
        }
        drop(sender);
        let mut outputs: Vec<Option<T>> = (0..total).map(|_| None).collect();
        while let Ok((index, output)) = receiver.recv() {
            outputs[index] = Some(output);
        }
        outputs
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets the workers drain queued jobs and exit.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>, panicked: &Arc<AtomicUsize>) {
    WORKER_OF_POOL.with(|cell| cell.set(Arc::as_ptr(panicked) as usize));
    loop {
        let job = {
            let guard = match receiver.lock() {
                Ok(guard) => guard,
                // A worker panicked while holding the lock; the queue is in a
                // consistent state (Receiver has no interior invariants we
                // rely on), so keep serving.
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        match job {
            Ok(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    panicked.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => return, // Channel closed: pool is shutting down.
        }
    }
}

/// The process-wide shared pool, sized to the available parallelism.
///
/// Created on first use and kept alive for the lifetime of the process — the
/// label pipeline, the server, and the benches all schedule onto it unless
/// given a dedicated pool.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        ThreadPool::new(parallelism.clamp(2, 32))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_queued_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let (sender, receiver) = channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let sender = sender.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                sender.send(()).unwrap();
            });
        }
        drop(sender);
        assert_eq!(receiver.iter().count(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn run_all_preserves_job_order() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..20).map(|i| move || i * 10).collect();
        let outputs = pool.run_all(jobs);
        for (i, output) in outputs.iter().enumerate() {
            assert_eq!(*output, Some(i * 10));
        }
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = ThreadPool::new(2);
        let outputs = pool.run_all(vec![
            Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
            Box::new(|| panic!("boom")),
            Box::new(|| 3usize),
        ]);
        assert_eq!(outputs[0], Some(1));
        assert_eq!(outputs[1], None);
        assert_eq!(outputs[2], Some(3));
        // The counter is incremented after the job's channels unwind, so the
        // panicked job may not be recorded the instant run_all returns.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while pool.panicked_jobs() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.panicked_jobs(), 1);
    }

    #[test]
    fn drop_joins_workers_after_draining() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn nested_run_all_on_the_same_pool_does_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(2));
        // Saturate the pool with jobs that each fan out again on the same
        // pool; the inner run_all must fall back to inline execution.
        let jobs: Vec<_> = (0..4)
            .map(|outer| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner: Vec<_> = (0..3usize).map(|i| move || outer * 10 + i).collect();
                    pool.run_all(inner)
                }
            })
            .collect();
        let outputs = pool.run_all(jobs);
        for (outer, slot) in outputs.into_iter().enumerate() {
            let inner = slot.expect("outer job completed");
            let values: Vec<_> = inner.into_iter().map(Option::unwrap).collect();
            assert_eq!(values, vec![outer * 10, outer * 10 + 1, outer * 10 + 2]);
        }
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let pool = global();
        assert!(pool.size() >= 2);
        let again = global();
        assert!(std::ptr::eq(pool, again));
    }
}
