//! # rf-runtime — work-stealing task scheduler
//!
//! The execution substrate shared by the Ranking Facts workspace.  At its
//! core is the [`Scheduler`]: a fixed set of workers, each owning a local
//! deque of tasks, stealing from its siblings (and from a shared injector
//! queue fed by external threads) when its own deque runs dry.
//!
//! The property the rest of the workspace builds on is the blocking
//! [`Scheduler::scope`]: a task may spawn subtasks and wait for them, and the
//! waiting thread **helps** — it runs queued tasks (its own, stolen, or
//! injected) instead of parking — so nested fan-outs can never deadlock the
//! pool they run on, even with a single worker.  That is what lets the label
//! pipeline fan widgets out across the pool while one of those widgets (the
//! Monte-Carlo stability detail) fans out again, one task per trial.
//!
//! * `rf-core`'s `AnalysisPipeline` shards preparation and fans the label
//!   widgets out over nested scopes;
//! * `rf-stability` runs one task per Monte-Carlo trial inside a widget job;
//! * `rf-server` dispatches parsed requests via [`ThreadPool::execute_notify`].
//!
//! [`ThreadPool`] survives as a thin compatibility shim over an owned
//! scheduler: `execute` / `execute_notify` / `run_all` / `map_shards` keep
//! their exact signatures (rf-net's completion hook depends on
//! `execute_notify`'s notify-even-on-panic guarantee), but all of them now
//! route through scopes, so the old "nested calls fall back to inline
//! execution" special case is gone — nested calls just parallelize.
//!
//! A process-wide pool is available through [`global`]; independent pools can
//! be created for tests or dedicated subsystems.  Jobs are `'static` — shared
//! state crosses into the scheduler via `Arc`.
//!
//! Panics inside a task are caught and counted (see
//! [`Scheduler::panicked_jobs`]) so one poisoned request cannot take a worker
//! down with it; structured callers ([`Scheduler::run_all`]) observe a
//! panicked task as a `None` slot.  [`Scheduler::stats`] exposes the
//! observability counters (queue depth, steals, executed and panicked tasks)
//! that the HTTP `/stats` endpoint serves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Callback invoked with a task's measured queue wait (push → first poll).
/// See [`Scheduler::set_queue_wait_observer`].
pub type QueueWaitObserver = Arc<dyn Fn(Duration) + Send + Sync>;

std::thread_local! {
    /// `(address of the scheduler's shared state, worker index + 1)` when the
    /// current thread is a scheduler worker, `(0, 0)` otherwise.  Lets
    /// [`Shared::current_worker`] route spawns to the local deque and lets
    /// helping waiters prefer their own work.
    static WORKER: std::cell::Cell<(usize, usize)> = const { std::cell::Cell::new((0, 0)) };
}

/// Locks a mutex, ignoring poisoning: every job runs *outside* the runtime's
/// locks (panics are caught around the job call), so a poisoned lock can only
/// mean a panic in runtime bookkeeping that holds no broken invariants worth
/// propagating.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared between the scheduler handle, its workers, and in-flight
/// scopes.
struct Shared {
    /// Queue for tasks pushed from non-worker threads.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker: the owner pushes and pops at the back (LIFO, so
    /// a scope's freshly spawned subtasks run first), thieves steal from the
    /// front (FIFO, oldest task first).
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Paired with `wake`; pushers take this lock before notifying so a
    /// worker that checked `queued` under the lock cannot miss the wakeup.
    sleep: Mutex<()>,
    wake: Condvar,
    /// Tasks currently queued (injector + all deques).
    queued: AtomicUsize,
    shutdown: AtomicBool,
    panicked: AtomicUsize,
    steals: AtomicU64,
    executed: AtomicU64,
    /// Optional queue-wait observer (set at most once).  When installed,
    /// every pushed task is wrapped to report its enqueue→first-poll latency
    /// — the *measured* queue wait the admission controller's EWMA predicts.
    queue_wait_observer: OnceLock<QueueWaitObserver>,
}

impl Shared {
    /// The calling thread's worker index on *this* scheduler, if any.
    fn current_worker(&self) -> Option<usize> {
        let (addr, index) = WORKER.with(std::cell::Cell::get);
        if addr == std::ptr::from_ref(self) as usize {
            Some(index - 1)
        } else {
            None
        }
    }

    /// Queues a task: onto the local deque when called from a worker of this
    /// scheduler, onto the injector otherwise.
    fn push(&self, job: Job) {
        let job = match self.queue_wait_observer.get() {
            Some(observer) => {
                let observer = Arc::clone(observer);
                let enqueued = Instant::now();
                Box::new(move || {
                    observer(enqueued.elapsed());
                    job();
                })
            }
            None => job,
        };
        // Publish the count *before* the job becomes poppable: `find_job`
        // only decrements after actually taking a job, and a job can only be
        // taken after the push below — so `queued` (served raw by the
        // /stats endpoint) can never transiently underflow.  A thread that
        // reads the incremented count a moment early just re-polls until
        // the push lands.
        self.queued.fetch_add(1, Ordering::SeqCst);
        match self.current_worker() {
            Some(index) => lock(&self.deques[index]).push_back(job),
            None => lock(&self.injector).push_back(job),
        }
        // Acquire-release the sleep lock between publishing `queued` and
        // notifying: a worker that saw `queued == 0` under this lock is
        // already waiting and receives the notification; one that has not
        // yet taken the lock will see `queued > 0` when it does.
        drop(lock(&self.sleep));
        self.wake.notify_one();
    }

    /// Takes one runnable task: own deque first (back), then the injector,
    /// then steals from sibling deques (front).
    fn find_job(&self) -> Option<Job> {
        let me = self.current_worker();
        if let Some(index) = me {
            if let Some(job) = lock(&self.deques[index]).pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        if let Some(job) = lock(&self.injector).pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let workers = self.deques.len();
        let start = me.map_or(0, |index| index + 1);
        for offset in 0..workers {
            let victim = (start + offset) % workers;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = lock(&self.deques[victim]).pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Runs a task, counting it and containing its panic.
    ///
    /// `executed` is bumped *before* the task body: a scope's completion
    /// latch fires inside the body (the spawn wrapper's drop guard), so
    /// counting afterwards would let `scope`/`run_all` return with the last
    /// task still uncounted.
    fn run(&self, job: Job) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            self.panicked.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    WORKER.with(|cell| cell.set((Arc::as_ptr(shared) as usize, index + 1)));
    loop {
        if let Some(job) = shared.find_job() {
            shared.run(job);
            continue;
        }
        let guard = lock(&shared.sleep);
        if shared.queued.load(Ordering::SeqCst) > 0 {
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // The timeout is belt and braces: correctness comes from pushers
        // notifying under the sleep lock, so a missed wakeup cannot happen —
        // but a bounded wait keeps a hypothetical bug from parking a worker
        // forever.
        let _ = shared.wake.wait_timeout(guard, Duration::from_millis(50));
    }
}

/// A point-in-time snapshot of a scheduler's observability counters, served
/// verbatim by the HTTP `/stats` endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SchedulerStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Tasks currently queued (injector plus all worker deques).
    pub queue_depth: usize,
    /// Tasks a worker (or a helping waiter) took from another worker's deque.
    pub steals: u64,
    /// Tasks taken off the queues and run (including panicked ones).
    pub executed_jobs: u64,
    /// Tasks that panicked.
    pub panicked_jobs: u64,
}

/// A work-stealing task scheduler: per-worker deques with stealing, plus the
/// blocking [`scope`](Scheduler::scope) API whose waiters help run tasks.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("size", &self.size)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Tracks one blocking scope: the number of spawned-but-unfinished tasks and
/// the latch its waiter blocks on when no task is runnable.
struct ScopeState {
    pending: AtomicUsize,
    latch: Mutex<()>,
    done: Condvar,
}

/// Decrements the owning scope's pending count when a task finishes — by
/// returning *or* by unwinding — and wakes the waiter on the last task.
struct Complete(Arc<ScopeState>);

impl Drop for Complete {
    fn drop(&mut self) {
        if self.0.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Pair the notify with the latch lock so a waiter that observed
            // `pending > 0` under the latch cannot miss this wakeup.
            drop(lock(&self.0.latch));
            self.0.done.notify_all();
        }
    }
}

/// A handle for spawning tasks into a blocking [`Scheduler::scope`].
pub struct Scope<'a> {
    scheduler: &'a Scheduler,
    state: Arc<ScopeState>,
}

impl Scope<'_> {
    /// Spawns a task into the scope.  The surrounding
    /// [`scope`](Scheduler::scope) call returns only after the task has
    /// finished; a panicking task is caught and counted like any other
    /// scheduler task.
    ///
    /// Tasks spawned from a worker go to that worker's own deque (and are
    /// popped LIFO, so a helping waiter runs its own subtasks first); tasks
    /// spawned from outside go to the shared injector.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let complete = Complete(Arc::clone(&self.state));
        self.scheduler.shared.push(Box::new(move || {
            // Dropped when the task ends — normally or by unwinding.
            let _complete = complete;
            task();
        }));
    }
}

impl Scheduler {
    /// Creates a scheduler with `size` workers (at least one).
    #[must_use]
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..size).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            queue_wait_observer: OnceLock::new(),
        });
        let workers = (0..size)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rf-runtime-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn rf-runtime worker")
            })
            .collect();
        Scheduler {
            shared,
            workers,
            size,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of tasks that panicked since the scheduler was created.
    #[must_use]
    pub fn panicked_jobs(&self) -> usize {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Number of tasks taken off the queues and run (including panicked
    /// ones).  Every task of a completed [`scope`](Scheduler::scope) or
    /// [`run_all`](Scheduler::run_all) is counted by the time the call
    /// returns.
    #[must_use]
    pub fn executed_jobs(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Number of tasks currently queued (injector plus all worker deques).
    /// A single atomic load — cheap enough for per-request admission-control
    /// decisions on the reactor threads.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared.queued.load(Ordering::SeqCst)
    }

    /// A snapshot of the observability counters.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            workers: self.size,
            queue_depth: self.shared.queued.load(Ordering::SeqCst),
            steals: self.shared.steals.load(Ordering::Relaxed),
            executed_jobs: self.shared.executed.load(Ordering::Relaxed),
            panicked_jobs: self.shared.panicked.load(Ordering::Relaxed) as u64,
        }
    }

    /// Installs an observer that receives every task's measured queue wait —
    /// the span from [`Shared::push`] to the moment a worker (or a helping
    /// waiter) first polls the task.  Install-once: later calls are ignored,
    /// returning `false`.  Tasks pushed before installation are unobserved.
    pub fn set_queue_wait_observer(&self, observer: QueueWaitObserver) -> bool {
        self.shared.queue_wait_observer.set(observer).is_ok()
    }

    /// Queues a fire-and-forget task.
    pub fn spawn_detached<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.shared.push(Box::new(job));
    }

    /// Runs `f` with a [`Scope`] handle and blocks until every task spawned
    /// into the scope has finished.
    ///
    /// While blocked, the calling thread **helps**: it runs queued tasks (its
    /// own deque when it is a worker, stolen or injected tasks otherwise)
    /// instead of parking.  That is the property that makes nested scopes
    /// deadlock-free at any worker count — a scope inside a scope on a
    /// one-worker scheduler simply executes its subtasks inline, in between
    /// polls of its completion latch.
    pub fn scope<R>(&self, f: impl FnOnce(&Scope<'_>) -> R) -> R {
        let scope = Scope {
            scheduler: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                latch: Mutex::new(()),
                done: Condvar::new(),
            }),
        };
        let result = f(&scope);
        self.wait_scope(&scope.state);
        result
    }

    /// Blocks until `state.pending` reaches zero, running queued tasks while
    /// any are available.
    fn wait_scope(&self, state: &ScopeState) {
        loop {
            if state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if let Some(job) = self.shared.find_job() {
                self.shared.run(job);
                continue;
            }
            // Nothing runnable: the scope's outstanding tasks are in flight
            // on other threads.  Block on the latch, re-polling briefly so a
            // task queued by *another* scheduler thread (which this waiter
            // could steal) does not go unnoticed.
            let guard = lock(&state.latch);
            if state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            let _ = state.done.wait_timeout(guard, Duration::from_millis(1));
        }
    }

    /// Runs every job on the scheduler and blocks until all of them finish,
    /// returning the outputs **in job order** regardless of execution order.
    ///
    /// A job that panics yields `None` in its slot; the others still run to
    /// completion.  Built on [`scope`](Scheduler::scope), so it is safe at
    /// any nesting depth and any worker count — the blocked caller helps run
    /// the very jobs it waits for.
    pub fn run_all<T, F>(&self, jobs: Vec<F>) -> Vec<Option<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slots: Arc<Vec<Mutex<Option<T>>>> =
            Arc::new((0..jobs.len()).map(|_| Mutex::new(None)).collect());
        self.scope(|scope| {
            for (index, job) in jobs.into_iter().enumerate() {
                let slots = Arc::clone(&slots);
                scope.spawn(move || {
                    let output = job();
                    *lock(&slots[index]) = Some(output);
                });
            }
        });
        match Arc::try_unwrap(slots) {
            Ok(slots) => slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
                .collect(),
            // The scope waits for every task, and each task drops its Arc
            // clone before completing.
            Err(_) => unreachable!("scope completion releases every slot reference"),
        }
    }

    /// Runs `f` over contiguous shards of `0..len` and returns the shard
    /// outputs **in shard order** — the deterministic merge that keeps
    /// sharded computations byte-identical to a single sequential pass
    /// whenever `f` is a pure function of its range (concatenating the
    /// outputs of `shard_ranges(len, s)` reproduces `f(0..len)` exactly for
    /// any row-wise map).
    ///
    /// `max_shards` bounds the fan-out; `0` means "pick for me" (twice the
    /// worker count, so an unlucky slow shard can overlap with the rest).  A
    /// shard whose closure panics yields `None` in its slot — callers that
    /// need errors surface them by position via [`shard_ranges`].
    pub fn map_shards<R, F>(&self, len: usize, max_shards: usize, f: F) -> Vec<Option<R>>
    where
        R: Send + 'static,
        F: Fn(std::ops::Range<usize>) -> R + Send + Sync + 'static,
    {
        let max_shards = if max_shards == 0 {
            self.size * 2
        } else {
            max_shards
        };
        let f = Arc::new(f);
        let jobs: Vec<_> = shard_ranges(len, max_shards)
            .into_iter()
            .map(|range| {
                let f = Arc::clone(&f);
                move || f(range)
            })
            .collect();
        self.run_all(jobs)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        drop(lock(&self.shared.sleep));
        self.shared.wake.notify_all();
        // Workers drain every queued task before exiting.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A fixed-size pool of worker threads executing queued jobs.
///
/// Compatibility shim over an owned [`Scheduler`]: the historical
/// `execute` / `execute_notify` / `run_all` / `map_shards` surface keeps its
/// exact semantics (rf-net's reactor depends on `execute_notify`'s
/// notify-even-on-panic guarantee), while new code reaches the scheduler —
/// and its `scope` API — through [`ThreadPool::scheduler`].
#[derive(Debug)]
pub struct ThreadPool {
    scheduler: Arc<Scheduler>,
}

impl ThreadPool {
    /// Creates a pool with `size` workers (at least one).
    #[must_use]
    pub fn new(size: usize) -> Self {
        ThreadPool {
            scheduler: Arc::new(Scheduler::new(size)),
        }
    }

    /// The underlying work-stealing scheduler.
    #[must_use]
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// Number of worker threads.
    #[must_use]
    pub fn size(&self) -> usize {
        self.scheduler.size()
    }

    /// Number of jobs that panicked since the pool was created.
    #[must_use]
    pub fn panicked_jobs(&self) -> usize {
        self.scheduler.panicked_jobs()
    }

    /// Number of jobs currently queued — see [`Scheduler::queued`].
    #[must_use]
    pub fn queued(&self) -> usize {
        self.scheduler.queued()
    }

    /// Installs a queue-wait observer on the underlying scheduler — see
    /// [`Scheduler::set_queue_wait_observer`].
    pub fn set_queue_wait_observer(&self, observer: QueueWaitObserver) -> bool {
        self.scheduler.set_queue_wait_observer(observer)
    }

    /// Queues a job for execution on the pool.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.scheduler.spawn_detached(job);
    }

    /// Queues a job and guarantees `notify` runs after it finishes — even
    /// when the job panics.
    ///
    /// This is the completion hook event-driven callers build on: the
    /// `rf-server` reactor dispatches label generation here with a notifier
    /// that signals its wake eventfd, so a finished (or crashed) job always
    /// pulls the reactor out of `epoll_wait` to collect the result.  Without
    /// the panic guarantee, a crashing handler would leave the reactor
    /// asleep and its connection stranded.
    pub fn execute_notify<F, N>(&self, job: F, notify: N)
    where
        F: FnOnce() + Send + 'static,
        N: FnOnce() + Send + 'static,
    {
        struct NotifyOnDrop<N: FnOnce()>(Option<N>);
        impl<N: FnOnce()> Drop for NotifyOnDrop<N> {
            fn drop(&mut self) {
                if let Some(notify) = self.0.take() {
                    notify();
                }
            }
        }
        let guard = NotifyOnDrop(Some(notify));
        self.execute(move || {
            // Dropped when the closure ends — normally or by unwinding.
            let _guard = guard;
            job();
        });
    }

    /// Runs every job on the pool and blocks until all of them finish,
    /// returning the outputs in job order.  See [`Scheduler::run_all`].
    pub fn run_all<T, F>(&self, jobs: Vec<F>) -> Vec<Option<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.scheduler.run_all(jobs)
    }

    /// Runs `f` over contiguous shards of `0..len` on the pool and returns
    /// the shard outputs in shard order.  See [`Scheduler::map_shards`].
    pub fn map_shards<R, F>(&self, len: usize, max_shards: usize, f: F) -> Vec<Option<R>>
    where
        R: Send + 'static,
        F: Fn(std::ops::Range<usize>) -> R + Send + Sync + 'static,
    {
        self.scheduler.map_shards(len, max_shards, f)
    }
}

/// A lock-guarded free list of reusable scratch objects, for batched
/// fan-outs whose tasks need expensive working memory.
///
/// A batch task [`take`](ScratchPool::take)s a warm scratch (or builds a
/// fresh one when the pool is dry), reuses it across every item of its
/// batch, and [`put`](ScratchPool::put)s it back for the next wave — so a
/// whole evaluation allocates at most one scratch per *concurrently running*
/// task, not one per task or per item.  The Monte-Carlo stability estimator
/// threads its per-trial scratch buffers through one of these across its
/// batch waves.
///
/// The pool is deliberately dumb: a mutexed stack.  Contention is one
/// lock per *batch*, which is noise next to the batch's work.
#[derive(Debug)]
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ScratchPool<T> {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Pops a pooled scratch, if any.
    #[must_use]
    pub fn take(&self) -> Option<T> {
        lock(&self.free).pop()
    }

    /// Pops a pooled scratch or builds one with `init`.
    pub fn take_or_else(&self, init: impl FnOnce() -> T) -> T {
        self.take().unwrap_or_else(init)
    }

    /// Returns a scratch to the pool for reuse.
    pub fn put(&self, scratch: T) {
        lock(&self.free).push(scratch);
    }

    /// Number of scratches currently pooled (idle).
    #[must_use]
    pub fn idle(&self) -> usize {
        lock(&self.free).len()
    }
}

/// Splits `0..len` into at most `max_shards` contiguous, near-equal ranges
/// (the first `len % shards` ranges are one element longer).  Deterministic
/// in `(len, max_shards)`; returns no ranges for an empty domain.
#[must_use]
pub fn shard_ranges(len: usize, max_shards: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = max_shards.max(1).min(len);
    let base = len / shards;
    let extra = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for shard in 0..shards {
        let size = base + usize::from(shard < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// The process-wide shared pool, sized to the available parallelism.
///
/// Created on first use and kept alive for the lifetime of the process — the
/// label pipeline, the server, and the benches all schedule onto it unless
/// given a dedicated pool.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        ThreadPool::new(parallelism.clamp(2, 32))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc::channel;

    #[test]
    fn executes_queued_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let (sender, receiver) = channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let sender = sender.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                sender.send(()).unwrap();
            });
        }
        drop(sender);
        assert_eq!(receiver.iter().count(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn queued_tracks_backlog_and_drains_to_zero() {
        let pool = ThreadPool::new(2);
        // Block both workers, then pile up a backlog behind them.
        let gate = Arc::new(std::sync::Barrier::new(3));
        let parked = Arc::new(AtomicU64::new(0));
        for _ in 0..2 {
            let gate = Arc::clone(&gate);
            let parked = Arc::clone(&parked);
            pool.execute(move || {
                parked.fetch_add(1, Ordering::SeqCst);
                gate.wait();
            });
        }
        while parked.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }
        let (sender, receiver) = channel();
        for _ in 0..8 {
            let sender = sender.clone();
            pool.execute(move || sender.send(()).unwrap());
        }
        drop(sender);
        // Both workers are parked at the gate, so nothing can drain the
        // backlog yet: all 8 jobs are visibly queued.
        assert_eq!(pool.queued(), 8, "backlog visible");
        gate.wait();
        assert_eq!(receiver.iter().count(), 8);
        // Every queued job was taken; the gauge returns to zero.
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        assert_eq!(pool.scheduler().stats().queue_depth, 0);
    }

    #[test]
    fn execute_notify_signals_after_completion_and_after_panic() {
        let pool = ThreadPool::new(2);
        let (sender, receiver) = channel();

        // Normal completion: the job's effect is visible before the notify.
        let counter = Arc::new(AtomicU64::new(0));
        let job_counter = Arc::clone(&counter);
        let notify_counter = Arc::clone(&counter);
        let notify_sender = sender.clone();
        pool.execute_notify(
            move || {
                job_counter.fetch_add(1, Ordering::SeqCst);
            },
            move || {
                notify_sender
                    .send(notify_counter.load(Ordering::SeqCst))
                    .unwrap();
            },
        );
        assert_eq!(receiver.recv().unwrap(), 1, "notify runs after the job");

        // A panicking job still notifies (the reactor must always wake).
        let panic_sender = sender.clone();
        pool.execute_notify(
            || panic!("boom"),
            move || {
                panic_sender.send(42).unwrap();
            },
        );
        assert_eq!(receiver.recv().unwrap(), 42, "notify survives a panic");
        drop(sender);
        // The pool is still healthy afterwards.
        let outputs = pool.run_all(vec![|| 7usize]);
        assert_eq!(outputs[0], Some(7));
    }

    #[test]
    fn run_all_preserves_job_order() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..20).map(|i| move || i * 10).collect();
        let outputs = pool.run_all(jobs);
        for (i, output) in outputs.iter().enumerate() {
            assert_eq!(*output, Some(i * 10));
        }
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = ThreadPool::new(2);
        let outputs = pool.run_all(vec![
            Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
            Box::new(|| panic!("boom")),
            Box::new(|| 3usize),
        ]);
        assert_eq!(outputs[0], Some(1));
        assert_eq!(outputs[1], None);
        assert_eq!(outputs[2], Some(3));
        assert_eq!(pool.panicked_jobs(), 1);
    }

    #[test]
    fn drop_joins_workers_after_draining() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn nested_run_all_on_the_same_pool_does_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(2));
        // Saturate the pool with jobs that each fan out again on the same
        // pool; helping waiters keep everything moving.
        let jobs: Vec<_> = (0..4)
            .map(|outer| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner: Vec<_> = (0..3usize).map(|i| move || outer * 10 + i).collect();
                    pool.run_all(inner)
                }
            })
            .collect();
        let outputs = pool.run_all(jobs);
        for (outer, slot) in outputs.into_iter().enumerate() {
            let inner = slot.expect("outer job completed");
            let values: Vec<_> = inner.into_iter().map(Option::unwrap).collect();
            assert_eq!(values, vec![outer * 10, outer * 10 + 1, outer * 10 + 2]);
        }
    }

    #[test]
    fn nested_scope_on_a_single_worker_completes() {
        // The deadlock-regression contract: a scope inside a scope inside a
        // scope, all on one worker, must complete because every waiter helps.
        let scheduler = Arc::new(Scheduler::new(1));
        let inner_scheduler = Arc::clone(&scheduler);
        let outputs = scheduler.run_all(vec![move || {
            let deepest = Arc::clone(&inner_scheduler);
            let mid: Vec<Option<Vec<Option<usize>>>> = inner_scheduler.run_all(vec![move || {
                deepest.run_all((0..4).map(|i| move || i * i).collect::<Vec<_>>())
            }]);
            mid
        }]);
        let mid = outputs.into_iter().next().unwrap().expect("outer ran");
        let inner = mid.into_iter().next().unwrap().expect("middle ran");
        let values: Vec<usize> = inner.into_iter().map(Option::unwrap).collect();
        assert_eq!(values, vec![0, 1, 4, 9]);
    }

    #[test]
    fn scope_spawns_run_and_waiters_help() {
        let scheduler = Scheduler::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        scheduler.scope(|scope| {
            for _ in 0..64 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        // All spawned tasks were executed and the queues drained.
        let stats = scheduler.stats();
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.executed_jobs, 64);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn scope_survives_panicking_tasks() {
        let scheduler = Scheduler::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        scheduler.scope(|scope| {
            for i in 0..8 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    assert!(i % 2 == 0, "odd tasks explode");
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert_eq!(scheduler.panicked_jobs(), 4);
    }

    #[test]
    fn executed_jobs_counts_every_task() {
        let scheduler = Scheduler::new(3);
        let before = scheduler.executed_jobs();
        let outputs = scheduler.run_all((0..25).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(outputs.len(), 25);
        assert_eq!(scheduler.executed_jobs() - before, 25);
    }

    #[test]
    fn stealing_happens_and_is_counted() {
        // One worker floods its own deque from inside a scope; the second
        // worker has nothing local and must steal to participate.  The flood
        // is dispatched with `spawn_detached` so it runs on a worker (a
        // helping external thread would push to the injector instead).
        let scheduler = Arc::new(Scheduler::new(2));
        let inner = Arc::clone(&scheduler);
        let slow_start = std::time::Duration::from_millis(2);
        let (sender, receiver) = channel();
        scheduler.spawn_detached(move || {
            inner.scope(|scope| {
                for _ in 0..32 {
                    scope.spawn(move || std::thread::sleep(slow_start));
                }
            });
            sender.send(()).unwrap();
        });
        receiver.recv().unwrap();
        assert!(
            scheduler.stats().steals > 0,
            "sibling worker should have stolen from the flooded deque"
        );
    }

    #[test]
    fn shard_ranges_partition_the_domain() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            for shards in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(len, shards);
                assert!(ranges.len() <= shards.max(1));
                // Contiguous cover of 0..len, in order.
                let mut cursor = 0;
                for range in &ranges {
                    assert_eq!(range.start, cursor);
                    assert!(!range.is_empty());
                    cursor = range.end;
                }
                assert_eq!(cursor, len);
                // Near-equal sizes: max - min <= 1.
                if let (Some(max), Some(min)) = (
                    ranges.iter().map(ExactSizeIterator::len).max(),
                    ranges.iter().map(ExactSizeIterator::len).min(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn map_shards_merges_in_shard_order() {
        let pool = ThreadPool::new(3);
        let input: Vec<u64> = (0..103).map(|i| i * 3 + 1).collect();
        let expected: Vec<u64> = input.iter().map(|v| v * v).collect();
        let shared = Arc::new(input);
        let data = Arc::clone(&shared);
        let outputs = pool.map_shards(shared.len(), 0, move |range| {
            data[range].iter().map(|v| v * v).collect::<Vec<u64>>()
        });
        let merged: Vec<u64> = outputs
            .into_iter()
            .flat_map(|slot| slot.expect("no shard panicked"))
            .collect();
        assert_eq!(merged, expected);
    }

    #[test]
    fn map_shards_reports_panicked_shards_by_position() {
        let pool = ThreadPool::new(2);
        let outputs = pool.map_shards(4, 4, |range| {
            assert!(range.start != 2, "boom");
            range.start
        });
        assert_eq!(outputs.len(), 4);
        assert_eq!(outputs[0], Some(0));
        assert_eq!(outputs[1], Some(1));
        assert_eq!(outputs[2], None);
        assert_eq!(outputs[3], Some(3));
    }

    #[test]
    fn map_shards_on_empty_domain_is_empty() {
        let pool = ThreadPool::new(2);
        let outputs = pool.map_shards(0, 0, |range| range.len());
        assert!(outputs.is_empty());
    }

    #[test]
    fn external_threads_can_scope_too() {
        // A scope entered from a non-worker thread: its spawns go to the
        // injector and the waiting thread helps drain them.
        let scheduler = Arc::new(Scheduler::new(1));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let scheduler = Arc::clone(&scheduler);
                std::thread::spawn(move || {
                    let counter = Arc::new(AtomicU64::new(0));
                    scheduler.scope(|scope| {
                        for _ in 0..16 {
                            let counter = Arc::clone(&counter);
                            scope.spawn(move || {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                    (t, counter.load(Ordering::Relaxed))
                })
            })
            .collect();
        for handle in handles {
            let (_, count) = handle.join().unwrap();
            assert_eq!(count, 16);
        }
    }

    #[test]
    fn scratch_pool_recycles_instead_of_rebuilding() {
        let pool: ScratchPool<Vec<u64>> = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        assert!(pool.take().is_none());
        let mut scratch = pool.take_or_else(|| Vec::with_capacity(64));
        scratch.push(7);
        let capacity = scratch.capacity();
        pool.put(scratch);
        assert_eq!(pool.idle(), 1);
        // The recycled scratch keeps its allocation (and its stale contents —
        // callers reset what they need).
        let recycled = pool.take_or_else(Vec::new);
        assert_eq!(recycled.capacity(), capacity);
        assert_eq!(recycled, vec![7]);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn scratch_pool_is_safe_under_concurrent_batches() {
        let pool = Arc::new(ScratchPool::<Vec<u8>>::new());
        let scheduler = Scheduler::new(4);
        let jobs: Vec<_> = (0..64)
            .map(|_| {
                let pool = Arc::clone(&pool);
                move || {
                    let mut scratch = pool.take_or_else(|| Vec::with_capacity(128));
                    scratch.clear();
                    scratch.extend_from_slice(&[1, 2, 3]);
                    let sum: u8 = scratch.iter().sum();
                    pool.put(scratch);
                    sum
                }
            })
            .collect();
        let outputs = scheduler.run_all(jobs);
        assert!(outputs.iter().all(|o| *o == Some(6)));
        // At most one scratch per thread that ever ran a job concurrently.
        assert!(pool.idle() >= 1 && pool.idle() <= 5);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let pool = global();
        assert!(pool.size() >= 2);
        let again = global();
        assert!(std::ptr::eq(pool, again));
    }

    #[test]
    fn queue_wait_observer_sees_every_task() {
        let pool = ThreadPool::new(2);
        let observed = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&observed);
        assert!(pool.set_queue_wait_observer(Arc::new(move |_wait| {
            sink.fetch_add(1, Ordering::SeqCst);
        })));
        // Install-once: a second observer is rejected.
        assert!(!pool.set_queue_wait_observer(Arc::new(|_| {})));
        let jobs: Vec<_> = (0..16).map(|i| move || i * 2).collect();
        let outputs = pool.run_all(jobs);
        assert_eq!(outputs.len(), 16);
        // run_all blocks until every task finished, and the observer fires
        // before the task body runs.
        assert_eq!(observed.load(Ordering::SeqCst), 16);
        pool.execute(|| {});
        let deadline = Instant::now() + Duration::from_secs(5);
        while observed.load(Ordering::SeqCst) < 17 {
            assert!(Instant::now() < deadline, "detached task never observed");
            std::thread::yield_now();
        }
    }
}
