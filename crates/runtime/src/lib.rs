//! # rf-runtime — shared worker-pool runtime
//!
//! The execution substrate shared by the Ranking Facts workspace.  It hosts
//! the fixed-size [`ThreadPool`] that used to live (hand-rolled, crossbeam
//! based) inside `rf-server`, so that every layer schedules onto the same
//! abstraction:
//!
//! * `rf-core`'s `AnalysisPipeline` fans the label widgets out across the
//!   pool instead of building them serially;
//! * `rf-server` dispatches accepted connections to the pool;
//! * future scaling work (dataset sharding, batched label generation,
//!   caching refresh) gets a single place to queue work.
//!
//! A process-wide pool is available through [`global`]; independent pools can
//! be created for tests or dedicated subsystems.  Jobs are `'static` — shared
//! state crosses into the pool via `Arc`, which is how the pipeline shares
//! its analysis context between widget builders.
//!
//! Panics inside a job are caught and counted (see
//! [`ThreadPool::panicked_jobs`]) so one poisoned request cannot take a
//! worker down with it; callers that need completion signals send results
//! back over channels and treat a missing answer as a failed job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

std::thread_local! {
    /// Identity of the pool the current thread is a worker of (the address
    /// of the pool's shared panic counter), or 0 on non-worker threads.
    /// Lets [`ThreadPool::run_all`] detect re-entrant use and fall back to
    /// inline execution instead of deadlocking on its own queue.
    static WORKER_OF_POOL: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// A fixed-size pool of worker threads executing queued jobs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
    panicked: Arc<AtomicUsize>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .field("panicked_jobs", &self.panicked.load(Ordering::Relaxed))
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `size` workers (at least one).
    #[must_use]
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let panicked = Arc::new(AtomicUsize::new(0));
        let workers = (0..size)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                let panicked = Arc::clone(&panicked);
                std::thread::Builder::new()
                    .name(format!("rf-runtime-{index}"))
                    .spawn(move || worker_loop(&receiver, &panicked))
                    .expect("spawn rf-runtime worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            size,
            panicked,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of jobs that panicked since the pool was created.
    #[must_use]
    pub fn panicked_jobs(&self) -> usize {
        self.panicked.load(Ordering::Relaxed)
    }

    /// Queues a job for execution on the pool.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.sender
            .as_ref()
            .expect("pool sender alive until drop")
            .send(Box::new(job))
            .expect("pool workers alive until drop");
    }

    /// Queues a job and guarantees `notify` runs after it finishes — even
    /// when the job panics.
    ///
    /// This is the completion hook event-driven callers build on: the
    /// `rf-server` reactor dispatches label generation here with a notifier
    /// that signals its wake eventfd, so a finished (or crashed) job always
    /// pulls the reactor out of `epoll_wait` to collect the result.  Without
    /// the panic guarantee, a crashing handler would leave the reactor
    /// asleep and its connection stranded.
    pub fn execute_notify<F, N>(&self, job: F, notify: N)
    where
        F: FnOnce() + Send + 'static,
        N: FnOnce() + Send + 'static,
    {
        struct NotifyOnDrop<N: FnOnce()>(Option<N>);
        impl<N: FnOnce()> Drop for NotifyOnDrop<N> {
            fn drop(&mut self) {
                if let Some(notify) = self.0.take() {
                    notify();
                }
            }
        }
        let guard = NotifyOnDrop(Some(notify));
        self.execute(move || {
            // Dropped when the closure ends — normally or by unwinding.
            let _guard = guard;
            job();
        });
    }

    /// Runs every job on the pool and blocks until all of them finish,
    /// returning the outputs in job order.
    ///
    /// A job that panics yields `None` in its slot; the others still run to
    /// completion.
    ///
    /// Safe to call from inside a job running on this same pool: nested
    /// calls execute their jobs inline on the calling worker (blocking on
    /// the shared queue from a worker would deadlock once every worker
    /// waited on jobs stuck behind it).
    pub fn run_all<T, F>(&self, jobs: Vec<F>) -> Vec<Option<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if WORKER_OF_POOL.with(std::cell::Cell::get) == Arc::as_ptr(&self.panicked) as usize {
            return jobs
                .into_iter()
                .map(|job| match catch_unwind(AssertUnwindSafe(job)) {
                    Ok(output) => Some(output),
                    Err(_) => {
                        self.panicked.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                })
                .collect();
        }
        let total = jobs.len();
        let (sender, receiver) = channel::<(usize, T)>();
        for (index, job) in jobs.into_iter().enumerate() {
            let sender = sender.clone();
            self.execute(move || {
                let output = job();
                // The receiver may be gone if the caller gave up; ignore.
                let _ = sender.send((index, output));
            });
        }
        drop(sender);
        let mut outputs: Vec<Option<T>> = (0..total).map(|_| None).collect();
        while let Ok((index, output)) = receiver.recv() {
            outputs[index] = Some(output);
        }
        outputs
    }

    /// Runs `f` over contiguous shards of `0..len` on the pool and returns
    /// the shard outputs **in shard order** — the deterministic merge that
    /// keeps sharded computations byte-identical to a single sequential pass
    /// whenever `f` is a pure function of its range (concatenating the
    /// outputs of `shard_ranges(len, s)` reproduces `f(0..len)` exactly for
    /// any row-wise map).
    ///
    /// `max_shards` bounds the fan-out; `0` means "pick for me" (twice the
    /// pool size, so an unlucky slow shard can overlap with the rest).  A
    /// shard whose closure panics yields `None` in its slot — callers that
    /// need errors surface them by position via [`shard_ranges`].
    ///
    /// Like [`ThreadPool::run_all`], safe to call from inside a job on this
    /// same pool (nested calls run inline).
    pub fn map_shards<R, F>(&self, len: usize, max_shards: usize, f: F) -> Vec<Option<R>>
    where
        R: Send + 'static,
        F: Fn(std::ops::Range<usize>) -> R + Send + Sync + 'static,
    {
        let max_shards = if max_shards == 0 {
            self.size * 2
        } else {
            max_shards
        };
        let f = Arc::new(f);
        let jobs: Vec<_> = shard_ranges(len, max_shards)
            .into_iter()
            .map(|range| {
                let f = Arc::clone(&f);
                move || f(range)
            })
            .collect();
        self.run_all(jobs)
    }
}

/// Splits `0..len` into at most `max_shards` contiguous, near-equal ranges
/// (the first `len % shards` ranges are one element longer).  Deterministic
/// in `(len, max_shards)`; returns no ranges for an empty domain.
#[must_use]
pub fn shard_ranges(len: usize, max_shards: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = max_shards.max(1).min(len);
    let base = len / shards;
    let extra = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for shard in 0..shards {
        let size = base + usize::from(shard < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets the workers drain queued jobs and exit.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>, panicked: &Arc<AtomicUsize>) {
    WORKER_OF_POOL.with(|cell| cell.set(Arc::as_ptr(panicked) as usize));
    loop {
        let job = {
            let guard = match receiver.lock() {
                Ok(guard) => guard,
                // A worker panicked while holding the lock; the queue is in a
                // consistent state (Receiver has no interior invariants we
                // rely on), so keep serving.
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        match job {
            Ok(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    panicked.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => return, // Channel closed: pool is shutting down.
        }
    }
}

/// The process-wide shared pool, sized to the available parallelism.
///
/// Created on first use and kept alive for the lifetime of the process — the
/// label pipeline, the server, and the benches all schedule onto it unless
/// given a dedicated pool.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        ThreadPool::new(parallelism.clamp(2, 32))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_queued_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let (sender, receiver) = channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let sender = sender.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                sender.send(()).unwrap();
            });
        }
        drop(sender);
        assert_eq!(receiver.iter().count(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn execute_notify_signals_after_completion_and_after_panic() {
        let pool = ThreadPool::new(2);
        let (sender, receiver) = channel();

        // Normal completion: the job's effect is visible before the notify.
        let counter = Arc::new(AtomicU64::new(0));
        let job_counter = Arc::clone(&counter);
        let notify_counter = Arc::clone(&counter);
        let notify_sender = sender.clone();
        pool.execute_notify(
            move || {
                job_counter.fetch_add(1, Ordering::SeqCst);
            },
            move || {
                notify_sender
                    .send(notify_counter.load(Ordering::SeqCst))
                    .unwrap();
            },
        );
        assert_eq!(receiver.recv().unwrap(), 1, "notify runs after the job");

        // A panicking job still notifies (the reactor must always wake).
        let panic_sender = sender.clone();
        pool.execute_notify(
            || panic!("boom"),
            move || {
                panic_sender.send(42).unwrap();
            },
        );
        assert_eq!(receiver.recv().unwrap(), 42, "notify survives a panic");
        drop(sender);
        // The pool is still healthy afterwards.
        let outputs = pool.run_all(vec![|| 7usize]);
        assert_eq!(outputs[0], Some(7));
    }

    #[test]
    fn run_all_preserves_job_order() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..20).map(|i| move || i * 10).collect();
        let outputs = pool.run_all(jobs);
        for (i, output) in outputs.iter().enumerate() {
            assert_eq!(*output, Some(i * 10));
        }
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = ThreadPool::new(2);
        let outputs = pool.run_all(vec![
            Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
            Box::new(|| panic!("boom")),
            Box::new(|| 3usize),
        ]);
        assert_eq!(outputs[0], Some(1));
        assert_eq!(outputs[1], None);
        assert_eq!(outputs[2], Some(3));
        // The counter is incremented after the job's channels unwind, so the
        // panicked job may not be recorded the instant run_all returns.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while pool.panicked_jobs() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.panicked_jobs(), 1);
    }

    #[test]
    fn drop_joins_workers_after_draining() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn nested_run_all_on_the_same_pool_does_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(2));
        // Saturate the pool with jobs that each fan out again on the same
        // pool; the inner run_all must fall back to inline execution.
        let jobs: Vec<_> = (0..4)
            .map(|outer| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner: Vec<_> = (0..3usize).map(|i| move || outer * 10 + i).collect();
                    pool.run_all(inner)
                }
            })
            .collect();
        let outputs = pool.run_all(jobs);
        for (outer, slot) in outputs.into_iter().enumerate() {
            let inner = slot.expect("outer job completed");
            let values: Vec<_> = inner.into_iter().map(Option::unwrap).collect();
            assert_eq!(values, vec![outer * 10, outer * 10 + 1, outer * 10 + 2]);
        }
    }

    #[test]
    fn shard_ranges_partition_the_domain() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            for shards in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(len, shards);
                assert!(ranges.len() <= shards.max(1));
                // Contiguous cover of 0..len, in order.
                let mut cursor = 0;
                for range in &ranges {
                    assert_eq!(range.start, cursor);
                    assert!(!range.is_empty());
                    cursor = range.end;
                }
                assert_eq!(cursor, len);
                // Near-equal sizes: max - min <= 1.
                if let (Some(max), Some(min)) = (
                    ranges.iter().map(ExactSizeIterator::len).max(),
                    ranges.iter().map(ExactSizeIterator::len).min(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn map_shards_merges_in_shard_order() {
        let pool = ThreadPool::new(3);
        let input: Vec<u64> = (0..103).map(|i| i * 3 + 1).collect();
        let expected: Vec<u64> = input.iter().map(|v| v * v).collect();
        let shared = Arc::new(input);
        let data = Arc::clone(&shared);
        let outputs = pool.map_shards(shared.len(), 0, move |range| {
            data[range].iter().map(|v| v * v).collect::<Vec<u64>>()
        });
        let merged: Vec<u64> = outputs
            .into_iter()
            .flat_map(|slot| slot.expect("no shard panicked"))
            .collect();
        assert_eq!(merged, expected);
    }

    #[test]
    fn map_shards_reports_panicked_shards_by_position() {
        let pool = ThreadPool::new(2);
        let outputs = pool.map_shards(4, 4, |range| {
            assert!(range.start != 2, "boom");
            range.start
        });
        assert_eq!(outputs.len(), 4);
        assert_eq!(outputs[0], Some(0));
        assert_eq!(outputs[1], Some(1));
        assert_eq!(outputs[2], None);
        assert_eq!(outputs[3], Some(3));
    }

    #[test]
    fn map_shards_on_empty_domain_is_empty() {
        let pool = ThreadPool::new(2);
        let outputs = pool.map_shards(0, 0, |range| range.len());
        assert!(outputs.is_empty());
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let pool = global();
        assert!(pool.size() >= 2);
        let again = global();
        assert!(std::ptr::eq(pool, again));
    }
}
