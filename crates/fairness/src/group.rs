//! Binary protected-group membership.
//!
//! "We denote one or several values of the sensitive attribute as a
//! *protected feature*.  For example, for the sensitive attribute gender, the
//! assignment gender=F is a protected feature" (paper §2.3).  A
//! [`ProtectedGroup`] binds a sensitive attribute of a table to one of its
//! two values and exposes, for any ranking of that table, the membership
//! sequence in rank order — the only thing the fairness measures need.

use crate::error::{FairnessError, FairnessResult};
use rf_ranking::Ranking;
use rf_table::Table;

/// Membership of every row in a binary protected group.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProtectedGroup {
    /// Name of the sensitive attribute.
    pub attribute: String,
    /// The attribute value treated as protected.
    pub protected_value: String,
    /// The other value of the binary attribute.
    pub non_protected_value: String,
    /// `membership[i]` is `true` when row `i` belongs to the protected group.
    membership: Vec<bool>,
}

impl ProtectedGroup {
    /// Builds the membership vector for `protected_value` of the sensitive
    /// attribute `attribute` of `table`.
    ///
    /// The attribute must be binary (exactly two distinct non-missing values)
    /// and fully populated, mirroring the tool's documented limitation.
    ///
    /// # Errors
    /// * [`FairnessError::NonBinaryAttribute`] when the attribute does not
    ///   have exactly two distinct values.
    /// * [`FairnessError::UnknownProtectedValue`] when `protected_value` is
    ///   not one of them.
    /// * [`FairnessError::MissingGroupLabel`] when any row lacks a value.
    /// * [`FairnessError::DegenerateGroup`] when either group would be empty.
    pub fn from_table(
        table: &Table,
        attribute: &str,
        protected_value: &str,
    ) -> FairnessResult<Self> {
        let labels = table.categorical_column(attribute)?;
        // Missing labels are an error: every ranked item needs a group.
        for (row, label) in labels.iter().enumerate() {
            if label.is_none() {
                return Err(FairnessError::MissingGroupLabel { row });
            }
        }
        let mut domain: Vec<String> = Vec::new();
        for label in labels.iter().flatten() {
            if !domain.contains(label) {
                domain.push(label.clone());
            }
        }
        if domain.len() != 2 {
            return Err(FairnessError::NonBinaryAttribute {
                attribute: attribute.to_string(),
                distinct: domain.len(),
            });
        }
        if !domain.iter().any(|v| v == protected_value) {
            return Err(FairnessError::UnknownProtectedValue {
                value: protected_value.to_string(),
                domain,
            });
        }
        let non_protected_value = domain
            .iter()
            .find(|v| v.as_str() != protected_value)
            .cloned()
            .expect("binary domain has another value");
        let membership: Vec<bool> = labels
            .iter()
            .map(|label| label.as_deref() == Some(protected_value))
            .collect();
        let protected_count = membership.iter().filter(|&&m| m).count();
        if protected_count == 0 {
            return Err(FairnessError::DegenerateGroup { which: "protected" });
        }
        if protected_count == membership.len() {
            return Err(FairnessError::DegenerateGroup {
                which: "non-protected",
            });
        }
        Ok(ProtectedGroup {
            attribute: attribute.to_string(),
            protected_value: protected_value.to_string(),
            non_protected_value,
            membership,
        })
    }

    /// Builds a group directly from a membership vector (used by synthetic
    /// workloads and tests).
    ///
    /// # Errors
    /// [`FairnessError::DegenerateGroup`] when either group is empty.
    pub fn from_membership(
        attribute: impl Into<String>,
        protected_value: impl Into<String>,
        membership: Vec<bool>,
    ) -> FairnessResult<Self> {
        let protected_count = membership.iter().filter(|&&m| m).count();
        if membership.is_empty() || protected_count == 0 {
            return Err(FairnessError::DegenerateGroup { which: "protected" });
        }
        if protected_count == membership.len() {
            return Err(FairnessError::DegenerateGroup {
                which: "non-protected",
            });
        }
        Ok(ProtectedGroup {
            attribute: attribute.into(),
            protected_value: protected_value.into(),
            non_protected_value: "other".to_string(),
            membership,
        })
    }

    /// Number of rows covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.membership.len()
    }

    /// `true` when no rows are covered (construction prevents this).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.membership.is_empty()
    }

    /// Whether row `index` belongs to the protected group.
    #[must_use]
    pub fn is_protected(&self, index: usize) -> bool {
        self.membership.get(index).copied().unwrap_or(false)
    }

    /// Number of protected rows in the whole dataset.
    #[must_use]
    pub fn protected_count(&self) -> usize {
        self.membership.iter().filter(|&&m| m).count()
    }

    /// Proportion of protected rows in the whole dataset.
    #[must_use]
    pub fn protected_proportion(&self) -> f64 {
        if self.membership.is_empty() {
            return 0.0;
        }
        self.protected_count() as f64 / self.membership.len() as f64
    }

    /// Protected-group membership of the ranked items, in rank order
    /// (best first).
    ///
    /// # Errors
    /// [`FairnessError::InvalidK`] when the ranking refers to rows outside the
    /// membership vector.
    pub fn membership_in_rank_order(&self, ranking: &Ranking) -> FairnessResult<Vec<bool>> {
        let mut out = Vec::with_capacity(ranking.len());
        for item in ranking.items() {
            if item.index >= self.membership.len() {
                return Err(FairnessError::InvalidK {
                    k: item.index,
                    n: self.membership.len(),
                });
            }
            out.push(self.membership[item.index]);
        }
        Ok(out)
    }

    /// Number of protected items among the top-k of `ranking`.
    ///
    /// # Errors
    /// Propagates [`ProtectedGroup::membership_in_rank_order`] errors and
    /// rejects `k == 0` or `k > n`.
    pub fn protected_in_top_k(&self, ranking: &Ranking, k: usize) -> FairnessResult<usize> {
        if k == 0 || k > ranking.len() {
            return Err(FairnessError::InvalidK {
                k,
                n: ranking.len(),
            });
        }
        let members = self.membership_in_rank_order(ranking)?;
        Ok(members[..k].iter().filter(|&&m| m).count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::{Column, Table};

    fn table() -> Table {
        Table::from_columns(vec![
            ("name", Column::from_strings(["a", "b", "c", "d", "e", "f"])),
            (
                "size",
                Column::from_strings(["large", "small", "large", "small", "small", "large"]),
            ),
            (
                "score",
                Column::from_f64(vec![6.0, 5.0, 4.0, 3.0, 2.0, 1.0]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn builds_membership_from_table() {
        let g = ProtectedGroup::from_table(&table(), "size", "small").unwrap();
        assert_eq!(g.len(), 6);
        assert_eq!(g.protected_count(), 3);
        assert!((g.protected_proportion() - 0.5).abs() < 1e-12);
        assert!(!g.is_protected(0));
        assert!(g.is_protected(1));
        assert_eq!(g.non_protected_value, "large");
        assert!(!g.is_empty());
    }

    #[test]
    fn protected_value_must_exist() {
        let err = ProtectedGroup::from_table(&table(), "size", "medium").unwrap_err();
        assert!(matches!(err, FairnessError::UnknownProtectedValue { .. }));
    }

    #[test]
    fn non_binary_attribute_rejected() {
        let t = Table::from_columns(vec![(
            "region",
            Column::from_strings(["NE", "MW", "SA", "NE", "W"]),
        )])
        .unwrap();
        let err = ProtectedGroup::from_table(&t, "region", "NE").unwrap_err();
        assert!(matches!(
            err,
            FairnessError::NonBinaryAttribute { distinct: 4, .. }
        ));
    }

    #[test]
    fn single_valued_attribute_rejected() {
        let t = Table::from_columns(vec![("g", Column::from_strings(["x", "x", "x"]))]).unwrap();
        let err = ProtectedGroup::from_table(&t, "g", "x").unwrap_err();
        assert!(matches!(
            err,
            FairnessError::NonBinaryAttribute { distinct: 1, .. }
        ));
    }

    #[test]
    fn missing_labels_rejected() {
        let t = Table::from_columns(vec![(
            "g",
            Column::Str(vec![Some("a".to_string()), None, Some("b".to_string())]),
        )])
        .unwrap();
        let err = ProtectedGroup::from_table(&t, "g", "a").unwrap_err();
        assert!(matches!(err, FairnessError::MissingGroupLabel { row: 1 }));
    }

    #[test]
    fn boolean_attribute_works() {
        let t = Table::from_columns(vec![(
            "large",
            Column::from_bools(vec![true, false, true, false]),
        )])
        .unwrap();
        let g = ProtectedGroup::from_table(&t, "large", "false").unwrap();
        assert_eq!(g.protected_count(), 2);
        assert_eq!(g.non_protected_value, "true");
    }

    #[test]
    fn from_membership_validations() {
        assert!(ProtectedGroup::from_membership("g", "x", vec![]).is_err());
        assert!(ProtectedGroup::from_membership("g", "x", vec![true, true]).is_err());
        assert!(ProtectedGroup::from_membership("g", "x", vec![false, false]).is_err());
        let g = ProtectedGroup::from_membership("g", "x", vec![true, false]).unwrap();
        assert_eq!(g.protected_count(), 1);
    }

    #[test]
    fn membership_in_rank_order_follows_ranking() {
        let t = table();
        let g = ProtectedGroup::from_table(&t, "size", "small").unwrap();
        // Rank by score ascending (so worst score first) to exercise reordering.
        let scores = t.numeric_column("score").unwrap();
        let inverted: Vec<f64> = scores.iter().map(|s| -s).collect();
        let ranking = Ranking::from_scores(&inverted).unwrap();
        // Ranking order is rows 5,4,3,2,1,0 → sizes large, small, small, large, small, large.
        let members = g.membership_in_rank_order(&ranking).unwrap();
        assert_eq!(members, vec![false, true, true, false, true, false]);
        assert_eq!(g.protected_in_top_k(&ranking, 3).unwrap(), 2);
    }

    #[test]
    fn top_k_bounds_checked() {
        let t = table();
        let g = ProtectedGroup::from_table(&t, "size", "small").unwrap();
        let ranking = Ranking::from_scores(&t.numeric_column("score").unwrap()).unwrap();
        assert!(g.protected_in_top_k(&ranking, 0).is_err());
        assert!(g.protected_in_top_k(&ranking, 7).is_err());
        assert_eq!(g.protected_in_top_k(&ranking, 6).unwrap(), 3);
    }
}
