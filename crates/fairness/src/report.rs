//! The combined fairness report consumed by the Fairness widget.
//!
//! For each protected feature (e.g. `DeptSizeBin = large` and
//! `DeptSizeBin = small` in Figure 1), the widget shows the verdict of three
//! measures side by side: FA*IR, Pairwise and Proportion, each with its
//! p-value.  [`FairnessReport::evaluate`] produces exactly that row.

use crate::error::FairnessResult;
use crate::fair_star::{FairStarOutcome, FairStarTest};
use crate::group::ProtectedGroup;
use crate::measures::DiscountedMeasures;
use crate::pairwise::{PairwiseOutcome, PairwiseTest};
use crate::proportion::{ProportionOutcome, ProportionTest};
use rf_ranking::Ranking;

/// Fair / unfair verdict of a single measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FairnessVerdict {
    /// The statistical test did not reject the fairness null hypothesis.
    Fair,
    /// The statistical test rejected the fairness null hypothesis.
    Unfair,
}

impl FairnessVerdict {
    /// Builds a verdict from a boolean "is fair" flag.
    #[must_use]
    pub fn from_fair(fair: bool) -> Self {
        if fair {
            FairnessVerdict::Fair
        } else {
            FairnessVerdict::Unfair
        }
    }

    /// Label used by the rendered widget.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FairnessVerdict::Fair => "fair",
            FairnessVerdict::Unfair => "unfair",
        }
    }
}

/// One measure's outcome: name, p-value, verdict.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeasureOutcome {
    /// Measure name as shown in the widget ("FA*IR", "Pairwise", "Proportion").
    pub measure: String,
    /// The measure's p-value.
    pub p_value: f64,
    /// Fair / unfair at the measure's significance level.
    pub verdict: FairnessVerdict,
}

/// Configuration shared by the three fairness measures.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FairnessConfig {
    /// Audited prefix size (top-k); the paper uses 10.
    pub k: usize,
    /// Significance level for every measure.
    pub alpha: f64,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        FairnessConfig { k: 10, alpha: 0.05 }
    }
}

/// The full fairness report for one protected feature.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FairnessReport {
    /// Sensitive attribute name.
    pub attribute: String,
    /// Protected feature (attribute value).
    pub protected_value: String,
    /// Proportion of the protected group in the whole dataset.
    pub protected_proportion: f64,
    /// FA*IR outcome.
    pub fair_star: FairStarOutcome,
    /// Pairwise outcome.
    pub pairwise: PairwiseOutcome,
    /// Proportion-test outcome.
    pub proportion: ProportionOutcome,
    /// Position-discounted measures (rND / rKL / rRD) for the detailed view.
    pub discounted: DiscountedMeasures,
    /// Significance level shared by the verdicts.
    pub alpha: f64,
}

impl FairnessReport {
    /// Evaluates all fairness measures of `group` on `ranking`.
    ///
    /// The FA*IR target proportion `p` is set to the group's overall
    /// proportion in the dataset, which is how Ranking Facts parameterizes
    /// the test.  Equivalent to the four `evaluate_*` helpers followed by
    /// [`FairnessReport::from_parts`] — callers that parallelize per measure
    /// (the `rf-core` pipeline) use those pieces directly, so both paths
    /// share one construction.
    ///
    /// # Errors
    /// Propagates any measure error (degenerate groups, k out of range, …).
    pub fn evaluate(
        group: &ProtectedGroup,
        ranking: &Ranking,
        config: &FairnessConfig,
    ) -> FairnessResult<Self> {
        let fair_star = Self::evaluate_fair_star(group, ranking, config)?;
        let pairwise = Self::evaluate_pairwise(group, ranking, config)?;
        let proportion = Self::evaluate_proportion(group, ranking, config)?;
        let discounted = Self::evaluate_discounted(group, ranking)?;
        Ok(Self::from_parts(
            group, fair_star, pairwise, proportion, discounted, config,
        ))
    }

    /// The FA*IR measure alone (target proportion = the group's overall
    /// proportion, as the tool parameterizes it).
    ///
    /// # Errors
    /// FA*IR construction or evaluation errors.
    pub fn evaluate_fair_star(
        group: &ProtectedGroup,
        ranking: &Ranking,
        config: &FairnessConfig,
    ) -> FairnessResult<FairStarOutcome> {
        FairStarTest::new(config.k, group.protected_proportion())?
            .with_alpha(config.alpha)?
            .evaluate(group, ranking)
    }

    /// The pairwise measure alone.
    ///
    /// # Errors
    /// Pairwise construction or evaluation errors.
    pub fn evaluate_pairwise(
        group: &ProtectedGroup,
        ranking: &Ranking,
        config: &FairnessConfig,
    ) -> FairnessResult<PairwiseOutcome> {
        PairwiseTest::new()
            .with_alpha(config.alpha)?
            .evaluate(group, ranking)
    }

    /// The proportion measure alone.
    ///
    /// # Errors
    /// Proportion construction or evaluation errors.
    pub fn evaluate_proportion(
        group: &ProtectedGroup,
        ranking: &Ranking,
        config: &FairnessConfig,
    ) -> FairnessResult<ProportionOutcome> {
        ProportionTest::new(config.k)?
            .with_alpha(config.alpha)?
            .evaluate(group, ranking)
    }

    /// The position-discounted measures alone.
    ///
    /// # Errors
    /// Discounted-measure evaluation errors.
    pub fn evaluate_discounted(
        group: &ProtectedGroup,
        ranking: &Ranking,
    ) -> FairnessResult<DiscountedMeasures> {
        DiscountedMeasures::evaluate(group, ranking)
    }

    /// Assembles a report from independently evaluated measure outcomes —
    /// the inverse of taking the four `evaluate_*` pieces apart.
    #[must_use]
    pub fn from_parts(
        group: &ProtectedGroup,
        fair_star: FairStarOutcome,
        pairwise: PairwiseOutcome,
        proportion: ProportionOutcome,
        discounted: DiscountedMeasures,
        config: &FairnessConfig,
    ) -> Self {
        FairnessReport {
            attribute: group.attribute.clone(),
            protected_value: group.protected_value.clone(),
            protected_proportion: group.protected_proportion(),
            fair_star,
            pairwise,
            proportion,
            discounted,
            alpha: config.alpha,
        }
    }

    /// The three measure outcomes in widget order (FA*IR, Pairwise, Proportion).
    #[must_use]
    pub fn outcomes(&self) -> Vec<MeasureOutcome> {
        vec![
            MeasureOutcome {
                measure: "FA*IR".to_string(),
                p_value: self.fair_star.p_value,
                verdict: FairnessVerdict::from_fair(self.fair_star.satisfied),
            },
            MeasureOutcome {
                measure: "Pairwise".to_string(),
                p_value: self.pairwise.p_value,
                verdict: FairnessVerdict::from_fair(self.pairwise.fair),
            },
            MeasureOutcome {
                measure: "Proportion".to_string(),
                p_value: self.proportion.p_value,
                verdict: FairnessVerdict::from_fair(self.proportion.fair),
            },
        ]
    }

    /// `true` when every measure calls the ranking fair for this group.
    #[must_use]
    pub fn all_fair(&self) -> bool {
        self.fair_star.satisfied && self.pairwise.fair && self.proportion.fair
    }

    /// `true` when at least one measure calls the ranking unfair.
    #[must_use]
    pub fn any_unfair(&self) -> bool {
        !self.all_fair()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_from(members: &[bool]) -> ProtectedGroup {
        ProtectedGroup::from_membership("size", "small", members.to_vec()).unwrap()
    }

    fn identity_ranking(n: usize) -> Ranking {
        Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn verdict_labels() {
        assert_eq!(FairnessVerdict::from_fair(true), FairnessVerdict::Fair);
        assert_eq!(FairnessVerdict::from_fair(false), FairnessVerdict::Unfair);
        assert_eq!(FairnessVerdict::Fair.as_str(), "fair");
        assert_eq!(FairnessVerdict::Unfair.as_str(), "unfair");
    }

    #[test]
    fn default_config_matches_paper() {
        let c = FairnessConfig::default();
        assert_eq!(c.k, 10);
        assert_eq!(c.alpha, 0.05);
    }

    #[test]
    fn balanced_ranking_reports_fair_everywhere() {
        let members: Vec<bool> = (0..60).map(|i| i % 2 == 0).collect();
        let group = group_from(&members);
        let ranking = identity_ranking(60);
        let report =
            FairnessReport::evaluate(&group, &ranking, &FairnessConfig::default()).unwrap();
        assert!(report.all_fair());
        assert!(!report.any_unfair());
        assert_eq!(report.outcomes().len(), 3);
        for outcome in report.outcomes() {
            assert_eq!(outcome.verdict, FairnessVerdict::Fair);
            assert!((0.0..=1.0).contains(&outcome.p_value));
        }
        assert!((report.protected_proportion - 0.5).abs() < 1e-12);
    }

    #[test]
    fn segregated_ranking_reports_unfair_everywhere() {
        let mut members = vec![false; 30];
        members.extend(vec![true; 30]);
        let group = group_from(&members);
        let ranking = identity_ranking(60);
        let report =
            FairnessReport::evaluate(&group, &ranking, &FairnessConfig::default()).unwrap();
        assert!(report.any_unfair());
        assert!(!report.all_fair());
        for outcome in report.outcomes() {
            assert_eq!(outcome.verdict, FairnessVerdict::Unfair);
        }
        assert!(report.discounted.rnd > 0.8);
    }

    #[test]
    fn report_carries_group_identity() {
        let members: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        let group = group_from(&members);
        let ranking = identity_ranking(30);
        let report =
            FairnessReport::evaluate(&group, &ranking, &FairnessConfig::default()).unwrap();
        assert_eq!(report.attribute, "size");
        assert_eq!(report.protected_value, "small");
        assert_eq!(report.alpha, 0.05);
    }

    #[test]
    fn k_larger_than_ranking_is_error() {
        let members = vec![true, false, true, false];
        let group = group_from(&members);
        let ranking = identity_ranking(4);
        let config = FairnessConfig { k: 10, alpha: 0.05 };
        assert!(FairnessReport::evaluate(&group, &ranking, &config).is_err());
    }

    #[test]
    fn measures_can_disagree_on_borderline_cases() {
        // A mildly skewed ranking: proportion test at k=10 usually lacks power
        // while FA*IR's prefix checks may or may not fire.  We only check the
        // report is well-formed and the verdicts are consistent with p-values.
        let members: Vec<bool> = (0..40).map(|i| (i * 7) % 3 == 0).collect();
        let group = group_from(&members);
        let ranking = identity_ranking(40);
        let report =
            FairnessReport::evaluate(&group, &ranking, &FairnessConfig::default()).unwrap();
        for outcome in report.outcomes() {
            if outcome.measure == "FA*IR" {
                // FA*IR's verdict uses the adjusted threshold, not alpha itself.
                continue;
            }
            let expected_fair = outcome.p_value >= report.alpha;
            assert_eq!(outcome.verdict == FairnessVerdict::Fair, expected_fair);
        }
    }
}
