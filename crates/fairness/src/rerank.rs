//! Constructive FA*IR re-ranking (Zehlike et al., CIKM 2017, Algorithm 2).
//!
//! The FA*IR *test* ([`crate::fair_star`]) only diagnoses a ranking; the
//! FA*IR *algorithm* repairs it.  The paper's §4 announces exactly this kind
//! of extension — "methods that help the user mitigate lack of fairness and
//! diversity by suggesting modified scoring functions" — and re-ranking is
//! the measure-preserving counterpart: instead of changing the recipe, it
//! changes the order just enough to satisfy ranked group fairness.
//!
//! The algorithm maintains two queues — protected and non-protected
//! candidates, each in score order — and walks output positions `1..=n`.
//! At position `i` it first checks the minimum-protected table: if the number
//! of protected items placed so far is below `m(i)` (for `i ≤ k`), the best
//! remaining protected candidate is forced into the position; otherwise the
//! better-scored head of the two queues is taken.  The result is the
//! highest-utility ranking (among those preserving within-group order) whose
//! every audited prefix satisfies the FA*IR constraint.
//!
//! [`RerankOutcome`] reports the repaired order together with how much the
//! repair cost: which items were boosted into the top-k, the per-position
//! score loss, and the rank correlation with the original order.

use crate::error::{FairnessError, FairnessResult};
use crate::fair_star::{adjust_alpha, minimum_protected_table, FairStarTest};
use crate::group::ProtectedGroup;
use rf_ranking::{kendall_tau_rankings, Ranking};

/// Configuration of a FA*IR re-ranking pass.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FairRerank {
    /// Prefix length whose every sub-prefix must satisfy the constraint.
    pub k: usize,
    /// Target minimum protected proportion (the group's overall proportion by
    /// default in Ranking Facts).
    pub p: f64,
    /// Family-wise significance level.
    pub alpha: f64,
    /// Whether to use the multiple-testing-adjusted significance level when
    /// building the minimum-protected table.
    pub adjust: bool,
}

impl FairRerank {
    /// Creates a re-ranker with the tool's defaults (`alpha = 0.05`, adjusted).
    ///
    /// # Errors
    /// Returns an error unless `0 < p < 1` and `k > 0`.
    pub fn new(k: usize, p: f64) -> FairnessResult<Self> {
        // Reuse the test constructor's validation.
        let test = FairStarTest::new(k, p)?;
        Ok(FairRerank {
            k,
            p,
            alpha: test.alpha,
            adjust: true,
        })
    }

    /// Sets the family-wise significance level.
    ///
    /// # Errors
    /// Returns an error unless `0 < alpha < 1`.
    pub fn with_alpha(mut self, alpha: f64) -> FairnessResult<Self> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(FairnessError::InvalidParameter {
                parameter: "alpha",
                message: format!("significance level must lie strictly in (0, 1), got {alpha}"),
            });
        }
        self.alpha = alpha;
        Ok(self)
    }

    /// Enables or disables the multiple-testing adjustment.
    #[must_use]
    pub fn with_adjustment(mut self, adjust: bool) -> Self {
        self.adjust = adjust;
        self
    }

    /// Re-ranks `ranking` so that every prefix of length `1..=k` contains at
    /// least the FA*IR minimum number of protected items, pulling protected
    /// candidates up from below when necessary.
    ///
    /// Within each group the original (score) order is preserved; positions
    /// beyond `k` are filled greedily by score, so the output is a
    /// permutation of the same items.
    ///
    /// # Errors
    /// Returns an error when `k` exceeds the ranking length, the group does
    /// not cover the ranking, or there are fewer protected items than the
    /// table requires at position `k`.
    pub fn rerank(
        &self,
        group: &ProtectedGroup,
        ranking: &Ranking,
    ) -> FairnessResult<RerankOutcome> {
        let n = ranking.len();
        if self.k == 0 || self.k > n {
            return Err(FairnessError::InvalidK { k: self.k, n });
        }
        let members = group.membership_in_rank_order(ranking)?;

        let alpha_used = if self.adjust {
            adjust_alpha(self.k, self.p, self.alpha)?
        } else {
            self.alpha
        };
        let required = minimum_protected_table(self.k, self.p, alpha_used)?;

        // Feasibility: the dataset must contain at least m(k) protected items.
        let total_protected = members.iter().filter(|&&m| m).count();
        if total_protected < required[self.k - 1] {
            return Err(FairnessError::InvalidParameter {
                parameter: "p",
                message: format!(
                    "the ranking contains only {total_protected} protected items but the \
                     FA*IR table requires {} within the top-{}",
                    required[self.k - 1],
                    self.k
                ),
            });
        }

        // Two queues over positions of the *original* ranking, best first.
        let items = ranking.items();
        let protected_queue: Vec<usize> = (0..n).filter(|&i| members[i]).collect();
        let other_queue: Vec<usize> = (0..n).filter(|&i| !members[i]).collect();
        let mut p_head = 0usize;
        let mut o_head = 0usize;

        let mut merged_positions = Vec::with_capacity(n);
        let mut protected_placed = 0usize;
        for out_pos in 0..n {
            let need_protected = required
                .get(out_pos)
                .is_some_and(|&minimum| protected_placed < minimum);
            let take_protected = if p_head >= protected_queue.len() {
                false
            } else if o_head >= other_queue.len() || need_protected {
                true
            } else {
                // Both heads available and no constraint pressure: take the
                // better-scored one (lower original position = higher score).
                protected_queue[p_head] < other_queue[o_head]
            };
            if take_protected {
                merged_positions.push(protected_queue[p_head]);
                p_head += 1;
                protected_placed += 1;
            } else {
                merged_positions.push(other_queue[o_head]);
                o_head += 1;
            }
        }

        // Translate original-ranking positions back to row indices.
        let new_order: Vec<usize> = merged_positions
            .iter()
            .map(|&pos| items[pos].index)
            .collect();
        let reranked = Ranking::from_order(&new_order)?;

        // Diagnostics -----------------------------------------------------
        let original_scores = ranking.scores_in_rank_order();
        let mut score_loss_at = Vec::with_capacity(self.k);
        let mut total_score_loss = 0.0f64;
        for (out_pos, &orig_pos) in merged_positions.iter().enumerate().take(self.k) {
            let loss = (original_scores[out_pos] - original_scores[orig_pos]).max(0.0);
            score_loss_at.push(loss);
            total_score_loss += loss;
        }

        let original_top_k: Vec<usize> = ranking.top_k_indices(self.k);
        let boosted_into_top_k: Vec<usize> = reranked
            .top_k_indices(self.k)
            .into_iter()
            .filter(|idx| !original_top_k.contains(idx))
            .collect();
        let max_rank_boost = merged_positions
            .iter()
            .enumerate()
            .take(self.k)
            .map(|(out_pos, &orig_pos)| orig_pos.saturating_sub(out_pos))
            .max()
            .unwrap_or(0);

        let changed = merged_positions
            .iter()
            .enumerate()
            .any(|(out_pos, &orig_pos)| out_pos != orig_pos);
        let tau_to_original = if n >= 2 {
            kendall_tau_rankings(ranking, &reranked)?
        } else {
            1.0
        };

        // Verify: the repaired ranking must pass the (same-configured) test.
        let test = FairStarTest {
            k: self.k,
            p: self.p,
            alpha: self.alpha,
            adjust: self.adjust,
        };
        let verification = test.evaluate(group, &reranked)?;

        Ok(RerankOutcome {
            reranked,
            required_minimums: required,
            alpha_adjusted: alpha_used,
            changed,
            boosted_into_top_k,
            score_loss_at,
            total_score_loss,
            max_rank_boost,
            kendall_tau_to_original: tau_to_original,
            satisfied_after: verification.satisfied,
        })
    }
}

/// Result of a FA*IR re-ranking pass.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RerankOutcome {
    /// The repaired ranking (a permutation of the original items).
    pub reranked: Ranking,
    /// Minimum protected count required at each audited prefix.
    pub required_minimums: Vec<usize>,
    /// The per-prefix significance level used to build the table.
    pub alpha_adjusted: f64,
    /// Whether the repair changed the order at all.
    pub changed: bool,
    /// Row indices pulled into the top-k that were not there originally.
    pub boosted_into_top_k: Vec<usize>,
    /// Score sacrificed at each of the first `k` positions (original score at
    /// that position minus the score of the item now occupying it).
    pub score_loss_at: Vec<f64>,
    /// Total score sacrificed over the top-k.
    pub total_score_loss: f64,
    /// Largest number of positions any item was boosted within the top-k.
    pub max_rank_boost: usize,
    /// Kendall tau between the original and the repaired ranking.
    pub kendall_tau_to_original: f64,
    /// Whether the repaired ranking passes the FA*IR test it was built for
    /// (always `true` when the input was feasible; reported for auditing).
    pub satisfied_after: bool,
}

impl RerankOutcome {
    /// Mean score loss per audited position.
    #[must_use]
    pub fn mean_score_loss(&self) -> f64 {
        if self.score_loss_at.is_empty() {
            return 0.0;
        }
        self.total_score_loss / self.score_loss_at.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_from(members: &[bool]) -> ProtectedGroup {
        ProtectedGroup::from_membership("g", "x", members.to_vec()).unwrap()
    }

    fn identity_ranking(n: usize) -> Ranking {
        let order: Vec<usize> = (0..n).collect();
        Ranking::from_order(&order).unwrap()
    }

    #[test]
    fn fair_input_is_left_untouched() {
        // Alternating membership at p = 0.5 already satisfies every prefix.
        let members: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let group = group_from(&members);
        let ranking = identity_ranking(20);
        let rr = FairRerank::new(10, 0.5).unwrap();
        let out = rr.rerank(&group, &ranking).unwrap();
        assert!(!out.changed);
        assert_eq!(out.reranked.order(), ranking.order());
        assert!(out.boosted_into_top_k.is_empty());
        assert_eq!(out.total_score_loss, 0.0);
        assert!(out.satisfied_after);
        assert!((out.kendall_tau_to_original - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segregated_input_is_repaired() {
        // All non-protected first, all protected last: maximally unfair.
        let mut members = vec![false; 10];
        members.extend(vec![true; 10]);
        let group = group_from(&members);
        let ranking = identity_ranking(20);

        let test = FairStarTest::new(10, 0.5).unwrap();
        assert!(!test.evaluate(&group, &ranking).unwrap().satisfied);

        let rr = FairRerank::new(10, 0.5).unwrap();
        let out = rr.rerank(&group, &ranking).unwrap();
        assert!(out.changed);
        assert!(out.satisfied_after);
        assert!(!out.boosted_into_top_k.is_empty());
        assert!(out.total_score_loss >= 0.0);
        assert!(out.max_rank_boost > 0);
        // The repaired ranking passes the test it was built against.
        let verify = test.evaluate(&group, &out.reranked).unwrap();
        assert!(verify.satisfied);
    }

    #[test]
    fn output_is_always_a_permutation() {
        let members: Vec<bool> = (0..30).map(|i| i % 5 == 0).collect();
        let group = group_from(&members);
        let ranking = identity_ranking(30);
        let rr = FairRerank::new(10, 0.2).unwrap();
        let out = rr.rerank(&group, &ranking).unwrap();
        let mut order = out.reranked.order();
        order.sort_unstable();
        assert_eq!(order, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn within_group_order_is_preserved() {
        let mut members = vec![false; 12];
        members.extend(vec![true; 8]);
        let group = group_from(&members);
        let ranking = identity_ranking(20);
        let rr = FairRerank::new(10, 0.4).unwrap();
        let out = rr.rerank(&group, &ranking).unwrap();
        // Protected items (original rows 12..20) must appear in their original
        // relative order; same for non-protected (rows 0..12).
        let order = out.reranked.order();
        let protected_positions: Vec<usize> = order.iter().copied().filter(|&i| i >= 12).collect();
        let other_positions: Vec<usize> = order.iter().copied().filter(|&i| i < 12).collect();
        assert!(protected_positions.windows(2).all(|w| w[0] < w[1]));
        assert!(other_positions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn infeasible_when_not_enough_protected_items() {
        // Only one protected item in the whole ranking but a high target p.
        let mut members = vec![false; 19];
        members.push(true);
        let group = group_from(&members);
        let ranking = identity_ranking(20);
        let rr = FairRerank::new(10, 0.8).unwrap();
        let err = rr.rerank(&group, &ranking).unwrap_err();
        assert!(matches!(err, FairnessError::InvalidParameter { .. }));
    }

    #[test]
    fn k_bounds_are_checked() {
        let members = vec![true, false, true, false];
        let group = group_from(&members);
        let ranking = identity_ranking(4);
        let rr = FairRerank::new(10, 0.5).unwrap();
        assert!(matches!(
            rr.rerank(&group, &ranking),
            Err(FairnessError::InvalidK { .. })
        ));
    }

    #[test]
    fn constructor_and_builder_validation() {
        assert!(FairRerank::new(0, 0.5).is_err());
        assert!(FairRerank::new(10, 0.0).is_err());
        assert!(FairRerank::new(10, 0.5).unwrap().with_alpha(0.0).is_err());
        let rr = FairRerank::new(10, 0.5)
            .unwrap()
            .with_alpha(0.01)
            .unwrap()
            .with_adjustment(false);
        assert!(!rr.adjust);
        assert_eq!(rr.alpha, 0.01);
    }

    #[test]
    fn unadjusted_table_is_at_least_as_strict() {
        // The adjusted significance level is smaller, so its minimum table is
        // never stricter than the unadjusted one; re-ranking under the
        // unadjusted table therefore boosts at least as many items.
        let mut members = vec![false; 30];
        members.extend(vec![true; 30]);
        let group = group_from(&members);
        let ranking = identity_ranking(60);
        let adjusted = FairRerank::new(20, 0.5).unwrap();
        let unadjusted = FairRerank::new(20, 0.5).unwrap().with_adjustment(false);
        let out_a = adjusted.rerank(&group, &ranking).unwrap();
        let out_u = unadjusted.rerank(&group, &ranking).unwrap();
        assert!(out_u.boosted_into_top_k.len() >= out_a.boosted_into_top_k.len());
    }

    #[test]
    fn score_loss_reflects_boosting() {
        // Scores 100, 99, ..., with protected items at the bottom.
        let scores: Vec<f64> = (0..20).map(|i| 100.0 - i as f64).collect();
        let ranking = Ranking::from_scores(&scores).unwrap();
        let mut members = vec![false; 15];
        members.extend(vec![true; 5]);
        let group = group_from(&members);
        let rr = FairRerank::new(10, 0.3).unwrap();
        let out = rr.rerank(&group, &ranking).unwrap();
        assert!(out.changed);
        assert!(out.total_score_loss > 0.0);
        assert!(out.mean_score_loss() > 0.0);
        assert_eq!(out.score_loss_at.len(), 10);
        // Every per-position loss is non-negative.
        assert!(out.score_loss_at.iter().all(|&l| l >= 0.0));
    }

    #[test]
    fn single_item_prefix_works() {
        let members = vec![true, false, false, true];
        let group = group_from(&members);
        let ranking = identity_ranking(4);
        let rr = FairRerank::new(1, 0.5).unwrap();
        let out = rr.rerank(&group, &ranking).unwrap();
        assert!(out.satisfied_after);
    }
}
