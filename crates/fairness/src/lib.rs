//! # rf-fairness
//!
//! Fairness measures for ranked outputs, reproducing the Fairness widget of
//! *"A Nutritional Label for Rankings"* (SIGMOD 2018).
//!
//! The paper's Fairness widget "presents the output of three fairness
//! measures: FA*IR, proportion, and our own pairwise measure.  All these
//! measures are statistical tests, and whether a result is fair is determined
//! by the computed p-value" (§2.3).  This crate implements all three from
//! scratch, plus the position-discounted set of measures (rND, rKL, rRD) from
//! the authors' earlier work *"Measuring Fairness in Ranked Outputs"*
//! (SSDBM 2017) that underlies the generative model the paper references.
//!
//! * [`group`] — deriving a binary protected-group membership vector from a
//!   categorical column and a ranking.
//! * [`fair_star`] — the FA*IR ranked group fairness test (Zehlike et al.,
//!   CIKM 2017): binomial minimum-protected-count table, exact multiple-test
//!   adjustment of the significance level, per-prefix verification, p-value.
//! * [`proportion`] — the proportion (statistical parity at top-k) test.
//! * [`pairwise`] — the pairwise preference measure: the probability that a
//!   protected item outranks a non-protected item, tested against 1/2.
//! * [`measures`] — rND / rKL / rRD position-discounted divergence measures.
//! * [`generative`] — the SSDBM 2017 generative model (fairness probability
//!   `f`, protected proportion `p`) used to calibrate the measures.
//! * [`rerank`] — the constructive FA*IR re-ranking algorithm that repairs an
//!   unfair ranking with minimal utility loss.
//! * [`report`] — the combined [`FairnessReport`] consumed by the label.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fair_star;
pub mod generative;
pub mod group;
pub mod measures;
pub mod pairwise;
pub mod proportion;
pub mod report;
pub mod rerank;

pub use error::{FairnessError, FairnessResult};
pub use fair_star::{adjust_alpha, minimum_protected_table, FairStarOutcome, FairStarTest};
pub use generative::{GenerativeModel, GenerativeSummary, MeasureDistribution};
pub use group::ProtectedGroup;
pub use measures::{rkl, rnd, rrd, DiscountedMeasures};
pub use pairwise::{PairwiseOutcome, PairwiseTest};
pub use proportion::{ProportionOutcome, ProportionTest};
pub use report::{FairnessReport, FairnessVerdict, MeasureOutcome};
pub use rerank::{FairRerank, RerankOutcome};
