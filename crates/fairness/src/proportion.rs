//! The proportion (statistical parity at top-k) fairness measure.
//!
//! "One typical measure compares the proportion of members of a protected
//! group who receive a positive outcome to their proportion in the overall
//! population.  [...] A measure of this kind can be adapted to rankings by
//! quantifying the proportion of members of a protected group in some
//! selected set of size k (treating the top-k as a set)" (paper §2.3,
//! following Zliobaite 2017).
//!
//! The implementation treats "selected" = top-k and "population" = the whole
//! dataset, and runs a two-proportion z-test; the ranking is labelled unfair
//! for the group when the top-k proportion differs significantly from the
//! overall proportion.

use crate::error::{FairnessError, FairnessResult};
use crate::group::ProtectedGroup;
use rf_ranking::Ranking;
use rf_stats::{two_proportion_z_test, Alternative};

/// Configuration of the proportion test.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProportionTest {
    /// Size of the selected set (top-k).
    pub k: usize,
    /// Significance level.
    pub alpha: f64,
    /// Alternative hypothesis.  The label uses
    /// [`Alternative::TwoSided`] — both under- and over-representation are
    /// flagged — matching the tool's treatment of *both* values of the
    /// sensitive attribute as protected features.
    pub alternative: Alternative,
}

impl ProportionTest {
    /// Creates a two-sided proportion test at `alpha = 0.05`.
    ///
    /// # Errors
    /// Returns an error when `k == 0`.
    pub fn new(k: usize) -> FairnessResult<Self> {
        if k == 0 {
            return Err(FairnessError::InvalidK { k, n: 0 });
        }
        Ok(ProportionTest {
            k,
            alpha: 0.05,
            alternative: Alternative::TwoSided,
        })
    }

    /// Sets the significance level.
    ///
    /// # Errors
    /// Returns an error unless `0 < alpha < 1`.
    pub fn with_alpha(mut self, alpha: f64) -> FairnessResult<Self> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(FairnessError::InvalidParameter {
                parameter: "alpha",
                message: format!("significance level must lie strictly in (0, 1), got {alpha}"),
            });
        }
        self.alpha = alpha;
        Ok(self)
    }

    /// Sets the alternative hypothesis (e.g. [`Alternative::Less`] to flag
    /// only under-representation of the protected group).
    #[must_use]
    pub fn with_alternative(mut self, alternative: Alternative) -> Self {
        self.alternative = alternative;
        self
    }

    /// Evaluates the proportion measure for `group` on `ranking`.
    ///
    /// # Errors
    /// Returns an error when `k` exceeds the ranking size, the group does not
    /// cover the ranking, or the test is degenerate (e.g. everyone protected).
    pub fn evaluate(
        &self,
        group: &ProtectedGroup,
        ranking: &Ranking,
    ) -> FairnessResult<ProportionOutcome> {
        if self.k == 0 || self.k > ranking.len() {
            return Err(FairnessError::InvalidK {
                k: self.k,
                n: ranking.len(),
            });
        }
        let protected_top_k = group.protected_in_top_k(ranking, self.k)?;
        let protected_overall = group.protected_count();
        let n = group.len();

        let result = two_proportion_z_test(
            protected_top_k as u64,
            self.k as u64,
            protected_overall as u64,
            n as u64,
            self.alternative,
            self.alpha,
        )?;

        Ok(ProportionOutcome {
            k: self.k,
            protected_in_top_k: protected_top_k,
            top_k_proportion: protected_top_k as f64 / self.k as f64,
            overall_proportion: protected_overall as f64 / n as f64,
            z_statistic: result.statistic,
            p_value: result.p_value,
            alpha: self.alpha,
            fair: !result.reject_null,
        })
    }
}

/// Result of the proportion measure.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProportionOutcome {
    /// Size of the audited prefix.
    pub k: usize,
    /// Number of protected items in the top-k.
    pub protected_in_top_k: usize,
    /// Proportion of protected items in the top-k.
    pub top_k_proportion: f64,
    /// Proportion of protected items over-all.
    pub overall_proportion: f64,
    /// Two-proportion z statistic (negative = under-represented at the top).
    pub z_statistic: f64,
    /// p-value under the configured alternative.
    pub p_value: f64,
    /// Significance level used for the verdict.
    pub alpha: f64,
    /// `true` when the null hypothesis of equal proportions is **not** rejected.
    pub fair: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_from(members: &[bool]) -> ProtectedGroup {
        ProtectedGroup::from_membership("g", "x", members.to_vec()).unwrap()
    }

    fn identity_ranking(n: usize) -> Ranking {
        Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn balanced_top_k_is_fair() {
        // 50% protected everywhere.
        let members: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let group = group_from(&members);
        let ranking = identity_ranking(100);
        let out = ProportionTest::new(10)
            .unwrap()
            .evaluate(&group, &ranking)
            .unwrap();
        assert!(out.fair);
        assert!((out.top_k_proportion - 0.5).abs() < 1e-12);
        assert!((out.overall_proportion - 0.5).abs() < 1e-12);
        assert!(out.p_value > 0.5);
    }

    #[test]
    fn fully_excluded_group_is_unfair() {
        // Protected items occupy the bottom half; none reach the top-20.
        let mut members = vec![false; 50];
        members.extend(vec![true; 50]);
        let group = group_from(&members);
        let ranking = identity_ranking(100);
        let out = ProportionTest::new(20)
            .unwrap()
            .evaluate(&group, &ranking)
            .unwrap();
        assert!(!out.fair);
        assert_eq!(out.protected_in_top_k, 0);
        assert!(out.z_statistic < -3.0);
        assert!(out.p_value < 0.01);
    }

    #[test]
    fn over_representation_flagged_two_sided() {
        // Protected items occupy the entire top-20 but are only 30% overall.
        let mut members = vec![true; 30];
        members.extend(vec![false; 70]);
        let group = group_from(&members);
        let ranking = identity_ranking(100);
        let out = ProportionTest::new(20)
            .unwrap()
            .evaluate(&group, &ranking)
            .unwrap();
        assert!(!out.fair);
        assert!(out.z_statistic > 3.0);
    }

    #[test]
    fn one_sided_alternative_ignores_over_representation() {
        let mut members = vec![true; 30];
        members.extend(vec![false; 70]);
        let group = group_from(&members);
        let ranking = identity_ranking(100);
        let out = ProportionTest::new(20)
            .unwrap()
            .with_alternative(Alternative::Less)
            .evaluate(&group, &ranking)
            .unwrap();
        // Over-representation is not evidence of under-representation.
        assert!(out.fair);
    }

    #[test]
    fn small_k_lacks_power() {
        // 1 of 2 protected in top-2 vs 50% overall: no evidence either way.
        let members: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let group = group_from(&members);
        let ranking = identity_ranking(40);
        let out = ProportionTest::new(2)
            .unwrap()
            .evaluate(&group, &ranking)
            .unwrap();
        assert!(out.fair);
    }

    #[test]
    fn k_bounds_checked() {
        let members = vec![true, false, true, false];
        let group = group_from(&members);
        let ranking = identity_ranking(4);
        assert!(ProportionTest::new(0).is_err());
        let test = ProportionTest::new(5).unwrap();
        assert!(matches!(
            test.evaluate(&group, &ranking),
            Err(FairnessError::InvalidK { .. })
        ));
    }

    #[test]
    fn alpha_validation() {
        assert!(ProportionTest::new(10).unwrap().with_alpha(0.0).is_err());
        assert!(ProportionTest::new(10).unwrap().with_alpha(0.01).is_ok());
    }
}
