//! The generative fair-ranking model of Yang & Stoyanovich (SSDBM 2017).
//!
//! The nutritional-label paper describes it as "a generative method to
//! describe rankings that meet a particular fairness criterion (fairness
//! probability `f`) and are drawn from a dataset with a given proportion of
//! members of a binary protected group (`p`)" (§2.3), and notes that FA*IR
//! built its statistical test on the same model.
//!
//! The procedure ranks `n` items of which `n_protected` are protected: it
//! walks positions from the top and, at each position, places the next
//! protected item with probability `f` and the next non-protected item with
//! probability `1 − f`, falling back to whichever pool is non-empty once one
//! runs out.  Setting `f` to the protected proportion `p` yields rankings in
//! which every prefix is statistically representative; `f < p` pushes the
//! protected group down; `f > p` pushes it up.
//!
//! [`GenerativeModel`] samples membership-in-rank-order vectors from this
//! process and [`GenerativeModel::measure_distribution`] summarizes how the
//! discounted measures (rND / rKL / rRD) and the pairwise preference behave
//! across samples — exactly the calibration experiment of the SSDBM paper,
//! and the machinery used to pick verdict thresholds for the Fairness widget.

use crate::error::{FairnessError, FairnessResult};
use crate::measures::{rkl, rnd, rrd};
use crate::pairwise::pairwise_preference;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A generative model of rankings over a binary-grouped population.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GenerativeModel {
    /// Total number of ranked items.
    pub n: usize,
    /// Number of protected items among them.
    pub n_protected: usize,
    /// Probability of placing a protected item at each position while both
    /// pools are non-empty.
    pub fairness_probability: f64,
}

impl GenerativeModel {
    /// Creates a model.
    ///
    /// # Errors
    /// Returns an error when `n == 0`, when the protected count is zero or
    /// covers the whole population, or when `f` lies outside `[0, 1]`.
    pub fn new(n: usize, n_protected: usize, fairness_probability: f64) -> FairnessResult<Self> {
        if n == 0 {
            return Err(FairnessError::InvalidParameter {
                parameter: "n",
                message: "the ranked population must be non-empty".to_string(),
            });
        }
        if n_protected == 0 || n_protected >= n {
            return Err(FairnessError::DegenerateGroup {
                which: if n_protected == 0 {
                    "protected"
                } else {
                    "non-protected"
                },
            });
        }
        if !(0.0..=1.0).contains(&fairness_probability) {
            return Err(FairnessError::InvalidParameter {
                parameter: "fairness_probability",
                message: format!(
                    "fairness probability must lie in [0, 1], got {fairness_probability}"
                ),
            });
        }
        Ok(GenerativeModel {
            n,
            n_protected,
            fairness_probability,
        })
    }

    /// Creates the *statistical parity* model: `f` equal to the protected
    /// proportion, so prefixes are representative in expectation.
    ///
    /// # Errors
    /// Same validation as [`GenerativeModel::new`].
    pub fn parity(n: usize, n_protected: usize) -> FairnessResult<Self> {
        let p = n_protected as f64 / n as f64;
        Self::new(n, n_protected, p)
    }

    /// Overall protected proportion `p` of the population.
    #[must_use]
    pub fn protected_proportion(&self) -> f64 {
        self.n_protected as f64 / self.n as f64
    }

    /// Samples one membership-in-rank-order vector (`true` = protected).
    pub fn sample_membership<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<bool> {
        let mut remaining_protected = self.n_protected;
        let mut remaining_other = self.n - self.n_protected;
        let mut members = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let take_protected = if remaining_protected == 0 {
                false
            } else if remaining_other == 0 {
                true
            } else {
                rng.gen_bool(self.fairness_probability)
            };
            if take_protected {
                members.push(true);
                remaining_protected -= 1;
            } else {
                members.push(false);
                remaining_other -= 1;
            }
        }
        members
    }

    /// Samples `runs` membership vectors with a deterministic seed.
    #[must_use]
    pub fn sample_many(&self, runs: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..runs)
            .map(|_| self.sample_membership(&mut rng))
            .collect()
    }

    /// Estimates the distribution of the fairness measures over `runs`
    /// sampled rankings (the SSDBM calibration experiment).
    ///
    /// # Errors
    /// Returns an error when `runs == 0` or a measure fails on a sample
    /// (which construction makes impossible for valid models).
    pub fn measure_distribution(
        &self,
        runs: usize,
        seed: u64,
    ) -> FairnessResult<GenerativeSummary> {
        if runs == 0 {
            return Err(FairnessError::InvalidParameter {
                parameter: "runs",
                message: "at least one sampled ranking is required".to_string(),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rnd_values = Vec::with_capacity(runs);
        let mut rkl_values = Vec::with_capacity(runs);
        let mut rrd_values = Vec::with_capacity(runs);
        let mut pairwise_values = Vec::with_capacity(runs);
        for _ in 0..runs {
            let members = self.sample_membership(&mut rng);
            rnd_values.push(rnd(&members)?);
            rkl_values.push(rkl(&members)?);
            rrd_values.push(rrd(&members)?);
            pairwise_values.push(pairwise_preference(&members)?);
        }
        Ok(GenerativeSummary {
            runs,
            fairness_probability: self.fairness_probability,
            protected_proportion: self.protected_proportion(),
            rnd: MeasureDistribution::from_samples(&rnd_values),
            rkl: MeasureDistribution::from_samples(&rkl_values),
            rrd: MeasureDistribution::from_samples(&rrd_values),
            pairwise: MeasureDistribution::from_samples(&pairwise_values),
        })
    }
}

/// Mean / standard deviation / range of one measure over sampled rankings.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeasureDistribution {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population convention, 0 for one sample).
    pub std_dev: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl MeasureDistribution {
    fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        MeasureDistribution {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

/// Distribution of every fairness measure under a generative model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GenerativeSummary {
    /// Number of sampled rankings.
    pub runs: usize,
    /// The model's fairness probability `f`.
    pub fairness_probability: f64,
    /// The population's protected proportion `p`.
    pub protected_proportion: f64,
    /// Distribution of rND.
    pub rnd: MeasureDistribution,
    /// Distribution of rKL.
    pub rkl: MeasureDistribution,
    /// Distribution of rRD.
    pub rrd: MeasureDistribution,
    /// Distribution of the pairwise preference probability.
    pub pairwise: MeasureDistribution,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_inputs() {
        assert!(GenerativeModel::new(0, 0, 0.5).is_err());
        assert!(GenerativeModel::new(10, 0, 0.5).is_err());
        assert!(GenerativeModel::new(10, 10, 0.5).is_err());
        assert!(GenerativeModel::new(10, 5, -0.1).is_err());
        assert!(GenerativeModel::new(10, 5, 1.1).is_err());
        assert!(GenerativeModel::new(10, 5, 0.5).is_ok());
    }

    #[test]
    fn parity_model_uses_population_proportion() {
        let m = GenerativeModel::parity(20, 5).unwrap();
        assert!((m.fairness_probability - 0.25).abs() < 1e-12);
        assert!((m.protected_proportion() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn samples_have_exact_group_sizes() {
        let m = GenerativeModel::new(50, 20, 0.4).unwrap();
        for members in m.sample_many(20, 7) {
            assert_eq!(members.len(), 50);
            assert_eq!(members.iter().filter(|&&b| b).count(), 20);
        }
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let m = GenerativeModel::new(40, 10, 0.25).unwrap();
        assert_eq!(m.sample_many(5, 42), m.sample_many(5, 42));
        assert_ne!(m.sample_many(5, 42), m.sample_many(5, 43));
    }

    #[test]
    fn extreme_fairness_probabilities_segregate() {
        let m = GenerativeModel::new(20, 10, 1.0).unwrap();
        let members = m.sample_many(1, 1).remove(0);
        // All protected first, then all non-protected.
        assert!(members[..10].iter().all(|&b| b));
        assert!(members[10..].iter().all(|&b| !b));

        let m = GenerativeModel::new(20, 10, 0.0).unwrap();
        let members = m.sample_many(1, 1).remove(0);
        assert!(members[..10].iter().all(|&b| !b));
        assert!(members[10..].iter().all(|&b| b));
    }

    #[test]
    fn parity_model_scores_fair_on_average() {
        let parity = GenerativeModel::parity(100, 50).unwrap();
        let skewed = GenerativeModel::new(100, 50, 0.1).unwrap();
        let s_parity = parity.measure_distribution(50, 3).unwrap();
        let s_skewed = skewed.measure_distribution(50, 3).unwrap();
        // A process that under-places protected items scores markedly worse on
        // every divergence measure and below 1/2 on the pairwise preference.
        assert!(s_skewed.rnd.mean > s_parity.rnd.mean);
        assert!(s_skewed.rkl.mean > s_parity.rkl.mean);
        assert!(s_skewed.rrd.mean > s_parity.rrd.mean);
        assert!(s_skewed.pairwise.mean < s_parity.pairwise.mean);
        assert!((s_parity.pairwise.mean - 0.5).abs() < 0.1);
    }

    #[test]
    fn measure_distribution_requires_runs() {
        let m = GenerativeModel::parity(10, 3).unwrap();
        assert!(m.measure_distribution(0, 1).is_err());
        let s = m.measure_distribution(5, 1).unwrap();
        assert_eq!(s.runs, 5);
        assert!(s.rnd.min <= s.rnd.mean && s.rnd.mean <= s.rnd.max);
        assert!(s.rnd.std_dev >= 0.0);
    }

    #[test]
    fn boosting_model_raises_pairwise_above_half() {
        let m = GenerativeModel::new(80, 40, 0.9).unwrap();
        let s = m.measure_distribution(40, 11).unwrap();
        assert!(s.pairwise.mean > 0.5);
    }
}
