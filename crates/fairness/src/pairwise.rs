//! The pairwise preference fairness measure.
//!
//! "In our follow-up work, we are developing a pairwise measure that directly
//! models the probability that a member of a protected group is preferred to
//! a member of the non-protected group" (paper §2.3).
//!
//! The measure estimates
//! `θ = P[protected item ranked above non-protected item]`
//! over all cross-group pairs and tests `H0: θ = 1/2`.  `θ` is exactly the
//! Mann–Whitney U statistic rescaled to `[0, 1]`, so the normal approximation
//! of the rank-sum test provides the p-value; a Monte-Carlo permutation test
//! is available as a slower, assumption-free alternative (used by the
//! ablation bench).

use crate::error::{FairnessError, FairnessResult};
use crate::group::ProtectedGroup;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rf_ranking::Ranking;
use rf_stats::normal_cdf;

/// How the null distribution of the pairwise statistic is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PairwiseNull {
    /// Normal approximation of the Mann–Whitney U statistic (default).
    NormalApproximation,
    /// Monte-Carlo permutation of group labels with the given number of
    /// resamples (deterministic for a fixed seed).
    Permutation {
        /// Number of label permutations.
        resamples: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// Configuration of the pairwise test.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PairwiseTest {
    /// Significance level.
    pub alpha: f64,
    /// Null-distribution strategy.
    pub null: PairwiseNull,
}

impl Default for PairwiseTest {
    fn default() -> Self {
        PairwiseTest {
            alpha: 0.05,
            null: PairwiseNull::NormalApproximation,
        }
    }
}

impl PairwiseTest {
    /// Creates a pairwise test with the default settings
    /// (`alpha = 0.05`, normal approximation).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the significance level.
    ///
    /// # Errors
    /// Returns an error unless `0 < alpha < 1`.
    pub fn with_alpha(mut self, alpha: f64) -> FairnessResult<Self> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(FairnessError::InvalidParameter {
                parameter: "alpha",
                message: format!("significance level must lie strictly in (0, 1), got {alpha}"),
            });
        }
        self.alpha = alpha;
        Ok(self)
    }

    /// Switches to the Monte-Carlo permutation null.
    #[must_use]
    pub fn with_permutation_null(mut self, resamples: usize, seed: u64) -> Self {
        self.null = PairwiseNull::Permutation { resamples, seed };
        self
    }

    /// Evaluates the pairwise measure for `group` on `ranking`.
    ///
    /// # Errors
    /// Returns an error when the ranking is not covered by the group or either
    /// group is empty among the ranked items.
    pub fn evaluate(
        &self,
        group: &ProtectedGroup,
        ranking: &Ranking,
    ) -> FairnessResult<PairwiseOutcome> {
        let members = group.membership_in_rank_order(ranking)?;
        let theta = pairwise_preference(&members)?;
        let n_protected = members.iter().filter(|&&m| m).count();
        let n_other = members.len() - n_protected;

        let p_value = match self.null {
            PairwiseNull::NormalApproximation => normal_p_value(theta, n_protected, n_other),
            PairwiseNull::Permutation { resamples, seed } => {
                permutation_p_value(&members, theta, resamples, seed)?
            }
        };

        Ok(PairwiseOutcome {
            preference_probability: theta,
            protected_count: n_protected,
            non_protected_count: n_other,
            p_value,
            alpha: self.alpha,
            fair: p_value >= self.alpha,
        })
    }
}

/// Result of the pairwise measure.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PairwiseOutcome {
    /// Estimated probability that a protected item outranks a non-protected item.
    pub preference_probability: f64,
    /// Number of protected items among the ranked items.
    pub protected_count: usize,
    /// Number of non-protected items among the ranked items.
    pub non_protected_count: usize,
    /// Two-sided p-value of `H0: probability = 1/2`.
    pub p_value: f64,
    /// Significance level used for the verdict.
    pub alpha: f64,
    /// `true` when the null of pairwise parity is **not** rejected.
    pub fair: bool,
}

/// Estimates `P[protected ≻ non-protected]` from a membership sequence in
/// rank order (best first).  Runs in O(n) by scanning from the best rank and
/// counting, for every non-protected item, how many protected items appear
/// above it.
///
/// # Errors
/// [`FairnessError::DegenerateGroup`] when either group is empty.
pub fn pairwise_preference(members_in_rank_order: &[bool]) -> FairnessResult<f64> {
    let n_protected = members_in_rank_order.iter().filter(|&&m| m).count();
    let n_other = members_in_rank_order.len() - n_protected;
    if n_protected == 0 {
        return Err(FairnessError::DegenerateGroup { which: "protected" });
    }
    if n_other == 0 {
        return Err(FairnessError::DegenerateGroup {
            which: "non-protected",
        });
    }
    let mut protected_seen = 0u64;
    let mut wins = 0u64;
    for &is_protected in members_in_rank_order {
        if is_protected {
            protected_seen += 1;
        } else {
            // Every protected item already seen outranks this non-protected item.
            wins += protected_seen;
        }
    }
    Ok(wins as f64 / (n_protected as f64 * n_other as f64))
}

/// Two-sided p-value via the Mann–Whitney normal approximation.
fn normal_p_value(theta: f64, n_protected: usize, n_other: usize) -> f64 {
    let n1 = n_protected as f64;
    let n2 = n_other as f64;
    let u = theta * n1 * n2;
    let mean = n1 * n2 / 2.0;
    let sd = (n1 * n2 * (n1 + n2 + 1.0) / 12.0).sqrt();
    if sd == 0.0 {
        return 1.0;
    }
    let z = (u - mean) / sd;
    (2.0 * (1.0 - normal_cdf(z.abs()))).clamp(0.0, 1.0)
}

/// Two-sided p-value via Monte-Carlo permutation of the group labels.
fn permutation_p_value(
    members: &[bool],
    observed_theta: f64,
    resamples: usize,
    seed: u64,
) -> FairnessResult<f64> {
    if resamples == 0 {
        return Err(FairnessError::InvalidParameter {
            parameter: "resamples",
            message: "permutation null needs at least one resample".to_string(),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut shuffled: Vec<bool> = members.to_vec();
    let observed_dev = (observed_theta - 0.5).abs();
    let mut at_least_as_extreme = 0usize;
    for _ in 0..resamples {
        shuffled.shuffle(&mut rng);
        let theta = pairwise_preference(&shuffled)?;
        if (theta - 0.5).abs() >= observed_dev - 1e-12 {
            at_least_as_extreme += 1;
        }
    }
    // Add-one smoothing keeps the p-value strictly positive.
    Ok((at_least_as_extreme as f64 + 1.0) / (resamples as f64 + 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_from(members: &[bool]) -> ProtectedGroup {
        ProtectedGroup::from_membership("g", "x", members.to_vec()).unwrap()
    }

    fn identity_ranking(n: usize) -> Ranking {
        Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn preference_extremes() {
        // All protected at the top: every cross pair is a win.
        let members = [true, true, false, false];
        assert_eq!(pairwise_preference(&members).unwrap(), 1.0);
        // All protected at the bottom: no wins.
        let members = [false, false, true, true];
        assert_eq!(pairwise_preference(&members).unwrap(), 0.0);
    }

    #[test]
    fn preference_alternating_is_balanced() {
        let members = [true, false, true, false, true, false];
        let theta = pairwise_preference(&members).unwrap();
        // Wins: first protected beats 3, second beats 2, third beats 1 = 6 of 9.
        assert!((theta - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn preference_degenerate_groups_error() {
        assert!(pairwise_preference(&[true, true]).is_err());
        assert!(pairwise_preference(&[false]).is_err());
    }

    #[test]
    fn preference_matches_brute_force() {
        let members = [
            false, true, false, true, true, false, true, false, false, true,
        ];
        let theta = pairwise_preference(&members).unwrap();
        // Brute force count.
        let mut wins = 0;
        let mut total = 0;
        for (i, &a) in members.iter().enumerate() {
            for (j, &b) in members.iter().enumerate() {
                if a && !b {
                    total += 1;
                    if i < j {
                        wins += 1;
                    }
                }
            }
        }
        assert!((theta - wins as f64 / total as f64).abs() < 1e-12);
    }

    #[test]
    fn balanced_ranking_is_fair() {
        let members: Vec<bool> = (0..60).map(|i| i % 2 == 0).collect();
        let group = group_from(&members);
        let ranking = identity_ranking(60);
        let out = PairwiseTest::new().evaluate(&group, &ranking).unwrap();
        assert!(out.fair);
        assert!(out.p_value > 0.1);
        assert_eq!(out.protected_count, 30);
        assert_eq!(out.non_protected_count, 30);
    }

    #[test]
    fn segregated_ranking_is_unfair() {
        let mut members = vec![false; 30];
        members.extend(vec![true; 30]);
        let group = group_from(&members);
        let ranking = identity_ranking(60);
        let out = PairwiseTest::new().evaluate(&group, &ranking).unwrap();
        assert!(!out.fair);
        assert_eq!(out.preference_probability, 0.0);
        assert!(out.p_value < 1e-6);
    }

    #[test]
    fn permutation_null_agrees_with_normal_for_clear_cases() {
        let mut members = vec![false; 25];
        members.extend(vec![true; 25]);
        let group = group_from(&members);
        let ranking = identity_ranking(50);
        let normal = PairwiseTest::new().evaluate(&group, &ranking).unwrap();
        let permutation = PairwiseTest::new()
            .with_permutation_null(500, 7)
            .evaluate(&group, &ranking)
            .unwrap();
        assert!(!normal.fair);
        assert!(!permutation.fair);
        // Balanced case: both say fair.
        let members: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        let group = group_from(&members);
        let normal = PairwiseTest::new().evaluate(&group, &ranking).unwrap();
        let permutation = PairwiseTest::new()
            .with_permutation_null(500, 7)
            .evaluate(&group, &ranking)
            .unwrap();
        assert!(normal.fair);
        assert!(permutation.fair);
    }

    #[test]
    fn permutation_requires_resamples() {
        let members: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let group = group_from(&members);
        let ranking = identity_ranking(10);
        let test = PairwiseTest::new().with_permutation_null(0, 1);
        assert!(test.evaluate(&group, &ranking).is_err());
    }

    #[test]
    fn alpha_validation() {
        assert!(PairwiseTest::new().with_alpha(0.0).is_err());
        assert!(PairwiseTest::new().with_alpha(0.5).is_ok());
    }

    #[test]
    fn mild_imbalance_is_not_flagged_in_small_samples() {
        // 3 protected of 8, slightly towards the bottom: not significant.
        let members = [false, true, false, false, true, false, true, false];
        let group = group_from(&members);
        let ranking = identity_ranking(8);
        let out = PairwiseTest::new().evaluate(&group, &ranking).unwrap();
        assert!(out.fair);
    }
}
