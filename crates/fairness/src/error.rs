//! Error type for the fairness measures.

use std::fmt;

/// Result alias used throughout `rf-fairness`.
pub type FairnessResult<T> = Result<T, FairnessError>;

/// Errors produced while computing fairness measures.
#[derive(Debug, Clone, PartialEq)]
pub enum FairnessError {
    /// The sensitive attribute has more than two (or fewer than two) distinct
    /// values.  The paper: "Ranking Facts [...] is currently limited to
    /// binary attributes."
    NonBinaryAttribute {
        /// Name of the sensitive attribute.
        attribute: String,
        /// Number of distinct values observed.
        distinct: usize,
    },
    /// The protected group (or the non-protected group) is empty.
    DegenerateGroup {
        /// Which group is empty ("protected" or "non-protected").
        which: &'static str,
    },
    /// A sensitive-attribute value is missing for a ranked item.
    MissingGroupLabel {
        /// Row index with the missing label.
        row: usize,
    },
    /// The requested protected value does not occur in the attribute's domain.
    UnknownProtectedValue {
        /// The requested value.
        value: String,
        /// The values that do occur.
        domain: Vec<String>,
    },
    /// `k` (the prefix size) is invalid: zero or larger than the ranking.
    InvalidK {
        /// Requested prefix size.
        k: usize,
        /// Ranking size.
        n: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        parameter: &'static str,
        /// Constraint description.
        message: String,
    },
    /// An underlying table error.
    Table(rf_table::TableError),
    /// An underlying ranking error.
    Ranking(rf_ranking::RankingError),
    /// An underlying statistics error.
    Stats(rf_stats::StatsError),
}

impl fmt::Display for FairnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FairnessError::NonBinaryAttribute {
                attribute,
                distinct,
            } => write!(
                f,
                "sensitive attribute `{attribute}` has {distinct} distinct values; \
                 the fairness widget currently supports only binary attributes"
            ),
            FairnessError::DegenerateGroup { which } => {
                write!(
                    f,
                    "the {which} group is empty; fairness tests are undefined"
                )
            }
            FairnessError::MissingGroupLabel { row } => {
                write!(f, "row {row} has no value for the sensitive attribute")
            }
            FairnessError::UnknownProtectedValue { value, domain } => write!(
                f,
                "protected value `{value}` does not occur in the attribute (domain: {})",
                domain.join(", ")
            ),
            FairnessError::InvalidK { k, n } => {
                write!(f, "invalid prefix size k={k} for a ranking of {n} items")
            }
            FairnessError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            FairnessError::Table(err) => write!(f, "table error: {err}"),
            FairnessError::Ranking(err) => write!(f, "ranking error: {err}"),
            FairnessError::Stats(err) => write!(f, "statistics error: {err}"),
        }
    }
}

impl std::error::Error for FairnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FairnessError::Table(err) => Some(err),
            FairnessError::Ranking(err) => Some(err),
            FairnessError::Stats(err) => Some(err),
            _ => None,
        }
    }
}

impl From<rf_table::TableError> for FairnessError {
    fn from(err: rf_table::TableError) -> Self {
        FairnessError::Table(err)
    }
}

impl From<rf_ranking::RankingError> for FairnessError {
    fn from(err: rf_ranking::RankingError) -> Self {
        FairnessError::Ranking(err)
    }
}

impl From<rf_stats::StatsError> for FairnessError {
    fn from(err: rf_stats::StatsError) -> Self {
        FairnessError::Stats(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_non_binary() {
        let err = FairnessError::NonBinaryAttribute {
            attribute: "ethnicity".to_string(),
            distinct: 5,
        };
        assert!(err.to_string().contains("ethnicity"));
        assert!(err.to_string().contains("binary"));
    }

    #[test]
    fn display_unknown_protected_value() {
        let err = FairnessError::UnknownProtectedValue {
            value: "X".to_string(),
            domain: vec!["large".to_string(), "small".to_string()],
        };
        assert!(err.to_string().contains("large, small"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let e: FairnessError = rf_table::TableError::Empty { operation: "x" }.into();
        assert!(matches!(e, FairnessError::Table(_)));
        let e: FairnessError = rf_ranking::RankingError::EmptyRanking.into();
        assert!(matches!(e, FairnessError::Ranking(_)));
        let e: FairnessError = rf_stats::StatsError::EmptyInput { operation: "x" }.into();
        assert!(matches!(e, FairnessError::Stats(_)));
    }
}
