//! Position-discounted group fairness measures: rND, rKL and rRD.
//!
//! These measures come from the authors' earlier paper *"Measuring Fairness
//! in Ranked Outputs"* (Yang & Stoyanovich, SSDBM 2017), which the
//! nutritional-label paper cites as the basis of its generative fairness
//! model (§2.3).  Each measure walks the ranking at regular cut-off points
//! (every 10 positions by default), compares the protected group's
//! representation in the prefix with its overall representation, discounts
//! the difference by `1 / log2(position)`, sums over cut-offs and normalizes
//! by the maximum attainable value so that the result lies in `[0, 1]`
//! (0 = perfectly proportional prefixes, 1 = maximally skewed).
//!
//! * **rND** — normalized difference of proportions.
//! * **rKL** — KL-divergence between the prefix's group distribution and the
//!   overall distribution.
//! * **rRD** — difference of protected-to-non-protected ratios (appropriate
//!   when the protected group is a minority).

use crate::error::{FairnessError, FairnessResult};
use crate::group::ProtectedGroup;
use rf_ranking::Ranking;

/// Default spacing between evaluation cut-offs (the SSDBM paper uses 10).
pub const DEFAULT_CUTOFF_STEP: usize = 10;

/// The three discounted measures evaluated on one ranking.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiscountedMeasures {
    /// Normalized discounted difference (0 = proportional, 1 = maximally skewed).
    pub rnd: f64,
    /// Normalized discounted KL-divergence.
    pub rkl: f64,
    /// Normalized discounted ratio difference.
    pub rrd: f64,
    /// The cut-off positions that were evaluated.
    pub cutoffs: Vec<usize>,
}

impl DiscountedMeasures {
    /// Computes all three measures for `group` on `ranking` with the default
    /// cut-off spacing.
    ///
    /// # Errors
    /// Propagates membership errors; requires a non-degenerate group.
    pub fn evaluate(group: &ProtectedGroup, ranking: &Ranking) -> FairnessResult<Self> {
        Self::evaluate_with_step(group, ranking, DEFAULT_CUTOFF_STEP)
    }

    /// Computes all three measures with a custom cut-off spacing.
    ///
    /// # Errors
    /// Propagates membership errors; `step` must be positive.
    pub fn evaluate_with_step(
        group: &ProtectedGroup,
        ranking: &Ranking,
        step: usize,
    ) -> FairnessResult<Self> {
        if step == 0 {
            return Err(FairnessError::InvalidParameter {
                parameter: "step",
                message: "cut-off spacing must be positive".to_string(),
            });
        }
        let members = group.membership_in_rank_order(ranking)?;
        let cutoffs = cutoff_positions(members.len(), step);
        Ok(DiscountedMeasures {
            rnd: normalized_measure(&members, &cutoffs, difference_term)?,
            rkl: normalized_measure(&members, &cutoffs, kl_term)?,
            rrd: normalized_measure(&members, &cutoffs, ratio_term)?,
            cutoffs,
        })
    }
}

/// rND of a membership sequence in rank order, with default cut-offs.
///
/// # Errors
/// Requires both groups to be non-empty.
pub fn rnd(members_in_rank_order: &[bool]) -> FairnessResult<f64> {
    let cutoffs = cutoff_positions(members_in_rank_order.len(), DEFAULT_CUTOFF_STEP);
    normalized_measure(members_in_rank_order, &cutoffs, difference_term)
}

/// rKL of a membership sequence in rank order, with default cut-offs.
///
/// # Errors
/// Requires both groups to be non-empty.
pub fn rkl(members_in_rank_order: &[bool]) -> FairnessResult<f64> {
    let cutoffs = cutoff_positions(members_in_rank_order.len(), DEFAULT_CUTOFF_STEP);
    normalized_measure(members_in_rank_order, &cutoffs, kl_term)
}

/// rRD of a membership sequence in rank order, with default cut-offs.
///
/// # Errors
/// Requires both groups to be non-empty.
pub fn rrd(members_in_rank_order: &[bool]) -> FairnessResult<f64> {
    let cutoffs = cutoff_positions(members_in_rank_order.len(), DEFAULT_CUTOFF_STEP);
    normalized_measure(members_in_rank_order, &cutoffs, ratio_term)
}

/// Cut-off positions `step, 2·step, …` that fit in a ranking of length `n`;
/// falls back to the single cut-off `n` for rankings shorter than `step`.
fn cutoff_positions(n: usize, step: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    if n < step {
        return vec![n];
    }
    (1..)
        .map(|i| i * step)
        .take_while(|&pos| pos <= n)
        .collect()
}

/// Per-cutoff statistics handed to a measure term.
struct PrefixStats {
    /// Protected items in the prefix.
    protected_in_prefix: usize,
    /// Prefix length.
    prefix: usize,
    /// Protected items overall.
    protected_total: usize,
    /// Ranking length.
    n: usize,
}

/// |prefix proportion − overall proportion| (the ND term).
fn difference_term(s: &PrefixStats) -> f64 {
    let prefix_prop = s.protected_in_prefix as f64 / s.prefix as f64;
    let overall_prop = s.protected_total as f64 / s.n as f64;
    (prefix_prop - overall_prop).abs()
}

/// KL divergence of the prefix's (protected, non-protected) distribution from
/// the overall distribution.
fn kl_term(s: &PrefixStats) -> f64 {
    let p1 = s.protected_in_prefix as f64 / s.prefix as f64;
    let p2 = 1.0 - p1;
    let q1 = s.protected_total as f64 / s.n as f64;
    let q2 = 1.0 - q1;
    let mut kl = 0.0;
    if p1 > 0.0 && q1 > 0.0 {
        kl += p1 * (p1 / q1).ln();
    }
    if p2 > 0.0 && q2 > 0.0 {
        kl += p2 * (p2 / q2).ln();
    }
    kl.max(0.0)
}

/// |prefix protected:non-protected ratio − overall ratio| (the RD term).
/// A prefix with no non-protected members contributes 0, following the SSDBM
/// paper's convention that RD is meaningful for minority protected groups.
fn ratio_term(s: &PrefixStats) -> f64 {
    let non_protected_in_prefix = s.prefix - s.protected_in_prefix;
    let non_protected_total = s.n - s.protected_total;
    if non_protected_in_prefix == 0 || non_protected_total == 0 {
        return 0.0;
    }
    let prefix_ratio = s.protected_in_prefix as f64 / non_protected_in_prefix as f64;
    let overall_ratio = s.protected_total as f64 / non_protected_total as f64;
    (prefix_ratio - overall_ratio).abs()
}

/// Discounted sum of a measure term over the cut-offs, divided by the maximum
/// attainable value (computed on the most skewed ranking: every protected item
/// pushed to the bottom, or to the top, whichever is larger).
fn normalized_measure(
    members: &[bool],
    cutoffs: &[usize],
    term: fn(&PrefixStats) -> f64,
) -> FairnessResult<f64> {
    let n = members.len();
    let protected_total = members.iter().filter(|&&m| m).count();
    if protected_total == 0 {
        return Err(FairnessError::DegenerateGroup { which: "protected" });
    }
    if protected_total == n {
        return Err(FairnessError::DegenerateGroup {
            which: "non-protected",
        });
    }
    if cutoffs.is_empty() {
        return Ok(0.0);
    }

    let raw = discounted_sum(members, cutoffs, protected_total, term);

    // Worst cases: all protected at the bottom / all protected at the top.
    let mut worst_bottom = vec![false; n - protected_total];
    worst_bottom.extend(std::iter::repeat_n(true, protected_total));
    let mut worst_top = vec![true; protected_total];
    worst_top.extend(std::iter::repeat_n(false, n - protected_total));
    let z = discounted_sum(&worst_bottom, cutoffs, protected_total, term).max(discounted_sum(
        &worst_top,
        cutoffs,
        protected_total,
        term,
    ));

    if z <= 0.0 {
        // The measure cannot distinguish any ranking (e.g. a single cut-off
        // equal to n); report perfect fairness.
        return Ok(0.0);
    }
    Ok((raw / z).clamp(0.0, 1.0))
}

/// `Σ_{cutoff i} term(i) / log2(i)` (the log2 of a cut-off of 1 would be 0;
/// such a cut-off only occurs for n = 1, which the degenerate-group check
/// already rejects).
fn discounted_sum(
    members: &[bool],
    cutoffs: &[usize],
    protected_total: usize,
    term: fn(&PrefixStats) -> f64,
) -> f64 {
    let n = members.len();
    let mut sum = 0.0;
    for &cutoff in cutoffs {
        let protected_in_prefix = members[..cutoff].iter().filter(|&&m| m).count();
        let stats = PrefixStats {
            protected_in_prefix,
            prefix: cutoff,
            protected_total,
            n,
        };
        let discount = (cutoff as f64).log2();
        if discount > 0.0 {
            sum += term(&stats) / discount;
        } else {
            sum += term(&stats);
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_from(members: &[bool]) -> ProtectedGroup {
        ProtectedGroup::from_membership("g", "x", members.to_vec()).unwrap()
    }

    fn identity_ranking(n: usize) -> Ranking {
        Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn cutoffs_every_ten() {
        assert_eq!(cutoff_positions(35, 10), vec![10, 20, 30]);
        assert_eq!(cutoff_positions(10, 10), vec![10]);
        assert_eq!(cutoff_positions(7, 10), vec![7]);
        assert_eq!(cutoff_positions(0, 10), Vec::<usize>::new());
    }

    #[test]
    fn proportional_ranking_scores_near_zero() {
        // Alternating membership keeps every prefix proportional.
        let members: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        assert!(rnd(&members).unwrap() < 0.05);
        assert!(rkl(&members).unwrap() < 0.05);
        assert!(rrd(&members).unwrap() < 0.05);
    }

    #[test]
    fn segregated_ranking_scores_near_one() {
        // All protected at the bottom is by construction the worst case.
        let mut members = vec![false; 20];
        members.extend(vec![true; 20]);
        assert!((rnd(&members).unwrap() - 1.0).abs() < 1e-9);
        assert!((rkl(&members).unwrap() - 1.0).abs() < 1e-9);
        assert!((rrd(&members).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn protected_at_top_is_also_skewed() {
        let mut members = vec![true; 20];
        members.extend(vec![false; 20]);
        // Over-representation is still a deviation from proportionality.
        assert!(rnd(&members).unwrap() > 0.5);
        assert!(rkl(&members).unwrap() > 0.5);
    }

    #[test]
    fn measures_are_in_unit_interval() {
        let patterns: Vec<Vec<bool>> = vec![
            (0..30).map(|i| i % 3 == 0).collect(),
            (0..25).map(|i| i < 5).collect(),
            (0..25).map(|i| i >= 20).collect(),
            (0..50).map(|i| i % 7 == 0).collect(),
        ];
        for members in patterns {
            for value in [
                rnd(&members).unwrap(),
                rkl(&members).unwrap(),
                rrd(&members).unwrap(),
            ] {
                assert!((0.0..=1.0).contains(&value), "value {value}");
            }
        }
    }

    #[test]
    fn degenerate_groups_rejected() {
        assert!(rnd(&[true, true, true]).is_err());
        assert!(rkl(&[false, false]).is_err());
    }

    #[test]
    fn evaluate_bundles_all_three() {
        let members: Vec<bool> = (0..30).map(|i| i % 2 == 0).collect();
        let group = group_from(&members);
        let ranking = identity_ranking(30);
        let m = DiscountedMeasures::evaluate(&group, &ranking).unwrap();
        assert_eq!(m.cutoffs, vec![10, 20, 30]);
        assert!(m.rnd < 0.1);
        assert!(m.rkl < 0.1);
        assert!(m.rrd < 0.1);
    }

    #[test]
    fn evaluate_with_finer_step() {
        let mut members = vec![false; 10];
        members.extend(vec![true; 10]);
        let group = group_from(&members);
        let ranking = identity_ranking(20);
        let coarse = DiscountedMeasures::evaluate_with_step(&group, &ranking, 10).unwrap();
        let fine = DiscountedMeasures::evaluate_with_step(&group, &ranking, 2).unwrap();
        assert_eq!(fine.cutoffs.len(), 10);
        // Both agree the ranking is maximally skewed.
        assert!((coarse.rnd - 1.0).abs() < 1e-9);
        assert!((fine.rnd - 1.0).abs() < 1e-9);
        assert!(DiscountedMeasures::evaluate_with_step(&group, &ranking, 0).is_err());
    }

    #[test]
    fn small_ranking_falls_back_to_single_cutoff() {
        let members = vec![true, false, true, false];
        let group = group_from(&members);
        let ranking = identity_ranking(4);
        let m = DiscountedMeasures::evaluate(&group, &ranking).unwrap();
        assert_eq!(m.cutoffs, vec![4]);
        // The single cut-off covers the whole ranking, so every ranking looks
        // proportional and the measure cannot discriminate.
        assert_eq!(m.rnd, 0.0);
    }

    #[test]
    fn rnd_monotone_in_displacement() {
        // Moving protected items further down increases rND.
        let balanced: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let mild: Vec<bool> = (0..40).map(|i| i % 2 == 1).collect(); // shifted by one
        let mut severe = vec![false; 30];
        severe.extend(vec![true; 10]);
        // severe has 10 protected of 40; rebuild balanced/mild with 10 protected as well
        let balanced10: Vec<bool> = (0..40).map(|i| i % 4 == 0).collect();
        let severe_val = rnd(&severe).unwrap();
        let balanced_val = rnd(&balanced10).unwrap();
        assert!(severe_val > balanced_val);
        let _ = (balanced, mild);
    }
}
