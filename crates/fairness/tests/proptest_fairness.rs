//! Property-based tests for the fairness measures.

use proptest::prelude::*;
use rf_fairness::{
    adjust_alpha, minimum_protected_table, pairwise::pairwise_preference, rkl, rnd, rrd,
    FairStarTest, ProportionTest, ProtectedGroup,
};
use rf_ranking::Ranking;

/// Membership vectors guaranteed to contain both groups.
fn mixed_membership(max_len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 4..max_len)
        .prop_filter("both groups must be non-empty", |v| {
            v.iter().any(|&b| b) && v.iter().any(|&b| !b)
        })
}

proptest! {
    #[test]
    fn minimum_protected_table_is_monotone(
        k in 1usize..60,
        p in 0.05..0.95f64,
        alpha in 0.01..0.3f64,
    ) {
        let table = minimum_protected_table(k, p, alpha).unwrap();
        prop_assert_eq!(table.len(), k);
        for (i, w) in table.windows(2).enumerate() {
            prop_assert!(w[1] >= w[0], "table not monotone at {}", i);
            prop_assert!(w[1] - w[0] <= 1, "table jumps by more than 1 at {}", i);
        }
        // The requirement can never exceed the prefix length.
        for (i, &m) in table.iter().enumerate() {
            prop_assert!(m <= i + 1);
        }
    }

    #[test]
    fn minimum_table_monotone_in_alpha(k in 1usize..40, p in 0.1..0.9f64) {
        let strict = minimum_protected_table(k, p, 0.01).unwrap();
        let lax = minimum_protected_table(k, p, 0.2).unwrap();
        // A larger alpha can only demand at least as many protected items.
        for (s, l) in strict.iter().zip(lax.iter()) {
            prop_assert!(l >= s);
        }
    }

    #[test]
    fn adjusted_alpha_at_most_alpha(k in 1usize..40, p in 0.1..0.9f64, alpha in 0.02..0.2f64) {
        let a = adjust_alpha(k, p, alpha).unwrap();
        prop_assert!(a <= alpha + 1e-12);
        prop_assert!(a > 0.0);
    }

    #[test]
    fn pairwise_preference_in_unit_interval(members in mixed_membership(64)) {
        let theta = pairwise_preference(&members).unwrap();
        prop_assert!((0.0..=1.0).contains(&theta));
        // Reversing the ranking reverses the preference.
        let reversed: Vec<bool> = members.iter().rev().copied().collect();
        let theta_rev = pairwise_preference(&reversed).unwrap();
        prop_assert!((theta + theta_rev - 1.0).abs() < 1e-9);
        // Swapping group labels also complements the preference.
        let flipped: Vec<bool> = members.iter().map(|&b| !b).collect();
        let theta_flip = pairwise_preference(&flipped).unwrap();
        prop_assert!((theta + theta_flip - 1.0).abs() < 1e-9);
    }

    #[test]
    fn discounted_measures_bounded(members in mixed_membership(80)) {
        for value in [rnd(&members).unwrap(), rkl(&members).unwrap(), rrd(&members).unwrap()] {
            prop_assert!((0.0..=1.0).contains(&value), "value {}", value);
        }
    }

    #[test]
    fn fair_star_satisfied_iff_every_prefix_meets_minimum(members in mixed_membership(40)) {
        let n = members.len();
        let k = (n / 2).max(1);
        let group = ProtectedGroup::from_membership("g", "x", members.clone()).unwrap();
        let ranking = Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap();
        let p = group.protected_proportion();
        if !(p > 0.0 && p < 1.0) {
            return Ok(());
        }
        let test = FairStarTest::new(k, p).unwrap();
        let out = test.evaluate(&group, &ranking).unwrap();
        let violates = out
            .observed_counts
            .iter()
            .zip(out.required_minimums.iter())
            .any(|(obs, req)| obs < req);
        prop_assert_eq!(out.satisfied, !violates);
        prop_assert!((0.0..=1.0).contains(&out.p_value));
        prop_assert_eq!(out.observed_counts.len(), k);
        // Observed counts are non-decreasing and bounded by the prefix length.
        for (i, w) in out.observed_counts.windows(2).enumerate() {
            prop_assert!(w[1] >= w[0]);
            prop_assert!(w[1] - w[0] <= 1);
            prop_assert!(w[0] <= i + 1);
        }
    }

    #[test]
    fn proportion_test_p_value_valid(members in mixed_membership(60), k_frac in 0.2..0.9f64) {
        let n = members.len();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let group = ProtectedGroup::from_membership("g", "x", members).unwrap();
        let ranking = Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap();
        let test = ProportionTest::new(k).unwrap();
        // Degenerate pooled proportions are legitimately rejected, so only the
        // successful evaluations are checked.
        if let Ok(out) = test.evaluate(&group, &ranking) {
            prop_assert!((0.0..=1.0).contains(&out.p_value));
            prop_assert!((0.0..=1.0).contains(&out.top_k_proportion));
            prop_assert!((0.0..=1.0).contains(&out.overall_proportion));
            prop_assert_eq!(out.fair, out.p_value >= out.alpha);
        }
    }

    #[test]
    fn perfectly_proportional_prefixes_are_fair(block in 1usize..6) {
        // Membership alternates in blocks of equal size, keeping every 2*block
        // prefix exactly proportional.
        let members: Vec<bool> = (0..40).map(|i| (i / block) % 2 == 0).collect();
        let group = ProtectedGroup::from_membership("g", "x", members).unwrap();
        let ranking = Ranking::from_order(&(0..40).collect::<Vec<_>>()).unwrap();
        let test = FairStarTest::new(10, 0.5).unwrap();
        let out = test.evaluate(&group, &ranking).unwrap();
        prop_assert!(out.satisfied);
    }
}
