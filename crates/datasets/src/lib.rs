//! # rf-datasets
//!
//! Synthetic stand-ins for the three demonstration datasets of
//! *"A Nutritional Label for Rankings"* (SIGMOD 2018, §3), plus CSV loading
//! for user-supplied datasets.
//!
//! The original demonstration uses three real datasets that are not shipped
//! with this reproduction (external downloads, licensing, and in COMPAS's
//! case sensitive personal data).  Each generator below produces a table with
//! the **same schema** and the **same statistical structure** that the
//! paper's walk-through relies on, so every widget exercises the same code
//! path and reaches the same qualitative conclusions:
//!
//! * [`cs_departments`] — CS Rankings + NRC attributes: `PubCount` and
//!   `Faculty` are strongly correlated and drive any reasonable ranking;
//!   `GRE` is uncorrelated with them (so it shows up in the Recipe but not in
//!   the Ingredients); only `DeptSizeBin = large` departments reach the
//!   top-10.
//! * [`compas`] — ProPublica COMPAS-like recidivism data (6,889 rows by
//!   default): demographics plus a decile risk score whose distribution is
//!   shifted against the protected racial group, reproducing the disparity
//!   that motivates the scenario.
//! * [`german_credit`] — UCI German-Credit-like data (1,000 rows): financial
//!   attributes plus a credit-worthiness score mildly skewed by age group.
//!
//! Every generator is deterministic for a fixed seed (ChaCha8 RNG).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compas;
pub mod cs_departments;
pub mod german_credit;
pub mod loader;
pub mod synth;

pub use compas::CompasConfig;
pub use cs_departments::CsDepartmentsConfig;
pub use german_credit::GermanCreditConfig;
pub use loader::{load_csv_file, load_csv_str, DatasetSummary};
pub use synth::{ScoreDistribution, SynthScenarioConfig};
