//! Synthetic CS departments dataset (CS Rankings + NRC attributes).
//!
//! Schema and structure follow the paper's description (§3, scenario 1):
//!
//! * `Dept` — department name (synthetic identifiers).
//! * `PubCount` — "geometric mean of the adjusted number of publications in
//!   each area by institution" (CS Rankings): log-normal, strongly correlated
//!   with department size.
//! * `Faculty` — number of faculty (CS Rankings): drives `PubCount`.
//! * `GRE` — average GRE scores (NRC): truncated normal, **uncorrelated**
//!   with the other attributes, reproducing the paper's observation that GRE
//!   "does not correlate with the ranked outcome".
//! * `Region` — one of NE, MW, SA, SC, W (NRC).
//! * `DeptSizeBin` — "large" / "small", a binarized department size used as
//!   the sensitive attribute in Figure 1.

use crate::synth;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rf_table::{Column, Table, TableResult};

/// Configuration of the CS departments generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CsDepartmentsConfig {
    /// Number of departments (the real CSR/NRC join has on the order of 100).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CsDepartmentsConfig {
    fn default() -> Self {
        CsDepartmentsConfig { rows: 97, seed: 42 }
    }
}

impl CsDepartmentsConfig {
    /// Creates a configuration with the default size and the given seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        CsDepartmentsConfig {
            seed,
            ..Self::default()
        }
    }

    /// Creates a configuration with the given number of rows.
    #[must_use]
    pub fn with_rows(rows: usize) -> Self {
        CsDepartmentsConfig {
            rows,
            ..Self::default()
        }
    }

    /// Generates the synthetic table.
    ///
    /// # Errors
    /// Propagates table-construction errors (only possible for `rows == 0`).
    pub fn generate(&self) -> TableResult<Table> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = self.rows;

        let mut dept = Vec::with_capacity(n);
        let mut pub_count = Vec::with_capacity(n);
        let mut faculty = Vec::with_capacity(n);
        let mut gre = Vec::with_capacity(n);
        let mut region = Vec::with_capacity(n);
        let mut size_bin = Vec::with_capacity(n);

        // Department size follows a right-skewed distribution: a few very
        // large departments, many small ones.
        let faculty_values: Vec<f64> = (0..n)
            .map(|_| synth::log_normal(&mut rng, 3.3, 0.5).clamp(5.0, 200.0))
            .collect();
        // Median split defines DeptSizeBin, as in the paper's label.
        let mut sorted = faculty_values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median_faculty = sorted[n / 2];

        for (i, &fac) in faculty_values.iter().enumerate() {
            let fac_rounded = fac.round().max(5.0);
            // Publication output grows with faculty size with multiplicative
            // noise, so PubCount and Faculty are strongly but not perfectly
            // correlated.
            let productivity = synth::log_normal(&mut rng, 0.0, 0.35);
            let pubs = (fac_rounded * 0.18 * productivity).max(0.2);
            // GRE is independent of everything else.
            let gre_score = synth::truncated_normal(&mut rng, 160.0, 4.0, 145.0, 170.0);
            let reg = synth::categorical(
                &mut rng,
                &[
                    ("NE", 0.28),
                    ("MW", 0.22),
                    ("SA", 0.18),
                    ("SC", 0.12),
                    ("W", 0.20),
                ],
            );
            dept.push(format!("Dept{:03}", i + 1));
            pub_count.push((pubs * 100.0).round() / 100.0);
            faculty.push(fac_rounded as i64);
            gre.push((gre_score * 10.0).round() / 10.0);
            region.push(reg.to_string());
            size_bin.push(if fac_rounded >= median_faculty {
                "large".to_string()
            } else {
                "small".to_string()
            });
        }

        Table::from_columns(vec![
            ("Dept", Column::from_strings(dept)),
            ("PubCount", Column::from_f64(pub_count)),
            ("Faculty", Column::from_i64(faculty)),
            ("GRE", Column::from_f64(gre)),
            ("Region", Column::from_strings(region)),
            ("DeptSizeBin", Column::from_strings(size_bin)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_matches_paper_scale() {
        let t = CsDepartmentsConfig::default().generate().unwrap();
        assert_eq!(t.num_rows(), 97);
        assert_eq!(
            t.schema().names(),
            vec![
                "Dept",
                "PubCount",
                "Faculty",
                "GRE",
                "Region",
                "DeptSizeBin"
            ]
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CsDepartmentsConfig::default().generate().unwrap();
        let b = CsDepartmentsConfig::default().generate().unwrap();
        assert_eq!(a, b);
        let c = CsDepartmentsConfig::with_seed(7).generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn pubcount_correlates_with_faculty_but_not_gre() {
        let t = CsDepartmentsConfig::with_rows(400).generate().unwrap();
        let pubs = t.numeric_column("PubCount").unwrap();
        let faculty = t.numeric_column("Faculty").unwrap();
        let gre = t.numeric_column("GRE").unwrap();
        let r_pf = rf_stats::pearson(&pubs, &faculty).unwrap();
        let r_pg = rf_stats::pearson(&pubs, &gre).unwrap();
        assert!(r_pf > 0.5, "PubCount–Faculty correlation too weak: {r_pf}");
        assert!(
            r_pg.abs() < 0.2,
            "PubCount–GRE should be uncorrelated: {r_pg}"
        );
    }

    #[test]
    fn dept_size_bin_is_binary_and_roughly_balanced() {
        let t = CsDepartmentsConfig::default().generate().unwrap();
        let sizes = t.categorical_column("DeptSizeBin").unwrap();
        let large = sizes
            .iter()
            .filter(|s| s.as_deref() == Some("large"))
            .count();
        let small = sizes
            .iter()
            .filter(|s| s.as_deref() == Some("small"))
            .count();
        assert_eq!(large + small, t.num_rows());
        let ratio = large as f64 / t.num_rows() as f64;
        assert!(ratio > 0.35 && ratio < 0.65, "ratio {ratio}");
    }

    #[test]
    fn value_ranges_are_plausible() {
        let t = CsDepartmentsConfig::default().generate().unwrap();
        for v in t.numeric_column("GRE").unwrap() {
            assert!((145.0..=170.0).contains(&v));
        }
        for v in t.numeric_column("Faculty").unwrap() {
            assert!((5.0..=200.0).contains(&v));
        }
        for v in t.numeric_column("PubCount").unwrap() {
            assert!(v > 0.0);
        }
        let regions = t.categorical_column("Region").unwrap();
        for r in regions.iter().flatten() {
            assert!(["NE", "MW", "SA", "SC", "W"].contains(&r.as_str()));
        }
    }

    #[test]
    fn large_departments_dominate_a_pubcount_ranking() {
        // The paper's Figure 1 observation: only large departments in the top-10.
        let t = CsDepartmentsConfig::default().generate().unwrap();
        let sorted = t.sort_by("PubCount", true).unwrap();
        let top = sorted.head(10);
        let sizes = top.categorical_column("DeptSizeBin").unwrap();
        let large = sizes
            .iter()
            .filter(|s| s.as_deref() == Some("large"))
            .count();
        assert!(
            large >= 8,
            "expected the top-10 to be dominated by large departments, got {large}"
        );
    }
}
