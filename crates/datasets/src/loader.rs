//! Loading user-supplied CSV datasets.
//!
//! "The demo user has the option to choose one of these datasets, or to
//! upload one of their own (as a fully populated table in CSV format)"
//! (paper §3).  This module is that upload path: it parses the CSV, runs the
//! same sanity checks the web tool applies (non-empty, at least one numeric
//! attribute for scoring, at least one categorical attribute for the
//! sensitive-attribute picker), and reports a summary the design view can
//! display.

use rf_table::{read_csv_str, CsvOptions, Table, TableError, TableResult};
use std::path::Path;

/// Summary of a loaded dataset, shown by the scoring-function design view.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetSummary {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub columns: usize,
    /// Names of numeric columns (candidate scoring attributes).
    pub numeric_columns: Vec<String>,
    /// Names of categorical columns (candidate sensitive attributes).
    pub categorical_columns: Vec<String>,
    /// Total number of missing values across all columns.
    pub missing_values: usize,
}

impl DatasetSummary {
    /// Builds the summary of a table.
    #[must_use]
    pub fn of(table: &Table) -> Self {
        DatasetSummary {
            rows: table.num_rows(),
            columns: table.num_columns(),
            numeric_columns: table
                .schema()
                .numeric_names()
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            categorical_columns: table
                .schema()
                .categorical_names()
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            missing_values: table.columns().iter().map(|c| c.null_count()).sum(),
        }
    }
}

/// Parses CSV text into a table and validates that it can drive a nutritional
/// label (at least one numeric and one categorical column).
///
/// # Errors
/// CSV parse errors, or an `Empty` error when the table cannot support the
/// label workflow.
pub fn load_csv_str(csv: &str) -> TableResult<(Table, DatasetSummary)> {
    let table = read_csv_str(csv, &CsvOptions::default())?;
    validate(&table)?;
    let summary = DatasetSummary::of(&table);
    Ok((table, summary))
}

/// Reads a CSV file from disk and validates it (see [`load_csv_str`]).
///
/// # Errors
/// I/O errors are reported as CSV parse errors at line 0; parse and
/// validation errors as in [`load_csv_str`].
pub fn load_csv_file(path: impl AsRef<Path>) -> TableResult<(Table, DatasetSummary)> {
    let content = std::fs::read_to_string(path.as_ref()).map_err(|err| TableError::CsvParse {
        line: 0,
        message: format!("cannot read `{}`: {err}", path.as_ref().display()),
    })?;
    load_csv_str(&content)
}

/// The sanity checks the web tool applies before offering the design view.
fn validate(table: &Table) -> TableResult<()> {
    if table.num_rows() == 0 || table.num_columns() == 0 {
        return Err(TableError::Empty {
            operation: "load_csv",
        });
    }
    if table.schema().numeric_names().is_empty() {
        return Err(TableError::Empty {
            operation: "load_csv: no numeric attribute available for scoring",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
name,pubs,faculty,region,large
MIT,9.5,60,NE,true
CMU,9.1,70,NE,true
Podunk,0.4,8,MW,false
State,2.2,25,SC,false
";

    #[test]
    fn loads_and_summarizes_valid_csv() {
        let (table, summary) = load_csv_str(SAMPLE).unwrap();
        assert_eq!(table.num_rows(), 4);
        assert_eq!(summary.rows, 4);
        assert_eq!(summary.columns, 5);
        assert_eq!(summary.numeric_columns, vec!["pubs", "faculty"]);
        assert_eq!(summary.categorical_columns, vec!["name", "region", "large"]);
        assert_eq!(summary.missing_values, 0);
    }

    #[test]
    fn counts_missing_values() {
        let csv = "a,b\n1,x\n,y\n3,\n";
        let (_, summary) = load_csv_str(csv).unwrap();
        assert_eq!(summary.missing_values, 2);
    }

    #[test]
    fn rejects_csv_without_numeric_columns() {
        let csv = "name,region\nMIT,NE\nCMU,NE\n";
        assert!(load_csv_str(csv).is_err());
    }

    #[test]
    fn rejects_empty_csv() {
        assert!(load_csv_str("").is_err());
        assert!(load_csv_str("a,b\n").is_err());
    }

    #[test]
    fn loads_from_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("rf_datasets_loader_test.csv");
        std::fs::write(&path, SAMPLE).unwrap();
        let (table, _) = load_csv_file(&path).unwrap();
        assert_eq!(table.num_rows(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        let err = load_csv_file("/definitely/not/a/real/path.csv").unwrap_err();
        assert!(matches!(err, TableError::CsvParse { line: 0, .. }));
    }
}
