//! Synthetic German-Credit-like dataset.
//!
//! The paper's third demonstration scenario uses "the German Credit dataset
//! from the UCI Machine Learning Repository, with demographic and financial
//! information on 1000 individuals" (§3).  The generator mirrors its schema
//! (sex, age, credit amount, loan duration, checking-account status, housing)
//! plus a `credit_score` suitable for ranking applicants, with a mild skew
//! against young applicants — the age-based disparity that fairness analyses
//! of the original dataset report.

use crate::synth;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rf_table::{Column, Table, TableResult};

/// Configuration of the German-Credit-like generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GermanCreditConfig {
    /// Number of applicants (the UCI dataset has 1,000).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Score penalty applied to applicants younger than 25 (the age-based
    /// disparity).  Set to 0.0 for an unbiased counterfactual.
    pub youth_penalty: f64,
}

impl Default for GermanCreditConfig {
    fn default() -> Self {
        GermanCreditConfig {
            rows: 1_000,
            seed: 11,
            youth_penalty: 45.0,
        }
    }
}

impl GermanCreditConfig {
    /// Creates a configuration with the default size and the given seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        GermanCreditConfig {
            seed,
            ..Self::default()
        }
    }

    /// Creates a configuration with the given number of rows.
    #[must_use]
    pub fn with_rows(rows: usize) -> Self {
        GermanCreditConfig {
            rows,
            ..Self::default()
        }
    }

    /// Creates an unbiased counterfactual configuration.
    #[must_use]
    pub fn unbiased(mut self) -> Self {
        self.youth_penalty = 0.0;
        self
    }

    /// Generates the synthetic table.
    ///
    /// Columns: `id`, `sex`, `age`, `age_group` ("young" < 25 / "adult"),
    /// `credit_amount`, `duration_months`, `checking_status`, `housing`,
    /// `employment_years`, `credit_score`.
    ///
    /// # Errors
    /// Propagates table-construction errors.
    pub fn generate(&self) -> TableResult<Table> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = self.rows;

        let mut id = Vec::with_capacity(n);
        let mut sex = Vec::with_capacity(n);
        let mut age = Vec::with_capacity(n);
        let mut age_group = Vec::with_capacity(n);
        let mut credit_amount = Vec::with_capacity(n);
        let mut duration = Vec::with_capacity(n);
        let mut checking = Vec::with_capacity(n);
        let mut housing = Vec::with_capacity(n);
        let mut employment = Vec::with_capacity(n);
        let mut score = Vec::with_capacity(n);

        for i in 0..n {
            let person_age = synth::truncated_normal(&mut rng, 35.5, 11.0, 19.0, 75.0).round();
            let young = person_age < 25.0;
            let person_sex = synth::categorical(&mut rng, &[("male", 0.69), ("female", 0.31)]);
            let amount = synth::log_normal(&mut rng, 7.9, 0.75)
                .clamp(250.0, 20_000.0)
                .round();
            let months = synth::truncated_normal(&mut rng, 21.0, 12.0, 4.0, 72.0).round();
            let years_employed = synth::truncated_normal(
                &mut rng,
                ((person_age - 18.0) * 0.35).min(20.0),
                3.0,
                0.0,
                40.0,
            )
            .round();
            let checking_status = synth::categorical(
                &mut rng,
                &[
                    ("none", 0.39),
                    ("<0", 0.27),
                    ("0<=X<200", 0.27),
                    (">=200", 0.07),
                ],
            );
            let house =
                synth::categorical(&mut rng, &[("own", 0.71), ("rent", 0.18), ("free", 0.11)]);

            // Credit-worthiness: longer employment and smaller requested
            // amounts relative to duration raise the score; the youth penalty
            // injects the documented age disparity.
            let base = 600.0 + 8.0 * years_employed - 0.008 * amount - 1.2 * months
                + if checking_status == ">=200" {
                    25.0
                } else {
                    0.0
                }
                + if house == "own" { 15.0 } else { 0.0 }
                + synth::normal(&mut rng, 0.0, 35.0);
            let penalty = if young { self.youth_penalty } else { 0.0 };
            let credit_score = (base - penalty).clamp(300.0, 850.0).round();

            id.push(format!("A{:04}", i + 1));
            sex.push(person_sex.to_string());
            age.push(person_age);
            age_group.push(if young { "young" } else { "adult" }.to_string());
            credit_amount.push(amount);
            duration.push(months as i64);
            checking.push(checking_status.to_string());
            housing.push(house.to_string());
            employment.push(years_employed);
            score.push(credit_score);
        }

        Table::from_columns(vec![
            ("id", Column::from_strings(id)),
            ("sex", Column::from_strings(sex)),
            ("age", Column::from_f64(age)),
            ("age_group", Column::from_strings(age_group)),
            ("credit_amount", Column::from_f64(credit_amount)),
            ("duration_months", Column::from_i64(duration)),
            ("checking_status", Column::from_strings(checking)),
            ("housing", Column::from_strings(housing)),
            ("employment_years", Column::from_f64(employment)),
            ("credit_score", Column::from_f64(score)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_matches_uci_size() {
        let t = GermanCreditConfig::default().generate().unwrap();
        assert_eq!(t.num_rows(), 1_000);
        assert!(t.schema().contains("credit_score"));
        assert!(t.schema().contains("age_group"));
        assert_eq!(t.num_columns(), 10);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = GermanCreditConfig::with_rows(200).generate().unwrap();
        let b = GermanCreditConfig::with_rows(200).generate().unwrap();
        assert_eq!(a, b);
        let c = GermanCreditConfig {
            rows: 200,
            seed: 99,
            ..Default::default()
        }
        .generate()
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn value_ranges_plausible() {
        let t = GermanCreditConfig::default().generate().unwrap();
        for v in t.numeric_column("credit_score").unwrap() {
            assert!((300.0..=850.0).contains(&v));
        }
        for v in t.numeric_column("age").unwrap() {
            assert!((19.0..=75.0).contains(&v));
        }
        for v in t.numeric_column("credit_amount").unwrap() {
            assert!((250.0..=20_000.0).contains(&v));
        }
        for v in t.numeric_column("duration_months").unwrap() {
            assert!((4.0..=72.0).contains(&v));
        }
    }

    #[test]
    fn age_group_is_binary_and_consistent() {
        let t = GermanCreditConfig::default().generate().unwrap();
        let ages = t.numeric_column("age").unwrap();
        let groups = t.categorical_column("age_group").unwrap();
        for (age, group) in ages.iter().zip(groups.iter()) {
            let group = group.as_deref().unwrap();
            if *age < 25.0 {
                assert_eq!(group, "young");
            } else {
                assert_eq!(group, "adult");
            }
        }
        // Both groups are represented (needed for the fairness widget).
        let young = groups
            .iter()
            .filter(|g| g.as_deref() == Some("young"))
            .count();
        assert!(young > 20 && young < 500, "young count {young}");
    }

    #[test]
    fn young_applicants_score_lower_on_average() {
        let t = GermanCreditConfig::with_rows(2000).generate().unwrap();
        let groups = t.categorical_column("age_group").unwrap();
        let scores = t.numeric_column("credit_score").unwrap();
        let (mut sum_y, mut n_y, mut sum_a, mut n_a) = (0.0, 0usize, 0.0, 0usize);
        for (group, score) in groups.iter().zip(scores.iter()) {
            if group.as_deref() == Some("young") {
                sum_y += score;
                n_y += 1;
            } else {
                sum_a += score;
                n_a += 1;
            }
        }
        assert!(sum_a / n_a as f64 > sum_y / n_y as f64 + 20.0);
    }

    #[test]
    fn unbiased_counterfactual_narrows_the_gap() {
        let biased = GermanCreditConfig::with_rows(3000).generate().unwrap();
        let unbiased = GermanCreditConfig::with_rows(3000)
            .unbiased()
            .generate()
            .unwrap();
        let gap = |t: &rf_table::Table| {
            let groups = t.categorical_column("age_group").unwrap();
            let scores = t.numeric_column("credit_score").unwrap();
            let (mut sum_y, mut n_y, mut sum_a, mut n_a) = (0.0, 0usize, 0.0, 0usize);
            for (group, score) in groups.iter().zip(scores.iter()) {
                if group.as_deref() == Some("young") {
                    sum_y += score;
                    n_y += 1;
                } else {
                    sum_a += score;
                    n_a += 1;
                }
            }
            sum_a / n_a as f64 - sum_y / n_y as f64
        };
        assert!(gap(&biased) > gap(&unbiased) + 20.0);
    }
}
