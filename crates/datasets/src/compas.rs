//! Synthetic COMPAS-like criminal risk assessment dataset.
//!
//! The paper's second demonstration scenario uses "a dataset collected and
//! published by ProPublica as part of their investigation into racial bias in
//! criminal risk assessment software called COMPAS [...] demographics,
//! recidivism scores produced by COMPAS, and criminal offense information for
//! 6,889 individuals" (§3).
//!
//! The real data contains sensitive personal information and is not shipped
//! here; this generator reproduces the schema and the statistical structure
//! that the fairness analysis depends on — in particular the published
//! disparity that the protected racial group receives systematically higher
//! decile risk scores at equal prior history.

use crate::synth;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rf_table::{Column, Table, TableResult};

/// Configuration of the COMPAS-like generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompasConfig {
    /// Number of individuals (the ProPublica dataset has 6,889).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Proportion of the protected racial group (ProPublica: ~51% African-American).
    pub protected_proportion: f64,
    /// Decile-score shift applied to the protected group (the bias the
    /// original investigation documented).  Set to 0.0 for an unbiased
    /// counterfactual dataset.
    pub score_shift: f64,
}

impl Default for CompasConfig {
    fn default() -> Self {
        CompasConfig {
            rows: 6_889,
            seed: 7,
            protected_proportion: 0.51,
            score_shift: 1.4,
        }
    }
}

impl CompasConfig {
    /// Creates a configuration with the default size and the given seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        CompasConfig {
            seed,
            ..Self::default()
        }
    }

    /// Creates a smaller dataset (useful for examples and tests).
    #[must_use]
    pub fn with_rows(rows: usize) -> Self {
        CompasConfig {
            rows,
            ..Self::default()
        }
    }

    /// Creates an unbiased counterfactual configuration (no score shift).
    #[must_use]
    pub fn unbiased(mut self) -> Self {
        self.score_shift = 0.0;
        self
    }

    /// Generates the synthetic table.
    ///
    /// Columns: `id`, `race` (binary: "African-American" / "Other"),
    /// `sex`, `age`, `age_cat`, `priors_count`, `decile_score` (1–10),
    /// `two_year_recid`.
    ///
    /// # Errors
    /// Propagates table-construction errors.
    pub fn generate(&self) -> TableResult<Table> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = self.rows;

        let mut id = Vec::with_capacity(n);
        let mut race = Vec::with_capacity(n);
        let mut sex = Vec::with_capacity(n);
        let mut age = Vec::with_capacity(n);
        let mut age_cat = Vec::with_capacity(n);
        let mut priors = Vec::with_capacity(n);
        let mut decile = Vec::with_capacity(n);
        let mut recid = Vec::with_capacity(n);

        for i in 0..n {
            let protected = synth::bernoulli(&mut rng, self.protected_proportion);
            let person_age = synth::truncated_normal(&mut rng, 34.0, 11.0, 18.0, 80.0).round();
            let person_priors = synth::count_like(&mut rng, 3.2);
            // Latent risk combines priors and age; the COMPAS decile score
            // adds the documented group-conditional shift on top of it.
            let latent = 0.55 * person_priors as f64 - 0.06 * (person_age - 18.0)
                + synth::normal(&mut rng, 0.0, 1.3);
            let shift = if protected { self.score_shift } else { 0.0 };
            let decile_score = (5.5 + latent + shift).round().clamp(1.0, 10.0) as i64;
            // Recidivism probability grows with the latent risk (not with the
            // group-conditional shift — that is exactly the published bias).
            let recid_prob = 1.0 / (1.0 + (-0.45 * latent).exp());
            let reoffended = synth::bernoulli(&mut rng, recid_prob);

            id.push(format!("P{:05}", i + 1));
            race.push(if protected {
                "African-American".to_string()
            } else {
                "Other".to_string()
            });
            sex.push(synth::categorical(&mut rng, &[("Male", 0.81), ("Female", 0.19)]).to_string());
            age.push(person_age);
            age_cat.push(
                if person_age < 25.0 {
                    "Less than 25"
                } else if person_age <= 45.0 {
                    "25 - 45"
                } else {
                    "Greater than 45"
                }
                .to_string(),
            );
            priors.push(person_priors);
            decile.push(decile_score);
            recid.push(reoffended);
        }

        Table::from_columns(vec![
            ("id", Column::from_strings(id)),
            ("race", Column::from_strings(race)),
            ("sex", Column::from_strings(sex)),
            ("age", Column::from_f64(age)),
            ("age_cat", Column::from_strings(age_cat)),
            ("priors_count", Column::from_i64(priors)),
            ("decile_score", Column::from_i64(decile)),
            ("two_year_recid", Column::from_bools(recid)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_matches_propublica_size() {
        let t = CompasConfig::with_rows(500).generate().unwrap();
        assert_eq!(t.num_rows(), 500);
        assert!(t.schema().contains("decile_score"));
        assert!(t.schema().contains("race"));
        assert_eq!(CompasConfig::default().rows, 6_889);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = CompasConfig::with_rows(300).generate().unwrap();
        let b = CompasConfig::with_rows(300).generate().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn decile_scores_in_range() {
        let t = CompasConfig::with_rows(1000).generate().unwrap();
        for v in t.numeric_column("decile_score").unwrap() {
            assert!((1.0..=10.0).contains(&v));
        }
        for v in t.numeric_column("priors_count").unwrap() {
            assert!(v >= 0.0);
        }
        for v in t.numeric_column("age").unwrap() {
            assert!((18.0..=80.0).contains(&v));
        }
    }

    #[test]
    fn protected_group_proportion_is_respected() {
        let t = CompasConfig::with_rows(4000).generate().unwrap();
        let races = t.categorical_column("race").unwrap();
        let protected = races
            .iter()
            .filter(|r| r.as_deref() == Some("African-American"))
            .count();
        let frac = protected as f64 / t.num_rows() as f64;
        assert!((frac - 0.51).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn biased_generator_shifts_scores_against_protected_group() {
        let t = CompasConfig::with_rows(4000).generate().unwrap();
        let races = t.categorical_column("race").unwrap();
        let scores = t.numeric_column("decile_score").unwrap();
        let (mut sum_p, mut n_p, mut sum_o, mut n_o) = (0.0, 0usize, 0.0, 0usize);
        for (race, score) in races.iter().zip(scores.iter()) {
            if race.as_deref() == Some("African-American") {
                sum_p += score;
                n_p += 1;
            } else {
                sum_o += score;
                n_o += 1;
            }
        }
        let mean_protected = sum_p / n_p as f64;
        let mean_other = sum_o / n_o as f64;
        assert!(
            mean_protected > mean_other + 0.8,
            "expected a clear score shift: {mean_protected} vs {mean_other}"
        );
    }

    #[test]
    fn unbiased_counterfactual_has_no_shift() {
        let t = CompasConfig::with_rows(4000).unbiased().generate().unwrap();
        let races = t.categorical_column("race").unwrap();
        let scores = t.numeric_column("decile_score").unwrap();
        let (mut sum_p, mut n_p, mut sum_o, mut n_o) = (0.0, 0usize, 0.0, 0usize);
        for (race, score) in races.iter().zip(scores.iter()) {
            if race.as_deref() == Some("African-American") {
                sum_p += score;
                n_p += 1;
            } else {
                sum_o += score;
                n_o += 1;
            }
        }
        let diff = (sum_p / n_p as f64 - sum_o / n_o as f64).abs();
        assert!(
            diff < 0.25,
            "unbiased generator should have no shift, got {diff}"
        );
    }

    #[test]
    fn age_categories_are_consistent_with_age() {
        let t = CompasConfig::with_rows(500).generate().unwrap();
        let ages = t.numeric_column("age").unwrap();
        let cats = t.categorical_column("age_cat").unwrap();
        for (age, cat) in ages.iter().zip(cats.iter()) {
            let cat = cat.as_deref().unwrap();
            if *age < 25.0 {
                assert_eq!(cat, "Less than 25");
            } else if *age <= 45.0 {
                assert_eq!(cat, "25 - 45");
            } else {
                assert_eq!(cat, "Greater than 45");
            }
        }
    }
}
