//! Ablation: FA*IR's multiple-testing adjustment.
//!
//! Compares the cost of the adjusted vs. unadjusted test and reports (in the
//! bench log) how often each verdict differs on mildly skewed rankings —
//! the adjusted test is more conservative, which is exactly why FA*IR does it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_fairness::{adjust_alpha, FairStarTest, ProtectedGroup};
use rf_ranking::Ranking;
use std::hint::black_box;

fn skewed_membership(n: usize, shift: usize) -> Vec<bool> {
    // Protected items appear every third position but pushed down by `shift`.
    (0..n)
        .map(|i| i >= shift && (i - shift).is_multiple_of(3))
        .collect()
}

fn adjustment_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/fair_star_adjustment_cost");
    for &k in &[10usize, 50, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(adjust_alpha(k, 0.33, 0.05).unwrap()));
        });
    }
    group.finish();
}

fn verdict_difference(c: &mut Criterion) {
    // Report how the adjusted and unadjusted verdicts differ across skews.
    let n = 300;
    let k = 100;
    let mut disagreements = 0usize;
    let mut total = 0usize;
    for shift in 0..30 {
        let members = skewed_membership(n, shift);
        let group = ProtectedGroup::from_membership("g", "x", members).unwrap();
        let p = group.protected_proportion();
        let ranking = Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap();
        let adjusted = FairStarTest::new(k, p)
            .unwrap()
            .evaluate(&group, &ranking)
            .unwrap();
        let unadjusted = FairStarTest::new(k, p)
            .unwrap()
            .with_adjustment(false)
            .evaluate(&group, &ranking)
            .unwrap();
        total += 1;
        if adjusted.satisfied != unadjusted.satisfied {
            disagreements += 1;
        }
        // The adjusted threshold can only be more permissive of the ranking.
        assert!(adjusted.alpha_adjusted <= unadjusted.alpha_adjusted);
    }
    println!(
        "[ablation] adjusted vs unadjusted FA*IR verdicts differ on {disagreements}/{total} skew levels"
    );

    let mut bench_group = c.benchmark_group("ablation/fair_star_evaluate");
    let members = skewed_membership(n, 10);
    let group = ProtectedGroup::from_membership("g", "x", members).unwrap();
    let p = group.protected_proportion();
    let ranking = Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap();
    for (name, adjust) in [("adjusted", true), ("unadjusted", false)] {
        let test = FairStarTest::new(k, p).unwrap().with_adjustment(adjust);
        bench_group.bench_function(name, |b| {
            b.iter(|| black_box(test.evaluate(&group, &ranking).unwrap()));
        });
    }
    bench_group.finish();
}

criterion_group!(benches, adjustment_cost, verdict_difference);
criterion_main!(benches);
