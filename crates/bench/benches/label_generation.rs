//! End-to-end label generation cost (the Figure 1 pipeline) as the dataset
//! grows, plus the three demonstration scenarios at their paper sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_bench::{compas_scenario, cs_label_config, cs_table_with_rows, german_credit_scenario};
use rf_core::NutritionalLabel;
use std::hint::black_box;

fn label_generation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_generation/cs_departments_scaling");
    group.sample_size(20);
    for rows in [100usize, 1_000, 10_000] {
        let table = cs_table_with_rows(rows);
        let config = cs_label_config();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                let label = NutritionalLabel::generate(black_box(&table), black_box(&config))
                    .expect("label");
                black_box(label.headline())
            });
        });
    }
    group.finish();
}

fn label_generation_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_generation/scenarios");
    group.sample_size(15);

    let cs_table = cs_table_with_rows(97);
    let cs_config = cs_label_config();
    group.bench_function("cs_departments_97", |b| {
        b.iter(|| NutritionalLabel::generate(black_box(&cs_table), black_box(&cs_config)).unwrap())
    });

    let (compas_table, compas_config) = compas_scenario(6_889);
    group.bench_function("compas_6889", |b| {
        b.iter(|| {
            NutritionalLabel::generate(black_box(&compas_table), black_box(&compas_config))
                .unwrap()
        })
    });

    let (credit_table, credit_config) = german_credit_scenario(1_000);
    group.bench_function("german_credit_1000", |b| {
        b.iter(|| {
            NutritionalLabel::generate(black_box(&credit_table), black_box(&credit_config))
                .unwrap()
        })
    });
    group.finish();
}

fn label_rendering(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_rendering");
    let table = cs_table_with_rows(97);
    let config = cs_label_config();
    let label = NutritionalLabel::generate(&table, &config).unwrap();
    group.bench_function("text", |b| b.iter(|| black_box(label.to_text())));
    group.bench_function("html", |b| b.iter(|| black_box(label.to_html())));
    group.bench_function("json", |b| b.iter(|| black_box(label.to_json().unwrap())));
    group.finish();
}

criterion_group!(
    benches,
    label_generation_scaling,
    label_generation_scenarios,
    label_rendering
);
criterion_main!(benches);
