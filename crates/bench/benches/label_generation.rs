//! End-to-end label generation cost (the Figure 1 pipeline) as the dataset
//! grows, plus the three demonstration scenarios at their paper sizes and a
//! parallel-versus-sequential schedule comparison of the analysis pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_bench::{compas_scenario, cs_label_config, cs_table_with_rows, german_credit_scenario};
use rf_core::AnalysisPipeline;
use std::hint::black_box;
use std::sync::Arc;

fn label_generation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_generation/cs_departments_scaling");
    group.sample_size(20);
    let pipeline = AnalysisPipeline::new();
    for rows in [100usize, 1_000, 10_000] {
        let table = Arc::new(cs_table_with_rows(rows));
        let config = Arc::new(cs_label_config());
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                let label = pipeline
                    .generate(
                        black_box(Arc::clone(&table)),
                        black_box(Arc::clone(&config)),
                    )
                    .expect("label");
                black_box(label.headline())
            });
        });
    }
    group.finish();
}

fn label_generation_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_generation/scenarios");
    group.sample_size(15);
    let pipeline = AnalysisPipeline::new();

    let cs_table = Arc::new(cs_table_with_rows(97));
    let cs_config = Arc::new(cs_label_config());
    group.bench_function("cs_departments_97", |b| {
        b.iter(|| {
            pipeline
                .generate(
                    black_box(Arc::clone(&cs_table)),
                    black_box(Arc::clone(&cs_config)),
                )
                .unwrap()
        })
    });

    let (compas_table, compas_config) = compas_scenario(6_889);
    let (compas_table, compas_config) = (Arc::new(compas_table), Arc::new(compas_config));
    group.bench_function("compas_6889", |b| {
        b.iter(|| {
            pipeline
                .generate(
                    black_box(Arc::clone(&compas_table)),
                    black_box(Arc::clone(&compas_config)),
                )
                .unwrap()
        })
    });

    let (credit_table, credit_config) = german_credit_scenario(1_000);
    let (credit_table, credit_config) = (Arc::new(credit_table), Arc::new(credit_config));
    group.bench_function("german_credit_1000", |b| {
        b.iter(|| {
            pipeline
                .generate(
                    black_box(Arc::clone(&credit_table)),
                    black_box(Arc::clone(&credit_config)),
                )
                .unwrap()
        })
    });
    group.finish();
}

/// The schedule ablation: the same analysis context, fanned out on the shared
/// pool versus built serially on one thread.
fn pipeline_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_generation/schedule");
    group.sample_size(15);
    let parallel = AnalysisPipeline::new();
    let sequential = AnalysisPipeline::sequential();
    for rows in [1_000usize, 10_000] {
        let table = Arc::new(cs_table_with_rows(rows));
        let config = Arc::new(cs_label_config());
        group.bench_with_input(BenchmarkId::new("parallel", rows), &rows, |b, _| {
            b.iter(|| {
                parallel
                    .generate(
                        black_box(Arc::clone(&table)),
                        black_box(Arc::clone(&config)),
                    )
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("sequential", rows), &rows, |b, _| {
            b.iter(|| {
                sequential
                    .generate(
                        black_box(Arc::clone(&table)),
                        black_box(Arc::clone(&config)),
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn label_rendering(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_rendering");
    let table = Arc::new(cs_table_with_rows(97));
    let config = Arc::new(cs_label_config());
    let label = AnalysisPipeline::new().generate(table, config).unwrap();
    group.bench_function("text", |b| b.iter(|| black_box(label.to_text())));
    group.bench_function("html", |b| b.iter(|| black_box(label.to_html())));
    group.bench_function("json", |b| b.iter(|| black_box(label.to_json().unwrap())));
    group.finish();
}

criterion_group!(
    benches,
    label_generation_scaling,
    label_generation_scenarios,
    pipeline_schedules,
    label_rendering
);
criterion_main!(benches);
