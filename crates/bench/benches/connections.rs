//! Serving-capacity benchmarks for the event-driven server.
//!
//! What the `rf-net` reactor buys: request round-trips over pools of
//! keep-alive connections (the reactor multiplexes them all on one thread),
//! and the cost of connection churn (accept → request → close) where the
//! old design paid a pool worker per connection for the whole exchange.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_server::{DatasetCatalog, Server, ServerConfig};
use std::hint::black_box;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct BenchServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl BenchServer {
    fn start(workers: usize) -> Self {
        let config = ServerConfig {
            bind_address: "127.0.0.1:0".to_string(),
            workers,
            ..ServerConfig::default()
        };
        let server = Server::bind(DatasetCatalog::with_demo_datasets(), &config).expect("bind");
        let addr = server.local_addr().expect("addr");
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run().expect("server run"));
        BenchServer {
            addr,
            shutdown,
            handle: Some(handle),
        }
    }
}

impl Drop for BenchServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// One request/response exchange on an existing keep-alive connection.
fn round_trip(stream: &mut TcpStream, path: &str) -> usize {
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: b\r\n\r\n").as_bytes())
        .expect("write");
    rf_net::read_one_response(stream)
        .expect("response")
        .body
        .len()
}

/// Warm-cache label round-trips multiplexed across open keep-alive
/// connections.  The reactor holds every connection on one thread; the
/// per-sweep cost should grow with the bytes streamed, not with the number
/// of idle registrations.
fn keep_alive_round_trips(c: &mut Criterion) {
    let server = BenchServer::start(4);
    let path = "/datasets/cs-departments/label.json?k=10";
    // Warm the cache once so iterations measure serving, not generation.
    let mut warmup = connect(server.addr);
    round_trip(&mut warmup, path);

    let mut group = c.benchmark_group("connections/keep_alive_round_trips");
    group.sample_size(10);
    for conns in [1usize, 8, 64] {
        let mut streams: Vec<TcpStream> = (0..conns).map(|_| connect(server.addr)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(conns), &conns, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for stream in &mut streams {
                    total += round_trip(stream, black_box(path));
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

/// Full connection churn: connect, one request, close.  Accept and close
/// both land on the reactor; the pool only sees the routed request.
fn connection_churn(c: &mut Criterion) {
    let server = BenchServer::start(4);
    let mut warmup = connect(server.addr);
    round_trip(&mut warmup, "/stats");

    let mut group = c.benchmark_group("connections/churn");
    group.sample_size(10);
    group.bench_function("connect_stats_close", |b| {
        b.iter(|| {
            let mut stream = connect(server.addr);
            black_box(round_trip(&mut stream, "/stats"))
        });
    });
    group.finish();
}

criterion_group!(benches, keep_alive_round_trips, connection_churn);
criterion_main!(benches);
