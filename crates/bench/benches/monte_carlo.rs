//! Per-trial Monte-Carlo stability: trials × workers sweep.
//!
//! The estimator decomposes into one scheduler task per trial (each on its
//! own derived ChaCha stream), so wall-clock should shrink with worker count
//! while the summary stays byte-identical to the sequential reference.  The
//! sweep also measures the sequential baseline at each trial count so the
//! scheduler's overhead on small fan-outs is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_bench::cs_table_with_rows;
use rf_ranking::ScoringFunction;
use rf_runtime::Scheduler;
use rf_stability::MonteCarloStability;
use std::hint::black_box;
use std::sync::Arc;

fn trials_by_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo/trials_x_workers");
    group.sample_size(10);
    let table = Arc::new(cs_table_with_rows(2_000));
    let scoring = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
        .expect("scoring");
    let ranking = scoring.rank_table(&table).expect("ranking");

    for trials in [16usize, 64, 256] {
        let estimator = MonteCarloStability::new()
            .with_trials(trials)
            .expect("trials")
            .with_k(10);
        group.bench_with_input(BenchmarkId::new("sequential", trials), &trials, |b, _| {
            b.iter(|| {
                estimator
                    .evaluate(black_box(&table), black_box(&scoring), black_box(&ranking))
                    .expect("evaluate")
            });
        });
        for workers in [1usize, 2, 4, 8] {
            let scheduler = Scheduler::new(workers);
            group.bench_with_input(
                BenchmarkId::new(format!("workers-{workers}"), trials),
                &trials,
                |b, _| {
                    b.iter(|| {
                        estimator
                            .evaluate_on(
                                &scheduler,
                                black_box(&table),
                                black_box(&scoring),
                                black_box(&ranking),
                            )
                            .expect("evaluate_on")
                    });
                },
            );
        }
    }
    group.finish();
}

/// The stability widget's full hot-path cost inside a label: one generation
/// with the detail enabled versus disabled.
fn label_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo/label_hot_path");
    group.sample_size(10);
    let table = Arc::new(cs_table_with_rows(2_000));
    let pipeline = rf_core::AnalysisPipeline::new();
    for (name, trials) in [("disabled", 0usize), ("32-trials", 32), ("128-trials", 128)] {
        let config = Arc::new(rf_bench::cs_label_config().with_monte_carlo_trials(trials));
        group.bench_function(name, |b| {
            b.iter(|| {
                pipeline
                    .generate(
                        black_box(Arc::clone(&table)),
                        black_box(Arc::clone(&config)),
                    )
                    .expect("label")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, trials_by_workers, label_hot_path);
criterion_main!(benches);
