//! Monte-Carlo stability: columnar kernel vs. materialized tables, batch
//! sweep, and the trials × workers scaling grid.
//!
//! Besides the interactive Criterion groups, this bench emits a
//! machine-readable snapshot to `BENCH_monte_carlo.json` at the repo root —
//! median ns/trial and an allocations-per-trial proxy (counted by a wrapping
//! global allocator) for the materialized reference vs. the columnar kernel
//! on the three demo scenarios, plus the batched-schedule sweep — so future
//! PRs can diff the hot path's trajectory instead of eyeballing logs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rf_bench::{
    compas_scenario, cs_table, cs_table_with_rows, german_credit_scenario, synth_scenario,
};
use rf_ranking::{kendall_tau_rankings, perturb_weights, Ranking, ScoringFunction, TrialKernel};
use rf_runtime::Scheduler;
use rf_stability::{trial_rng, MonteCarloStability};
use rf_table::{Column, Table};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counts every heap allocation, as a proxy for the kernel's
/// "allocation-free hot path" claim: the columnar path should allocate
/// O(1) per *evaluation*, the materialized path O(columns) per *trial*.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The three demo scenarios of the paper's §3, with their scoring recipes.
fn demo_scenarios() -> Vec<(&'static str, Arc<rf_table::Table>, ScoringFunction)> {
    vec![
        (
            "cs-departments",
            Arc::new(cs_table()),
            ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
                .expect("scoring"),
        ),
        (
            "compas",
            Arc::new(compas_scenario(600).0),
            ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)])
                .expect("scoring"),
        ),
        (
            "german-credit",
            Arc::new(german_credit_scenario(1000).0),
            ScoringFunction::from_pairs([
                ("credit_score", 0.7),
                ("employment_years", 0.2),
                ("credit_amount", -0.1),
            ])
            .expect("scoring"),
        ),
    ]
}

/// Median wall-clock nanoseconds per trial of `routine` (which runs
/// `trials` trials per call), over an adaptive number of samples.
fn median_ns_per_trial(mut routine: impl FnMut(), trials: usize) -> f64 {
    routine(); // warm-up (fills scratch pools, page-faults buffers)
    let mut samples: Vec<u128> = Vec::new();
    let started = Instant::now();
    while samples.len() < 5
        || (started.elapsed() < Duration::from_millis(400) && samples.len() < 40)
    {
        let s = Instant::now();
        routine();
        samples.push(s.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[samples.len() / 2] as f64 / trials as f64
}

/// Interleaved A/B/C… sampling: one sample of each routine per round, so
/// slow drift (thermal, background load) hits every contender equally.
/// Returns the median ns/trial per routine.
fn interleaved_medians_ns_per_trial(
    routines: &mut [&mut dyn FnMut()],
    trials: usize,
    rounds: usize,
) -> Vec<f64> {
    for routine in routines.iter_mut() {
        routine(); // warm-up
    }
    let mut samples: Vec<Vec<u128>> = routines
        .iter()
        .map(|_| Vec::with_capacity(rounds))
        .collect();
    for _ in 0..rounds {
        for (routine, bucket) in routines.iter_mut().zip(samples.iter_mut()) {
            let s = Instant::now();
            routine();
            bucket.push(s.elapsed().as_nanos());
        }
    }
    samples
        .into_iter()
        .map(|mut bucket| {
            bucket.sort_unstable();
            bucket[bucket.len() / 2] as f64 / trials as f64
        })
        .collect()
}

/// Standard normal via Box–Muller — the draw the estimator's noise model
/// makes, reproduced here for the seed-style baseline below.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// One column of the seed-style baseline plan.
enum SeedColumn {
    /// Deep-cloned into every draw (the pre-PR-5 behaviour: unperturbed
    /// columns were copied cell by cell, strings included).
    Keep(String),
    /// Perturbed: pre-extracted values plus the fitted noise scale.
    Noise {
        name: String,
        options: Vec<Option<f64>>,
        scale: f64,
    },
}

/// A faithful reconstruction of the estimator's **pre-PR-5 trial** — the
/// baseline the columnar kernel replaced: every trial materializes a full
/// perturbed [`Table`] (unperturbed columns deep-cloned), re-fits the
/// scoring function from scratch, builds a fresh [`Ranking`], and compares
/// with per-trial hash sets.  Fitting (noise scales, the original top-k) is
/// done once, as the old plan did.
struct SeedStylePlan<'a> {
    scoring: &'a ScoringFunction,
    ranking: &'a Ranking,
    columns: Vec<SeedColumn>,
    original_top_k: Vec<usize>,
    original_top_item: usize,
    k: usize,
    weight_noise: f64,
    seed: u64,
}

impl<'a> SeedStylePlan<'a> {
    fn fit(
        table: &'a Table,
        scoring: &'a ScoringFunction,
        ranking: &'a Ranking,
        data_noise: f64,
        weight_noise: f64,
        k: usize,
        seed: u64,
    ) -> Self {
        let attrs: Vec<&str> = scoring.attribute_names();
        let columns = table
            .schema()
            .fields()
            .iter()
            .map(|field| {
                let name = field.name.as_str();
                if attrs.contains(&name) {
                    let options = table.numeric_column_options(name).expect("numeric attr");
                    let non_null: Vec<f64> = options.iter().filter_map(|x| *x).collect();
                    let sd = if non_null.len() >= 2 {
                        rf_stats::stddev(&non_null).expect("stddev")
                    } else {
                        0.0
                    };
                    SeedColumn::Noise {
                        name: name.to_string(),
                        options,
                        scale: sd * data_noise,
                    }
                } else {
                    SeedColumn::Keep(name.to_string())
                }
            })
            .collect();
        SeedStylePlan {
            scoring,
            ranking,
            columns,
            original_top_k: ranking.top_k_indices(k),
            original_top_item: ranking.order()[0],
            k,
            weight_noise,
            seed,
        }
    }

    fn run_trial(&self, table: &Table, trial: usize) -> f64 {
        let mut rng = trial_rng(self.seed, trial);
        let mut out = Table::new();
        for column in &self.columns {
            match column {
                SeedColumn::Keep(name) => {
                    // The old `Table` stored columns by value: sharing the
                    // column meant cloning every cell.
                    out.add_column(name, table.column(name).expect("column").clone())
                        .expect("add");
                }
                SeedColumn::Noise {
                    name,
                    options,
                    scale,
                } => {
                    let perturbed: Vec<Option<f64>> = options
                        .iter()
                        .map(|opt| opt.map(|v| v + gaussian(&mut rng) * scale))
                        .collect();
                    out.add_column(name, Column::Float(perturbed)).expect("add");
                }
            }
        }
        let scoring = if self.weight_noise > 0.0 {
            perturb_weights(self.scoring, self.weight_noise, &mut rng).expect("weights")
        } else {
            self.scoring.clone()
        };
        let perturbed_ranking = scoring.rank_table(&out).expect("rank");
        let tau = kendall_tau_rankings(self.ranking, &perturbed_ranking).unwrap_or(0.0);
        let a: HashSet<usize> = self.original_top_k.iter().copied().collect();
        let b: HashSet<usize> = perturbed_ranking
            .top_k_indices(self.k)
            .into_iter()
            .collect();
        let overlap = a.intersection(&b).count() as f64 / a.union(&b).count() as f64;
        let changed = perturbed_ranking.order()[0] != self.original_top_item;
        tau + overlap + f64::from(u8::from(changed))
    }
}

/// One dense scoring column of the legacy columnar plan.
struct LegacyColumn {
    packed: Vec<f64>,
    scale: f64,
}

/// Per-trial working memory of the legacy plan, mirroring the pre-PR-9
/// `TrialScratch` (perturbed buffers, fused stats, jittered weights, scores,
/// argsort vectors).
#[derive(Default)]
struct LegacyScratch {
    perturbed: Vec<Vec<f64>>,
    stats: Vec<(f64, f64)>,
    weights: Vec<f64>,
    params: Vec<(f64, f64)>,
    scores: Vec<f64>,
    order: Vec<usize>,
    rank_of: Vec<usize>,
}

/// A faithful reconstruction of the **pre-PR-9 columnar trial** — the
/// baseline the blocked tile kernel replaced: un-tiled noise and scoring
/// loops, and the stable comparator argsort of the old step 5
/// (`sort_by(partial_cmp)`, which allocates a merge buffer per trial).
/// Dense min-max columns only — exactly the shape of the synthetic
/// scenarios the rows sweep runs it on.
struct LegacyColumnarPlan {
    rows: usize,
    columns: Vec<LegacyColumn>,
    /// Recipe order: `(column index, weight)`.
    attrs: Vec<(usize, f64)>,
    data_noise: bool,
    weight_noise: f64,
    /// Min-max parameters hoisted out of the trial loop when the data is
    /// never perturbed, as the old kernel did.
    static_params: Option<Vec<(f64, f64)>>,
}

impl LegacyColumnarPlan {
    fn fit(table: &Table, scoring: &ScoringFunction, data_noise: f64, weight_noise: f64) -> Self {
        let attr_names: Vec<&str> = scoring.attribute_names();
        let mut columns = Vec::new();
        let mut column_names = Vec::new();
        for field in table.schema().fields() {
            let name = field.name.as_str();
            if !attr_names.contains(&name) {
                continue;
            }
            let options = table.numeric_column_options(name).expect("numeric attr");
            let packed: Vec<f64> = options.iter().map(|o| o.expect("dense column")).collect();
            let scale = if data_noise > 0.0 {
                rf_stats::stddev(&packed).expect("stddev") * data_noise
            } else {
                0.0
            };
            column_names.push(name.to_string());
            columns.push(LegacyColumn { packed, scale });
        }
        let attrs = scoring
            .weights()
            .iter()
            .map(|w| {
                let column = column_names
                    .iter()
                    .position(|n| *n == w.attribute)
                    .expect("attribute resolves");
                (column, w.weight)
            })
            .collect();
        let static_params = (data_noise <= 0.0).then(|| {
            columns
                .iter()
                .map(|c| {
                    let lo = c.packed.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = c.packed.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    (lo, hi)
                })
                .collect()
        });
        LegacyColumnarPlan {
            rows: table.num_rows(),
            columns,
            attrs,
            data_noise: data_noise > 0.0,
            weight_noise,
            static_params,
        }
    }

    fn scratch(&self) -> LegacyScratch {
        let mut scratch = LegacyScratch::default();
        scratch.perturbed.resize(self.columns.len(), Vec::new());
        scratch.stats.resize(self.columns.len(), (0.0, 0.0));
        scratch
    }

    fn rank_trial<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut LegacyScratch) {
        // 1. Data noise: one un-tiled pass per column, min/max fused.
        if self.data_noise {
            for ((column, buffer), stats) in self
                .columns
                .iter()
                .zip(scratch.perturbed.iter_mut())
                .zip(scratch.stats.iter_mut())
            {
                buffer.clear();
                buffer.reserve(column.packed.len());
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for &base in &column.packed {
                    let value = base + gaussian(rng) * column.scale;
                    min = min.min(value);
                    max = max.max(value);
                    buffer.push(value);
                }
                *stats = (min, max);
            }
        }

        // 2. Weight jitter, with the all-zero fallback.
        scratch.weights.clear();
        if self.weight_noise > 0.0 {
            for &(_, weight) in &self.attrs {
                let jitter = 1.0 + rng.gen_range(-self.weight_noise..=self.weight_noise);
                scratch.weights.push(weight * jitter);
            }
            if scratch.weights.iter().all(|&w| w == 0.0) {
                scratch.weights.clear();
                scratch.weights.extend(self.attrs.iter().map(|a| a.1));
            }
        } else {
            scratch.weights.extend(self.attrs.iter().map(|a| a.1));
        }

        // 3. Min-max parameters: static, or this trial's fused stats.
        scratch.params.clear();
        match &self.static_params {
            Some(params) => {
                for &(column, _) in &self.attrs {
                    scratch.params.push(params[column]);
                }
            }
            None => {
                for &(column, _) in &self.attrs {
                    scratch.params.push(scratch.stats[column]);
                }
            }
        }

        // 4. Score every row: un-tiled column-major accumulation.
        scratch.scores.clear();
        scratch.scores.resize(self.rows, 0.0);
        for (index, &(column, _)) in self.attrs.iter().enumerate() {
            let weight = scratch.weights[index];
            let (a, b) = scratch.params[index];
            let denom = b - a;
            let values: &[f64] = if self.data_noise {
                &scratch.perturbed[column]
            } else {
                &self.columns[column].packed
            };
            for (score, &value) in scratch.scores.iter_mut().zip(values) {
                *score += weight * ((value - a) / denom);
            }
        }

        // 5. The old argsort: a stable comparator sort (allocates its merge
        //    buffer every trial), then the rank vector.
        scratch.order.clear();
        scratch.order.extend(0..self.rows);
        let scores = &scratch.scores;
        scratch.order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        scratch.rank_of.clear();
        scratch.rank_of.resize(self.rows, 0);
        for (position, &index) in scratch.order.iter().enumerate() {
            scratch.rank_of[index] = position + 1;
        }
    }
}

/// Heap allocations per trial of one `routine` call.
fn allocs_per_trial(mut routine: impl FnMut(), trials: usize) -> f64 {
    routine(); // warm-up, so one-time setup does not count
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    routine();
    (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / trials as f64
}

/// Columnar kernel vs. materialized reference on the three demo scenarios.
fn columnar_vs_materialized(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo/columnar_vs_materialized");
    group.sample_size(10);
    for (name, table, scoring) in demo_scenarios() {
        let ranking = scoring.rank_table(&table).expect("ranking");
        let estimator = MonteCarloStability::new()
            .with_trials(32)
            .expect("trials")
            .with_k(10);
        group.bench_with_input(BenchmarkId::new("materialized", name), &(), |b, ()| {
            b.iter(|| {
                estimator
                    .evaluate_materialized(
                        black_box(&table),
                        black_box(&scoring),
                        black_box(&ranking),
                    )
                    .expect("evaluate_materialized")
            });
        });
        group.bench_with_input(BenchmarkId::new("columnar", name), &(), |b, ()| {
            b.iter(|| {
                estimator
                    .evaluate(black_box(&table), black_box(&scoring), black_box(&ranking))
                    .expect("evaluate")
            });
        });
    }
    group.finish();
}

/// Batch-size sweep: the batched schedule at several batches-per-worker
/// factors, against the per-trial-task schedule it replaces.
fn batch_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo/batch_sweep");
    group.sample_size(10);
    let table = Arc::new(cs_table_with_rows(2_000));
    let scoring = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
        .expect("scoring");
    let ranking = scoring.rank_table(&table).expect("ranking");
    let estimator = MonteCarloStability::new()
        .with_trials(256)
        .expect("trials")
        .with_k(10);
    for workers in [2usize, 4] {
        let scheduler = Scheduler::new(workers);
        group.bench_with_input(
            BenchmarkId::new(format!("per-trial-workers-{workers}"), 256),
            &(),
            |b, ()| {
                b.iter(|| {
                    estimator
                        .evaluate_on(
                            &scheduler,
                            black_box(&table),
                            black_box(&scoring),
                            black_box(&ranking),
                        )
                        .expect("evaluate_on")
                });
            },
        );
        for factor in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("batched-workers-{workers}-f{factor}"), 256),
                &(),
                |b, ()| {
                    b.iter(|| {
                        estimator
                            .evaluate_batched_with(
                                &scheduler,
                                black_box(&table),
                                black_box(&scoring),
                                black_box(&ranking),
                                None,
                                factor,
                            )
                            .expect("evaluate_batched_with")
                    });
                },
            );
        }
    }
    group.finish();
}

/// Trials × workers scaling of the batched schedule, with the sequential
/// baseline per trial count.
fn trials_by_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo/trials_x_workers");
    group.sample_size(10);
    let table = Arc::new(cs_table_with_rows(2_000));
    let scoring = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
        .expect("scoring");
    let ranking = scoring.rank_table(&table).expect("ranking");

    for trials in [16usize, 64, 256] {
        let estimator = MonteCarloStability::new()
            .with_trials(trials)
            .expect("trials")
            .with_k(10);
        group.bench_with_input(BenchmarkId::new("sequential", trials), &trials, |b, _| {
            b.iter(|| {
                estimator
                    .evaluate(black_box(&table), black_box(&scoring), black_box(&ranking))
                    .expect("evaluate")
            });
        });
        for workers in [1usize, 2, 4, 8] {
            let scheduler = Scheduler::new(workers);
            group.bench_with_input(
                BenchmarkId::new(format!("workers-{workers}"), trials),
                &trials,
                |b, _| {
                    b.iter(|| {
                        estimator
                            .evaluate_batched(
                                &scheduler,
                                black_box(&table),
                                black_box(&scoring),
                                black_box(&ranking),
                                None,
                            )
                            .expect("evaluate_batched")
                    });
                },
            );
        }
    }
    group.finish();
}

/// The blocked tile kernel against the pre-PR-9 columnar trial it replaced,
/// on growing synthetic scenarios (the interactive slice of the rows sweep;
/// `emit_report` measures the full 10³→10⁶ grid into the JSON snapshot).
fn tile_rows_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo/tile_rows_sweep");
    group.sample_size(10);
    for rows in [1_000usize, 10_000, 100_000] {
        let (table, config) = synth_scenario(rows);
        let scoring = config.scoring.clone();
        for (scenario, data_noise, weight_noise) in
            [("noisy", 0.05, 0.05), ("weight-only", 0.0, 0.05)]
        {
            let legacy = LegacyColumnarPlan::fit(&table, &scoring, data_noise, weight_noise);
            let kernel =
                TrialKernel::fit(&table, &scoring, data_noise, weight_noise).expect("kernel fit");
            let mut legacy_scratch = legacy.scratch();
            let mut scratch = kernel.scratch();
            group.bench_function(BenchmarkId::new(format!("legacy-{scenario}"), rows), |b| {
                b.iter(|| {
                    let mut rng = trial_rng(42, 0);
                    legacy.rank_trial(&mut rng, black_box(&mut legacy_scratch));
                });
            });
            group.bench_function(BenchmarkId::new(format!("tiled-{scenario}"), rows), |b| {
                b.iter(|| {
                    let mut rng = trial_rng(42, 0);
                    kernel
                        .rank_trial(&mut rng, black_box(&mut scratch))
                        .expect("rank_trial");
                });
            });
        }
    }
    group.finish();
}

/// The stability widget's full hot-path cost inside a label: one generation
/// with the detail enabled versus disabled.
fn label_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo/label_hot_path");
    group.sample_size(10);
    let table = Arc::new(cs_table_with_rows(2_000));
    let pipeline = rf_core::AnalysisPipeline::new();
    for (name, trials) in [("disabled", 0usize), ("32-trials", 32), ("128-trials", 128)] {
        let config = Arc::new(rf_bench::cs_label_config().with_monte_carlo_trials(trials));
        group.bench_function(name, |b| {
            b.iter(|| {
                pipeline
                    .generate(
                        black_box(Arc::clone(&table)),
                        black_box(Arc::clone(&config)),
                    )
                    .expect("label")
            });
        });
    }
    group.finish();
}

/// Measures the columnar-vs-materialized ablation and the batch sweep, then
/// writes `BENCH_monte_carlo.json` at the repo root (hand-rolled JSON: the
/// bench crate carries no serializer).
fn emit_report(c: &mut Criterion) {
    // This "benchmark" is a report generator, not a timing loop, so it
    // honours the CLI filter itself: `cargo bench -- emit_report` runs it
    // alone, and a filter naming any other group skips it.
    if !c.matches("emit_report") {
        return;
    }
    const TRIALS: usize = 64;
    const ROUNDS: usize = 25;
    let mut scenario_entries = Vec::new();
    for (name, table, scoring) in demo_scenarios() {
        let ranking = scoring.rank_table(&table).expect("ranking");
        let estimator = MonteCarloStability::new()
            .with_trials(TRIALS)
            .expect("trials")
            .with_k(10);
        let seed_plan = SeedStylePlan::fit(
            &table,
            &scoring,
            &ranking,
            estimator.data_noise,
            estimator.weight_noise,
            10,
            estimator.seed,
        );
        let mut run_seed_style = || {
            for trial in 0..TRIALS {
                black_box(seed_plan.run_trial(&table, trial));
            }
        };
        let mut run_materialized = || {
            estimator
                .evaluate_materialized(&table, &scoring, &ranking)
                .expect("evaluate_materialized");
        };
        let mut run_columnar = || {
            estimator
                .evaluate(&table, &scoring, &ranking)
                .expect("evaluate");
        };
        let medians = interleaved_medians_ns_per_trial(
            &mut [
                &mut run_seed_style,
                &mut run_materialized,
                &mut run_columnar,
            ],
            TRIALS,
            ROUNDS,
        );
        let (seed_ns, materialized_ns, columnar_ns) = (medians[0], medians[1], medians[2]);
        let seed_allocs = allocs_per_trial(&mut run_seed_style, TRIALS);
        let materialized_allocs = allocs_per_trial(&mut run_materialized, TRIALS);
        let columnar_allocs = allocs_per_trial(&mut run_columnar, TRIALS);
        let speedup_vs_seed = seed_ns / columnar_ns;
        let speedup_vs_materialized = materialized_ns / columnar_ns;
        println!(
            "report {name}: seed-style {seed_ns:.0} ns/trial ({seed_allocs:.1} allocs), \
             shared-column materialized {materialized_ns:.0} ns/trial \
             ({materialized_allocs:.1} allocs), columnar {columnar_ns:.0} ns/trial \
             ({columnar_allocs:.1} allocs) — {speedup_vs_seed:.2}x vs seed"
        );
        scenario_entries.push(format!(
            "    {{\"name\": \"{name}\", \"rows\": {rows}, \"trials\": {TRIALS}, \
             \"seed_style_ns_per_trial\": {seed_ns:.1}, \
             \"materialized_ns_per_trial\": {materialized_ns:.1}, \
             \"columnar_ns_per_trial\": {columnar_ns:.1}, \
             \"speedup_vs_seed_style\": {speedup_vs_seed:.2}, \
             \"speedup_vs_shared_column_materialized\": {speedup_vs_materialized:.2}, \
             \"seed_style_allocs_per_trial\": {seed_allocs:.2}, \
             \"materialized_allocs_per_trial\": {materialized_allocs:.2}, \
             \"columnar_allocs_per_trial\": {columnar_allocs:.2}}}",
            rows = table.num_rows(),
        ));
    }

    let sweep_table = Arc::new(cs_table_with_rows(2_000));
    let sweep_scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
            .expect("scoring");
    let sweep_ranking = sweep_scoring.rank_table(&sweep_table).expect("ranking");
    let sweep_estimator = MonteCarloStability::new()
        .with_trials(256)
        .expect("trials")
        .with_k(10);
    let mut sweep_entries = Vec::new();
    for workers in [2usize, 4] {
        let scheduler = Scheduler::new(workers);
        let per_trial_ns = median_ns_per_trial(
            || {
                sweep_estimator
                    .evaluate_on(&scheduler, &sweep_table, &sweep_scoring, &sweep_ranking)
                    .expect("evaluate_on");
            },
            256,
        );
        sweep_entries.push(format!(
            "    {{\"workers\": {workers}, \"schedule\": \"per-trial\", \
             \"batch_size\": 1, \"ns_per_trial\": {per_trial_ns:.1}}}"
        ));
        for factor in [1usize, 2, 4, 8] {
            let batch = 256usize.div_ceil(workers * factor);
            let ns = median_ns_per_trial(
                || {
                    sweep_estimator
                        .evaluate_batched_with(
                            &scheduler,
                            &sweep_table,
                            &sweep_scoring,
                            &sweep_ranking,
                            None,
                            factor,
                        )
                        .expect("evaluate_batched_with");
                },
                256,
            );
            sweep_entries.push(format!(
                "    {{\"workers\": {workers}, \"schedule\": \"batched\", \
                 \"batches_per_worker\": {factor}, \"batch_size\": {batch}, \
                 \"ns_per_trial\": {ns:.1}}}"
            ));
        }
    }

    // The rows sweep: legacy (pre-PR-9) columnar trial vs. the blocked tile
    // kernel, exact and relaxed-fp, on synthetic scenarios from 10³ to 10⁶
    // rows.  Two noise shapes per size: the default noisy trial (Gaussian
    // draws dominate as rows grow) and a weight-jitter-only trial (scoring +
    // argsort dominate — the loops the tiles and the key sort rebuilt).
    let mut rows_entries = Vec::new();
    for rows in [1_000usize, 10_000, 100_000, 1_000_000] {
        let (table, config) = synth_scenario(rows);
        let scoring = config.scoring.clone();
        let trials = (2_000_000 / rows).clamp(2, 64);
        let rounds = if rows >= 1_000_000 { 7 } else { 15 };
        for (scenario, data_noise, weight_noise) in [
            ("default-noise", 0.05, 0.05),
            ("weight-noise-only", 0.0, 0.05),
        ] {
            let legacy = LegacyColumnarPlan::fit(&table, &scoring, data_noise, weight_noise);
            let kernel =
                TrialKernel::fit(&table, &scoring, data_noise, weight_noise).expect("kernel fit");
            let relaxed = kernel.clone().with_relaxed_fp(true);
            // The baseline is honest only if it computes the same ranking:
            // the exact kernel must reproduce the legacy trial byte for byte
            // on a shared RNG stream.
            let mut legacy_scratch = legacy.scratch();
            let mut scratch = kernel.scratch();
            let mut relaxed_scratch = relaxed.scratch();
            legacy.rank_trial(&mut trial_rng(42, 0), &mut legacy_scratch);
            kernel
                .rank_trial(&mut trial_rng(42, 0), &mut scratch)
                .expect("rank_trial");
            assert_eq!(
                legacy_scratch.order,
                scratch.order(),
                "legacy reconstruction diverged from the exact tiled kernel"
            );
            let mut run_legacy = || {
                for trial in 0..trials {
                    legacy.rank_trial(&mut trial_rng(42, trial), &mut legacy_scratch);
                }
            };
            let mut run_tiled = || {
                for trial in 0..trials {
                    kernel
                        .rank_trial(&mut trial_rng(42, trial), &mut scratch)
                        .expect("rank_trial");
                }
            };
            let mut run_relaxed = || {
                for trial in 0..trials {
                    relaxed
                        .rank_trial(&mut trial_rng(42, trial), &mut relaxed_scratch)
                        .expect("rank_trial");
                }
            };
            let medians = interleaved_medians_ns_per_trial(
                &mut [&mut run_legacy, &mut run_tiled, &mut run_relaxed],
                trials,
                rounds,
            );
            let (legacy_ns, tiled_ns, relaxed_ns) = (medians[0], medians[1], medians[2]);
            let speedup = legacy_ns / tiled_ns;
            let rows_per_sec = rows as f64 / (tiled_ns / 1e9);
            println!(
                "rows sweep {rows} ({scenario}): legacy {legacy_ns:.0} ns/trial, \
                 tiled {tiled_ns:.0} ns/trial ({speedup:.2}x), \
                 relaxed {relaxed_ns:.0} ns/trial"
            );
            rows_entries.push(format!(
                "    {{\"rows\": {rows}, \"scenario\": \"{scenario}\", \
                 \"trials\": {trials}, \
                 \"legacy_columnar_ns_per_trial\": {legacy_ns:.1}, \
                 \"tiled_ns_per_trial\": {tiled_ns:.1}, \
                 \"tiled_relaxed_fp_ns_per_trial\": {relaxed_ns:.1}, \
                 \"speedup_tiled_vs_legacy\": {speedup:.2}, \
                 \"tiled_rows_per_sec\": {rows_per_sec:.0}}}"
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"monte_carlo\",\n  \"unit\": \"ns_per_trial\",\n  \
         \"baselines\": {{\n    \
         \"seed_style\": \"pre-PR-5 trial: perturbed Table materialized per draw, unperturbed columns deep-cloned\",\n    \
         \"materialized\": \"current evaluate_materialized reference: perturbed Table per draw, unperturbed columns Arc-shared\",\n    \
         \"columnar\": \"TrialKernel hot path: flat column buffers, reusable scratch, no per-trial tables\",\n    \
         \"legacy_columnar\": \"pre-PR-9 TrialKernel trial: un-tiled loops, stable comparator argsort\"\n  }},\n  \
         \"scenarios\": [\n{}\n  ],\n  \"batch_sweep_rows_2000_trials_256\": [\n{}\n  ],\n  \
         \"rows_sweep_schema_note\": \"each entry: one synthetic dense scenario (rf_datasets::SynthScenarioConfig, 4 score columns, min-max recipe) at the given row count; legacy_columnar is the pre-PR-9 columnar trial (un-tiled noise/scoring loops + stable comparator sort), tiled is the blocked TILE-row kernel (stable radix argsort), tiled_relaxed_fp additionally reassociates float reductions (~1e-9 relative score drift, off by default)\",\n  \
         \"rows_sweep\": [\n{}\n  ]\n}}\n",
        scenario_entries.join(",\n"),
        sweep_entries.join(",\n"),
        rows_entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_monte_carlo.json");
    std::fs::write(path, &json).expect("write BENCH_monte_carlo.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    columnar_vs_materialized,
    batch_sweep,
    trials_by_workers,
    tile_rows_sweep,
    label_hot_path,
    emit_report
);
criterion_main!(benches);
