//! Monte-Carlo stability: columnar kernel vs. materialized tables, batch
//! sweep, and the trials × workers scaling grid.
//!
//! Besides the interactive Criterion groups, this bench emits a
//! machine-readable snapshot to `BENCH_monte_carlo.json` at the repo root —
//! median ns/trial and an allocations-per-trial proxy (counted by a wrapping
//! global allocator) for the materialized reference vs. the columnar kernel
//! on the three demo scenarios, plus the batched-schedule sweep — so future
//! PRs can diff the hot path's trajectory instead of eyeballing logs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rf_bench::{compas_scenario, cs_table, cs_table_with_rows, german_credit_scenario};
use rf_ranking::{kendall_tau_rankings, perturb_weights, Ranking, ScoringFunction};
use rf_runtime::Scheduler;
use rf_stability::{trial_rng, MonteCarloStability};
use rf_table::{Column, Table};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counts every heap allocation, as a proxy for the kernel's
/// "allocation-free hot path" claim: the columnar path should allocate
/// O(1) per *evaluation*, the materialized path O(columns) per *trial*.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The three demo scenarios of the paper's §3, with their scoring recipes.
fn demo_scenarios() -> Vec<(&'static str, Arc<rf_table::Table>, ScoringFunction)> {
    vec![
        (
            "cs-departments",
            Arc::new(cs_table()),
            ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
                .expect("scoring"),
        ),
        (
            "compas",
            Arc::new(compas_scenario(600).0),
            ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)])
                .expect("scoring"),
        ),
        (
            "german-credit",
            Arc::new(german_credit_scenario(1000).0),
            ScoringFunction::from_pairs([
                ("credit_score", 0.7),
                ("employment_years", 0.2),
                ("credit_amount", -0.1),
            ])
            .expect("scoring"),
        ),
    ]
}

/// Median wall-clock nanoseconds per trial of `routine` (which runs
/// `trials` trials per call), over an adaptive number of samples.
fn median_ns_per_trial(mut routine: impl FnMut(), trials: usize) -> f64 {
    routine(); // warm-up (fills scratch pools, page-faults buffers)
    let mut samples: Vec<u128> = Vec::new();
    let started = Instant::now();
    while samples.len() < 5
        || (started.elapsed() < Duration::from_millis(400) && samples.len() < 40)
    {
        let s = Instant::now();
        routine();
        samples.push(s.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[samples.len() / 2] as f64 / trials as f64
}

/// Interleaved A/B/C… sampling: one sample of each routine per round, so
/// slow drift (thermal, background load) hits every contender equally.
/// Returns the median ns/trial per routine.
fn interleaved_medians_ns_per_trial(
    routines: &mut [&mut dyn FnMut()],
    trials: usize,
    rounds: usize,
) -> Vec<f64> {
    for routine in routines.iter_mut() {
        routine(); // warm-up
    }
    let mut samples: Vec<Vec<u128>> = routines
        .iter()
        .map(|_| Vec::with_capacity(rounds))
        .collect();
    for _ in 0..rounds {
        for (routine, bucket) in routines.iter_mut().zip(samples.iter_mut()) {
            let s = Instant::now();
            routine();
            bucket.push(s.elapsed().as_nanos());
        }
    }
    samples
        .into_iter()
        .map(|mut bucket| {
            bucket.sort_unstable();
            bucket[bucket.len() / 2] as f64 / trials as f64
        })
        .collect()
}

/// Standard normal via Box–Muller — the draw the estimator's noise model
/// makes, reproduced here for the seed-style baseline below.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// One column of the seed-style baseline plan.
enum SeedColumn {
    /// Deep-cloned into every draw (the pre-PR-5 behaviour: unperturbed
    /// columns were copied cell by cell, strings included).
    Keep(String),
    /// Perturbed: pre-extracted values plus the fitted noise scale.
    Noise {
        name: String,
        options: Vec<Option<f64>>,
        scale: f64,
    },
}

/// A faithful reconstruction of the estimator's **pre-PR-5 trial** — the
/// baseline the columnar kernel replaced: every trial materializes a full
/// perturbed [`Table`] (unperturbed columns deep-cloned), re-fits the
/// scoring function from scratch, builds a fresh [`Ranking`], and compares
/// with per-trial hash sets.  Fitting (noise scales, the original top-k) is
/// done once, as the old plan did.
struct SeedStylePlan<'a> {
    scoring: &'a ScoringFunction,
    ranking: &'a Ranking,
    columns: Vec<SeedColumn>,
    original_top_k: Vec<usize>,
    original_top_item: usize,
    k: usize,
    weight_noise: f64,
    seed: u64,
}

impl<'a> SeedStylePlan<'a> {
    fn fit(
        table: &'a Table,
        scoring: &'a ScoringFunction,
        ranking: &'a Ranking,
        data_noise: f64,
        weight_noise: f64,
        k: usize,
        seed: u64,
    ) -> Self {
        let attrs: Vec<&str> = scoring.attribute_names();
        let columns = table
            .schema()
            .fields()
            .iter()
            .map(|field| {
                let name = field.name.as_str();
                if attrs.contains(&name) {
                    let options = table.numeric_column_options(name).expect("numeric attr");
                    let non_null: Vec<f64> = options.iter().filter_map(|x| *x).collect();
                    let sd = if non_null.len() >= 2 {
                        rf_stats::stddev(&non_null).expect("stddev")
                    } else {
                        0.0
                    };
                    SeedColumn::Noise {
                        name: name.to_string(),
                        options,
                        scale: sd * data_noise,
                    }
                } else {
                    SeedColumn::Keep(name.to_string())
                }
            })
            .collect();
        SeedStylePlan {
            scoring,
            ranking,
            columns,
            original_top_k: ranking.top_k_indices(k),
            original_top_item: ranking.order()[0],
            k,
            weight_noise,
            seed,
        }
    }

    fn run_trial(&self, table: &Table, trial: usize) -> f64 {
        let mut rng = trial_rng(self.seed, trial);
        let mut out = Table::new();
        for column in &self.columns {
            match column {
                SeedColumn::Keep(name) => {
                    // The old `Table` stored columns by value: sharing the
                    // column meant cloning every cell.
                    out.add_column(name, table.column(name).expect("column").clone())
                        .expect("add");
                }
                SeedColumn::Noise {
                    name,
                    options,
                    scale,
                } => {
                    let perturbed: Vec<Option<f64>> = options
                        .iter()
                        .map(|opt| opt.map(|v| v + gaussian(&mut rng) * scale))
                        .collect();
                    out.add_column(name, Column::Float(perturbed)).expect("add");
                }
            }
        }
        let scoring = if self.weight_noise > 0.0 {
            perturb_weights(self.scoring, self.weight_noise, &mut rng).expect("weights")
        } else {
            self.scoring.clone()
        };
        let perturbed_ranking = scoring.rank_table(&out).expect("rank");
        let tau = kendall_tau_rankings(self.ranking, &perturbed_ranking).unwrap_or(0.0);
        let a: HashSet<usize> = self.original_top_k.iter().copied().collect();
        let b: HashSet<usize> = perturbed_ranking
            .top_k_indices(self.k)
            .into_iter()
            .collect();
        let overlap = a.intersection(&b).count() as f64 / a.union(&b).count() as f64;
        let changed = perturbed_ranking.order()[0] != self.original_top_item;
        tau + overlap + f64::from(u8::from(changed))
    }
}

/// Heap allocations per trial of one `routine` call.
fn allocs_per_trial(mut routine: impl FnMut(), trials: usize) -> f64 {
    routine(); // warm-up, so one-time setup does not count
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    routine();
    (ALLOCATIONS.load(Ordering::Relaxed) - before) as f64 / trials as f64
}

/// Columnar kernel vs. materialized reference on the three demo scenarios.
fn columnar_vs_materialized(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo/columnar_vs_materialized");
    group.sample_size(10);
    for (name, table, scoring) in demo_scenarios() {
        let ranking = scoring.rank_table(&table).expect("ranking");
        let estimator = MonteCarloStability::new()
            .with_trials(32)
            .expect("trials")
            .with_k(10);
        group.bench_with_input(BenchmarkId::new("materialized", name), &(), |b, ()| {
            b.iter(|| {
                estimator
                    .evaluate_materialized(
                        black_box(&table),
                        black_box(&scoring),
                        black_box(&ranking),
                    )
                    .expect("evaluate_materialized")
            });
        });
        group.bench_with_input(BenchmarkId::new("columnar", name), &(), |b, ()| {
            b.iter(|| {
                estimator
                    .evaluate(black_box(&table), black_box(&scoring), black_box(&ranking))
                    .expect("evaluate")
            });
        });
    }
    group.finish();
}

/// Batch-size sweep: the batched schedule at several batches-per-worker
/// factors, against the per-trial-task schedule it replaces.
fn batch_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo/batch_sweep");
    group.sample_size(10);
    let table = Arc::new(cs_table_with_rows(2_000));
    let scoring = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
        .expect("scoring");
    let ranking = scoring.rank_table(&table).expect("ranking");
    let estimator = MonteCarloStability::new()
        .with_trials(256)
        .expect("trials")
        .with_k(10);
    for workers in [2usize, 4] {
        let scheduler = Scheduler::new(workers);
        group.bench_with_input(
            BenchmarkId::new(format!("per-trial-workers-{workers}"), 256),
            &(),
            |b, ()| {
                b.iter(|| {
                    estimator
                        .evaluate_on(
                            &scheduler,
                            black_box(&table),
                            black_box(&scoring),
                            black_box(&ranking),
                        )
                        .expect("evaluate_on")
                });
            },
        );
        for factor in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("batched-workers-{workers}-f{factor}"), 256),
                &(),
                |b, ()| {
                    b.iter(|| {
                        estimator
                            .evaluate_batched_with(
                                &scheduler,
                                black_box(&table),
                                black_box(&scoring),
                                black_box(&ranking),
                                None,
                                factor,
                            )
                            .expect("evaluate_batched_with")
                    });
                },
            );
        }
    }
    group.finish();
}

/// Trials × workers scaling of the batched schedule, with the sequential
/// baseline per trial count.
fn trials_by_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo/trials_x_workers");
    group.sample_size(10);
    let table = Arc::new(cs_table_with_rows(2_000));
    let scoring = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
        .expect("scoring");
    let ranking = scoring.rank_table(&table).expect("ranking");

    for trials in [16usize, 64, 256] {
        let estimator = MonteCarloStability::new()
            .with_trials(trials)
            .expect("trials")
            .with_k(10);
        group.bench_with_input(BenchmarkId::new("sequential", trials), &trials, |b, _| {
            b.iter(|| {
                estimator
                    .evaluate(black_box(&table), black_box(&scoring), black_box(&ranking))
                    .expect("evaluate")
            });
        });
        for workers in [1usize, 2, 4, 8] {
            let scheduler = Scheduler::new(workers);
            group.bench_with_input(
                BenchmarkId::new(format!("workers-{workers}"), trials),
                &trials,
                |b, _| {
                    b.iter(|| {
                        estimator
                            .evaluate_batched(
                                &scheduler,
                                black_box(&table),
                                black_box(&scoring),
                                black_box(&ranking),
                                None,
                            )
                            .expect("evaluate_batched")
                    });
                },
            );
        }
    }
    group.finish();
}

/// The stability widget's full hot-path cost inside a label: one generation
/// with the detail enabled versus disabled.
fn label_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo/label_hot_path");
    group.sample_size(10);
    let table = Arc::new(cs_table_with_rows(2_000));
    let pipeline = rf_core::AnalysisPipeline::new();
    for (name, trials) in [("disabled", 0usize), ("32-trials", 32), ("128-trials", 128)] {
        let config = Arc::new(rf_bench::cs_label_config().with_monte_carlo_trials(trials));
        group.bench_function(name, |b| {
            b.iter(|| {
                pipeline
                    .generate(
                        black_box(Arc::clone(&table)),
                        black_box(Arc::clone(&config)),
                    )
                    .expect("label")
            });
        });
    }
    group.finish();
}

/// Measures the columnar-vs-materialized ablation and the batch sweep, then
/// writes `BENCH_monte_carlo.json` at the repo root (hand-rolled JSON: the
/// bench crate carries no serializer).
fn emit_report(_c: &mut Criterion) {
    const TRIALS: usize = 64;
    const ROUNDS: usize = 25;
    let mut scenario_entries = Vec::new();
    for (name, table, scoring) in demo_scenarios() {
        let ranking = scoring.rank_table(&table).expect("ranking");
        let estimator = MonteCarloStability::new()
            .with_trials(TRIALS)
            .expect("trials")
            .with_k(10);
        let seed_plan = SeedStylePlan::fit(
            &table,
            &scoring,
            &ranking,
            estimator.data_noise,
            estimator.weight_noise,
            10,
            estimator.seed,
        );
        let mut run_seed_style = || {
            for trial in 0..TRIALS {
                black_box(seed_plan.run_trial(&table, trial));
            }
        };
        let mut run_materialized = || {
            estimator
                .evaluate_materialized(&table, &scoring, &ranking)
                .expect("evaluate_materialized");
        };
        let mut run_columnar = || {
            estimator
                .evaluate(&table, &scoring, &ranking)
                .expect("evaluate");
        };
        let medians = interleaved_medians_ns_per_trial(
            &mut [
                &mut run_seed_style,
                &mut run_materialized,
                &mut run_columnar,
            ],
            TRIALS,
            ROUNDS,
        );
        let (seed_ns, materialized_ns, columnar_ns) = (medians[0], medians[1], medians[2]);
        let seed_allocs = allocs_per_trial(&mut run_seed_style, TRIALS);
        let materialized_allocs = allocs_per_trial(&mut run_materialized, TRIALS);
        let columnar_allocs = allocs_per_trial(&mut run_columnar, TRIALS);
        let speedup_vs_seed = seed_ns / columnar_ns;
        let speedup_vs_materialized = materialized_ns / columnar_ns;
        println!(
            "report {name}: seed-style {seed_ns:.0} ns/trial ({seed_allocs:.1} allocs), \
             shared-column materialized {materialized_ns:.0} ns/trial \
             ({materialized_allocs:.1} allocs), columnar {columnar_ns:.0} ns/trial \
             ({columnar_allocs:.1} allocs) — {speedup_vs_seed:.2}x vs seed"
        );
        scenario_entries.push(format!(
            "    {{\"name\": \"{name}\", \"rows\": {rows}, \"trials\": {TRIALS}, \
             \"seed_style_ns_per_trial\": {seed_ns:.1}, \
             \"materialized_ns_per_trial\": {materialized_ns:.1}, \
             \"columnar_ns_per_trial\": {columnar_ns:.1}, \
             \"speedup_vs_seed_style\": {speedup_vs_seed:.2}, \
             \"speedup_vs_shared_column_materialized\": {speedup_vs_materialized:.2}, \
             \"seed_style_allocs_per_trial\": {seed_allocs:.2}, \
             \"materialized_allocs_per_trial\": {materialized_allocs:.2}, \
             \"columnar_allocs_per_trial\": {columnar_allocs:.2}}}",
            rows = table.num_rows(),
        ));
    }

    let sweep_table = Arc::new(cs_table_with_rows(2_000));
    let sweep_scoring =
        ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
            .expect("scoring");
    let sweep_ranking = sweep_scoring.rank_table(&sweep_table).expect("ranking");
    let sweep_estimator = MonteCarloStability::new()
        .with_trials(256)
        .expect("trials")
        .with_k(10);
    let mut sweep_entries = Vec::new();
    for workers in [2usize, 4] {
        let scheduler = Scheduler::new(workers);
        let per_trial_ns = median_ns_per_trial(
            || {
                sweep_estimator
                    .evaluate_on(&scheduler, &sweep_table, &sweep_scoring, &sweep_ranking)
                    .expect("evaluate_on");
            },
            256,
        );
        sweep_entries.push(format!(
            "    {{\"workers\": {workers}, \"schedule\": \"per-trial\", \
             \"batch_size\": 1, \"ns_per_trial\": {per_trial_ns:.1}}}"
        ));
        for factor in [1usize, 2, 4, 8] {
            let batch = 256usize.div_ceil(workers * factor);
            let ns = median_ns_per_trial(
                || {
                    sweep_estimator
                        .evaluate_batched_with(
                            &scheduler,
                            &sweep_table,
                            &sweep_scoring,
                            &sweep_ranking,
                            None,
                            factor,
                        )
                        .expect("evaluate_batched_with");
                },
                256,
            );
            sweep_entries.push(format!(
                "    {{\"workers\": {workers}, \"schedule\": \"batched\", \
                 \"batches_per_worker\": {factor}, \"batch_size\": {batch}, \
                 \"ns_per_trial\": {ns:.1}}}"
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"monte_carlo\",\n  \"unit\": \"ns_per_trial\",\n  \
         \"baselines\": {{\n    \
         \"seed_style\": \"pre-PR-5 trial: perturbed Table materialized per draw, unperturbed columns deep-cloned\",\n    \
         \"materialized\": \"current evaluate_materialized reference: perturbed Table per draw, unperturbed columns Arc-shared\",\n    \
         \"columnar\": \"TrialKernel hot path: flat column buffers, reusable scratch, no per-trial tables\"\n  }},\n  \
         \"scenarios\": [\n{}\n  ],\n  \"batch_sweep_rows_2000_trials_256\": [\n{}\n  ]\n}}\n",
        scenario_entries.join(",\n"),
        sweep_entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_monte_carlo.json");
    std::fs::write(path, &json).expect("write BENCH_monte_carlo.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    columnar_vs_materialized,
    batch_sweep,
    trials_by_workers,
    label_hot_path,
    emit_report
);
criterion_main!(benches);
