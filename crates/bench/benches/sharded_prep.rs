//! Sharded versus sequential analysis-context preparation, and the sweep
//! amortization it enables.
//!
//! Preparation (scoring every row, extracting protected groups, normalizing
//! the score matrix) dominates label generation on large tables.  The
//! parallel schedule shards row scoring over the `rf-runtime` pool and runs
//! one job per protected group; the deterministic shard merge keeps the
//! result byte-identical to the sequential reference measured alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_bench::{cs_label_config, cs_table_with_rows};
use rf_core::AnalysisPipeline;
use std::hint::black_box;
use std::sync::Arc;

fn preparation_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_prep/schedule");
    group.sample_size(15);
    let parallel = AnalysisPipeline::new();
    let sequential = AnalysisPipeline::sequential();
    for rows in [1_000usize, 10_000, 50_000] {
        let table = Arc::new(cs_table_with_rows(rows));
        let config = Arc::new(cs_label_config());
        group.bench_with_input(BenchmarkId::new("sharded", rows), &rows, |b, _| {
            b.iter(|| {
                parallel
                    .prepare(
                        black_box(Arc::clone(&table)),
                        black_box(Arc::clone(&config)),
                    )
                    .expect("prepare")
            });
        });
        group.bench_with_input(BenchmarkId::new("sequential", rows), &rows, |b, _| {
            b.iter(|| {
                sequential
                    .prepare(
                        black_box(Arc::clone(&table)),
                        black_box(Arc::clone(&config)),
                    )
                    .expect("prepare")
            });
        });
    }
    group.finish();
}

/// One preparation amortized over a sweep of `k` values versus one
/// preparation per `k` — the batching win for dashboards that show several
/// prefix sizes of the same ranking.
fn sweep_amortization(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_prep/k_sweep");
    group.sample_size(10);
    let pipeline = AnalysisPipeline::new();
    let ks = [5usize, 10, 20, 50];
    let table = Arc::new(cs_table_with_rows(10_000));
    let config = Arc::new(cs_label_config());
    group.bench_function("generate_sweep", |b| {
        b.iter(|| {
            pipeline
                .generate_sweep(
                    black_box(Arc::clone(&table)),
                    black_box(Arc::clone(&config)),
                    black_box(&ks),
                )
                .expect("sweep")
        });
    });
    group.bench_function("independent_generates", |b| {
        b.iter(|| {
            let labels: Vec<_> = ks
                .iter()
                .map(|&k| {
                    pipeline
                        .generate(
                            black_box(Arc::clone(&table)),
                            Arc::new(rf_core::LabelConfig::clone(&config).with_top_k(k)),
                        )
                        .expect("label")
                })
                .collect();
            black_box(labels.len())
        });
    });
    group.finish();
}

criterion_group!(benches, preparation_schedules, sweep_amortization);
criterion_main!(benches);
