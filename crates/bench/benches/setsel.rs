//! Cost of constrained set selection (EDBT 2018 substrate): the offline
//! optimum and both online strategies as the candidate pool grows, plus the
//! full random-arrival evaluation loop used in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_setsel::{
    expected_utility_ratio, offline_select, Candidate, ConstraintSet, GroupConstraint,
    OnlineSelector, OnlineStrategy,
};
use std::hint::black_box;

/// Synthetic candidate pool over three categories with distinct utility
/// ranges, so floors and ceilings both bind.
fn pool(n: usize) -> Vec<Candidate> {
    (0..n)
        .map(|i| {
            let (category, base) = match i % 3 {
                0 => ("alpha", 100.0),
                1 => ("beta", 60.0),
                _ => ("gamma", 30.0),
            };
            let utility = base - (i as f64 * 0.37) % 25.0;
            Candidate::new(i, utility, category).unwrap()
        })
        .collect()
}

fn constraints(k: usize) -> ConstraintSet {
    ConstraintSet::new(
        k,
        vec![
            GroupConstraint::at_least("gamma", k / 5).unwrap(),
            GroupConstraint::at_most("alpha", k / 2).unwrap(),
        ],
    )
    .unwrap()
}

fn offline_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("setsel/offline");
    for &n in &[1_000usize, 10_000, 100_000] {
        let candidates = pool(n);
        let constraints = constraints(50);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(offline_select(&candidates, &constraints).unwrap()));
        });
    }
    group.finish();
}

fn online_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("setsel/online");
    for &n in &[1_000usize, 10_000, 100_000] {
        let candidates = pool(n);
        let constraints = constraints(50);
        for (name, strategy) in [
            ("greedy", OnlineStrategy::Greedy),
            ("secretary", OnlineStrategy::secretary()),
        ] {
            let selector = OnlineSelector::new(constraints.clone(), strategy).unwrap();
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| black_box(selector.run_shuffled(&candidates, 42).unwrap()));
            });
        }
    }
    group.finish();
}

fn random_order_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("setsel/expected_ratio");
    let candidates = pool(5_000);
    let constraints = constraints(50);
    let selector = OnlineSelector::new(constraints, OnlineStrategy::secretary()).unwrap();
    for &runs in &[10usize, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(runs), &runs, |b, &runs| {
            b.iter(|| black_box(expected_utility_ratio(&candidates, &selector, runs, 1).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    offline_scaling,
    online_strategies,
    random_order_evaluation
);
criterion_main!(benches);
