//! Cost of scoring, ranking and rank-correlation as the dataset grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_bench::{cs_scoring, cs_table_with_rows};
use rf_ranking::{kendall_tau_rankings, Ranking};
use std::hint::black_box;

fn scoring_and_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking/score_and_rank");
    for &rows in &[100usize, 1_000, 10_000, 100_000] {
        let table = cs_table_with_rows(rows);
        let scoring = cs_scoring();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(scoring.rank_table(&table).unwrap()));
        });
    }
    group.finish();
}

fn kendall_tau_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking/kendall_tau");
    group.sample_size(20);
    for &n in &[100usize, 1_000, 5_000] {
        let a = Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap();
        let mut order: Vec<usize> = (0..n).collect();
        order.reverse();
        let b_ranking = Ranking::from_order(&order).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(kendall_tau_rankings(&a, &b_ranking).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, scoring_and_ranking, kendall_tau_cost);
criterion_main!(benches);
