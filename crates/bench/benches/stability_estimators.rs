//! Ablation: the slope heuristic of Figure 2 vs. the Monte-Carlo stability
//! estimator ("a model of uncertainty in the data").
//!
//! The slope estimator is orders of magnitude cheaper; the Monte-Carlo
//! estimator answers the question directly (expected rank correlation under
//! noise) at the cost of re-ranking the dataset per trial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_bench::{cs_scoring, cs_table_with_rows};
use rf_stability::{MonteCarloStability, SlopeStability};
use std::hint::black_box;

fn slope_vs_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/stability_estimators");
    group.sample_size(10);
    for &rows in &[100usize, 1_000] {
        let table = cs_table_with_rows(rows);
        let scoring = cs_scoring();
        let ranking = scoring.rank_table(&table).unwrap();

        group.bench_with_input(BenchmarkId::new("slope", rows), &rows, |b, _| {
            b.iter(|| black_box(SlopeStability::evaluate(&ranking, 10).unwrap()));
        });

        for &trials in &[20usize, 100] {
            let estimator = MonteCarloStability::new()
                .with_trials(trials)
                .unwrap()
                .with_noise(0.05, 0.05)
                .unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("monte_carlo_{trials}_trials"), rows),
                &rows,
                |b, _| {
                    b.iter(|| black_box(estimator.evaluate(&table, &scoring, &ranking).unwrap()));
                },
            );
        }

        // Log the verdict agreement so the ablation's qualitative outcome is
        // visible alongside the timings.
        let slope = SlopeStability::evaluate(&ranking, 10).unwrap();
        let mc = MonteCarloStability::new()
            .with_trials(50)
            .unwrap()
            .evaluate(&table, &scoring, &ranking)
            .unwrap();
        println!(
            "[ablation] rows={rows}: slope verdict {:?} (score {:.3}) vs Monte-Carlo verdict {:?} (E[tau] {:.3})",
            slope.verdict(),
            slope.stability_score(),
            mc.verdict,
            mc.expected_kendall_tau
        );
    }
    group.finish();
}

criterion_group!(benches, slope_vs_monte_carlo);
criterion_main!(benches);
