//! Cost of the constructive FA*IR re-ranking as the ranking grows, compared
//! with the cost of merely diagnosing it — the overhead a vendor would pay to
//! ship a repaired ranking next to the label.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_fairness::{FairRerank, FairStarTest, ProtectedGroup};
use rf_ranking::Ranking;
use std::hint::black_box;

/// A segregated membership pattern: the protected group is concentrated in
/// the bottom third, so the re-ranker actually has work to do.
fn segregated_group(n: usize) -> (ProtectedGroup, Ranking) {
    let members: Vec<bool> = (0..n).map(|i| i >= 2 * n / 3).collect();
    let group = ProtectedGroup::from_membership("group", "protected", members).unwrap();
    let ranking = Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap();
    (group, ranking)
}

fn diagnose_vs_repair(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("rerank/diagnose_vs_repair");
    for &(n, k) in &[(1_000usize, 10usize), (10_000, 100), (100_000, 100)] {
        let (group, ranking) = segregated_group(n);
        let p = group.protected_proportion();
        bench_group.bench_with_input(
            BenchmarkId::new("diagnose", format!("n{n}_k{k}")),
            &(n, k),
            |b, _| {
                let test = FairStarTest::new(k, p).unwrap();
                b.iter(|| black_box(test.evaluate(&group, &ranking).unwrap()));
            },
        );
        bench_group.bench_with_input(
            BenchmarkId::new("repair", format!("n{n}_k{k}")),
            &(n, k),
            |b, _| {
                let reranker = FairRerank::new(k, p).unwrap();
                b.iter(|| black_box(reranker.rerank(&group, &ranking).unwrap()));
            },
        );
    }
    bench_group.finish();
}

fn repair_scaling_in_k(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("rerank/k_scaling");
    let n = 20_000usize;
    let (group, ranking) = segregated_group(n);
    let p = group.protected_proportion();
    for &k in &[10usize, 50, 100, 500] {
        bench_group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let reranker = FairRerank::new(k, p).unwrap();
            b.iter(|| black_box(reranker.rerank(&group, &ranking).unwrap()));
        });
    }
    bench_group.finish();
}

criterion_group!(benches, diagnose_vs_repair, repair_scaling_in_k);
criterion_main!(benches);
