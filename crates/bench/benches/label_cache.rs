//! Cost of the content-addressed label cache: what a warm hit saves over a
//! cold miss, and what the fingerprinting that makes it possible costs.
//!
//! The cold path prepares the analysis context and builds every widget; the
//! warm path fingerprints the request and clones two `Arc`s.  The gap between
//! the two is the whole point of the `LabelService`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_bench::{cs_label_config, cs_table_with_rows};
use rf_core::{CacheKey, LabelService};
use std::hint::black_box;
use std::sync::Arc;

fn cache_hit_vs_miss(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_cache/hit_vs_miss");
    group.sample_size(15);
    for rows in [1_000usize, 10_000] {
        let table = Arc::new(cs_table_with_rows(rows));
        let config = Arc::new(cs_label_config());

        // Cold miss: an empty cache in front of full generation.  A fresh
        // service per iteration keeps every pass cold.
        group.bench_with_input(BenchmarkId::new("cold_miss", rows), &rows, |b, _| {
            b.iter(|| {
                let service = LabelService::new();
                let cached = service
                    .label(black_box(&table), black_box(&config))
                    .expect("label");
                black_box(cached.json.len())
            });
        });

        // Warm hit: the same request answered from the shared cache.
        let service = LabelService::new();
        service.label(&table, &config).expect("warm-up");
        group.bench_with_input(BenchmarkId::new("warm_hit", rows), &rows, |b, _| {
            b.iter(|| {
                let cached = service
                    .label(black_box(&table), black_box(&config))
                    .expect("label");
                black_box(cached.json.len())
            });
        });
    }
    group.finish();
}

/// The fixed cost every lookup pays: fingerprinting the table and config
/// into a [`CacheKey`].  Linear in the table size, far below generation.
fn cache_key_fingerprinting(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_cache/fingerprint");
    group.sample_size(25);
    let config = cs_label_config();
    for rows in [1_000usize, 10_000, 100_000] {
        let table = cs_table_with_rows(rows);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(CacheKey::new(black_box(&table), black_box(&config))));
        });
    }
    group.finish();
}

criterion_group!(benches, cache_hit_vs_miss, cache_key_fingerprinting);
criterion_main!(benches);
