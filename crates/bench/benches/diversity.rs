//! Cost of the diversity report (category proportions + indices) as the
//! dataset and the category cardinality grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_diversity::DiversityReport;
use rf_ranking::Ranking;
use rf_table::{Column, Table};
use std::hint::black_box;

fn table_with_categories(rows: usize, categories: usize) -> (Table, Ranking) {
    let labels: Vec<String> = (0..rows)
        .map(|i| format!("cat{}", i % categories))
        .collect();
    let scores: Vec<f64> = (0..rows).map(|i| (rows - i) as f64).collect();
    let table = Table::from_columns(vec![
        ("category", Column::from_strings(labels)),
        ("score", Column::from_f64(scores.clone())),
    ])
    .unwrap();
    let ranking = Ranking::from_scores(&scores).unwrap();
    (table, ranking)
}

fn diversity_scaling_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("diversity/rows");
    for &rows in &[1_000usize, 10_000, 100_000] {
        let (table, ranking) = table_with_categories(rows, 5);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| {
                black_box(DiversityReport::evaluate(&table, &ranking, "category", 10).unwrap())
            });
        });
    }
    group.finish();
}

fn diversity_scaling_categories(c: &mut Criterion) {
    let mut group = c.benchmark_group("diversity/categories");
    for &categories in &[2usize, 10, 100, 1_000] {
        let (table, ranking) = table_with_categories(20_000, categories);
        group.bench_with_input(
            BenchmarkId::from_parameter(categories),
            &categories,
            |b, _| {
                b.iter(|| {
                    black_box(DiversityReport::evaluate(&table, &ranking, "category", 100).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    diversity_scaling_rows,
    diversity_scaling_categories
);
criterion_main!(benches);
