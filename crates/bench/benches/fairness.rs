//! Cost of the three fairness measures (FA*IR, Pairwise, Proportion) and of
//! the discounted measures as n and k grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_fairness::{DiscountedMeasures, FairStarTest, PairwiseTest, ProportionTest, ProtectedGroup};
use rf_ranking::Ranking;
use std::hint::black_box;

/// Membership vector with a mild skew (protected items pushed slightly down).
fn membership(n: usize) -> Vec<bool> {
    (0..n).map(|i| (i * 7 + i / 3) % 3 == 0).collect()
}

fn group_and_ranking(n: usize) -> (ProtectedGroup, Ranking) {
    let members = membership(n);
    let group = ProtectedGroup::from_membership("group", "protected", members).unwrap();
    let ranking = Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap();
    (group, ranking)
}

fn fair_star_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairness/fair_star");
    for &(n, k) in &[(1_000usize, 10usize), (10_000, 100), (100_000, 100)] {
        let (pg, ranking) = group_and_ranking(n);
        let p = pg.protected_proportion();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(n, k),
            |b, _| {
                let test = FairStarTest::new(k, p).unwrap();
                b.iter(|| black_box(test.evaluate(&pg, &ranking).unwrap()));
            },
        );
    }
    group.finish();
}

fn pairwise_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairness/pairwise");
    for &n in &[1_000usize, 10_000, 100_000] {
        let (pg, ranking) = group_and_ranking(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let test = PairwiseTest::new();
            b.iter(|| black_box(test.evaluate(&pg, &ranking).unwrap()));
        });
    }
    group.finish();
}

fn proportion_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairness/proportion");
    for &n in &[1_000usize, 10_000, 100_000] {
        let (pg, ranking) = group_and_ranking(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let test = ProportionTest::new(100).unwrap();
            b.iter(|| black_box(test.evaluate(&pg, &ranking).unwrap()));
        });
    }
    group.finish();
}

fn discounted_measures_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairness/discounted_rnd_rkl_rrd");
    for &n in &[1_000usize, 10_000] {
        let (pg, ranking) = group_and_ranking(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(DiscountedMeasures::evaluate(&pg, &ranking).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fair_star_scaling,
    pairwise_scaling,
    proportion_scaling,
    discounted_measures_scaling
);
criterion_main!(benches);
