//! Cost of the table substrate: CSV parsing, sorting and column statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rf_bench::cs_table_with_rows;
use rf_table::{column_summary, read_csv_str, write_csv_string, CsvOptions};
use std::hint::black_box;

fn csv_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("table/csv");
    for &rows in &[1_000usize, 10_000, 100_000] {
        let table = cs_table_with_rows(rows);
        let csv = write_csv_string(&table);
        group.throughput(Throughput::Bytes(csv.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse", rows), &rows, |b, _| {
            b.iter(|| black_box(read_csv_str(&csv, &CsvOptions::default()).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("write", rows), &rows, |b, _| {
            b.iter(|| black_box(write_csv_string(&table)));
        });
    }
    group.finish();
}

fn sorting_and_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("table/sort_and_stats");
    for &rows in &[1_000usize, 10_000, 100_000] {
        let table = cs_table_with_rows(rows);
        group.bench_with_input(BenchmarkId::new("sort_by_pubcount", rows), &rows, |b, _| {
            b.iter(|| black_box(table.sort_by("PubCount", true).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("column_summary", rows), &rows, |b, _| {
            b.iter(|| black_box(column_summary(&table, "PubCount").unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, csv_roundtrip, sorting_and_stats);
criterion_main!(benches);
