//! Ablation: the pairwise measure's null distribution — normal approximation
//! versus Monte-Carlo permutation — one of the design choices called out in
//! DESIGN.md §5.  The approximation is what the interactive label uses; the
//! permutation null is the reference it is validated against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_fairness::{PairwiseTest, ProtectedGroup};
use rf_ranking::Ranking;
use std::hint::black_box;

fn group_and_ranking(n: usize) -> (ProtectedGroup, Ranking) {
    let members: Vec<bool> = (0..n).map(|i| (i * 5 + 2) % 7 < 2).collect();
    let group = ProtectedGroup::from_membership("group", "protected", members).unwrap();
    let ranking = Ranking::from_order(&(0..n).collect::<Vec<_>>()).unwrap();
    (group, ranking)
}

fn normal_vs_permutation(c: &mut Criterion) {
    let mut bench_group = c.benchmark_group("pairwise_null/normal_vs_permutation");
    for &n in &[500usize, 2_000, 10_000] {
        let (group, ranking) = group_and_ranking(n);
        bench_group.bench_with_input(BenchmarkId::new("normal", n), &n, |b, _| {
            let test = PairwiseTest::new();
            b.iter(|| black_box(test.evaluate(&group, &ranking).unwrap()));
        });
        for &resamples in &[100usize, 1_000] {
            bench_group.bench_with_input(
                BenchmarkId::new(format!("permutation_{resamples}"), n),
                &n,
                |b, _| {
                    let test = PairwiseTest::new().with_permutation_null(resamples, 42);
                    b.iter(|| black_box(test.evaluate(&group, &ranking).unwrap()));
                },
            );
        }
    }
    bench_group.finish();
}

criterion_group!(benches, normal_vs_permutation);
criterion_main!(benches);
