//! Cost of the stability estimators (slope fit and per-attribute analysis) as
//! the ranking grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_bench::{cs_scoring, cs_table_with_rows};
use rf_stability::{attribute_stability, SlopeStability};
use std::hint::black_box;

fn slope_stability_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("stability/slope");
    for &rows in &[100usize, 1_000, 10_000, 100_000] {
        let table = cs_table_with_rows(rows);
        let scoring = cs_scoring();
        let ranking = scoring.rank_table(&table).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(SlopeStability::evaluate(&ranking, 10).unwrap()));
        });
    }
    group.finish();
}

fn attribute_stability_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("stability/per_attribute");
    group.sample_size(30);
    for &rows in &[100usize, 1_000, 10_000] {
        let table = cs_table_with_rows(rows);
        let scoring = cs_scoring();
        let ranking = scoring.rank_table(&table).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(attribute_stability(&table, &scoring, &ranking).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    slope_stability_scaling,
    attribute_stability_scaling
);
criterion_main!(benches);
