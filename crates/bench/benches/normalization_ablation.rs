//! Ablation: the normalization policy of the scoring function (Figure 3's
//! "normalize and standardize" checkbox).
//!
//! Measures both the cost of scoring under each policy and — reported through
//! the bench output — how much the induced ranking differs from the min-max
//! default (Kendall tau).  Run with `--nocapture`-style verbosity via the
//! usual Criterion output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_bench::cs_table_with_rows;
use rf_ranking::{kendall_tau_rankings, AttributeWeight, ScoringFunction};
use rf_table::NormalizationMethod;
use std::hint::black_box;

fn scoring_under_each_normalization(c: &mut Criterion) {
    let table = cs_table_with_rows(10_000);
    let weights = vec![
        AttributeWeight::new("PubCount", 0.4),
        AttributeWeight::new("Faculty", 0.4),
        AttributeWeight::new("GRE", 0.2),
    ];

    // Report the ranking disagreement against the min-max default once, so the
    // ablation's qualitative effect is visible in the bench log.
    let baseline =
        ScoringFunction::with_normalization(weights.clone(), NormalizationMethod::MinMax)
            .unwrap()
            .rank_table(&table)
            .unwrap();
    for method in [NormalizationMethod::None, NormalizationMethod::ZScore] {
        let ranking = ScoringFunction::with_normalization(weights.clone(), method)
            .unwrap()
            .rank_table(&table)
            .unwrap();
        let tau = kendall_tau_rankings(&baseline, &ranking).unwrap();
        println!(
            "[ablation] ranking agreement (Kendall tau) of {:?} vs MinMax: {tau:.3}",
            method
        );
    }

    let mut group = c.benchmark_group("ablation/normalization");
    for method in [
        NormalizationMethod::None,
        NormalizationMethod::MinMax,
        NormalizationMethod::ZScore,
    ] {
        let scoring = ScoringFunction::with_normalization(weights.clone(), method).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{method:?}")),
            &method,
            |b, _| {
                b.iter(|| black_box(scoring.rank_table(&table).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, scoring_under_each_normalization);
criterion_main!(benches);
