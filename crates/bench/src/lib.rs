//! Shared harness helpers for the benchmark suite and the figure/scenario
//! regeneration binaries.
//!
//! The paper's evaluation artifacts are Figures 1–3 and the three
//! demonstration scenarios of §3 (see DESIGN.md §4 and EXPERIMENTS.md); the
//! binaries under `src/bin/` regenerate each of them, and the Criterion
//! benches under `benches/` characterize the cost of every measure as the
//! dataset and prefix sizes grow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exposition;

use rf_core::{AnalysisPipeline, LabelConfig, NutritionalLabel};
use rf_datasets::{CompasConfig, CsDepartmentsConfig, GermanCreditConfig, SynthScenarioConfig};
use rf_ranking::ScoringFunction;
use rf_table::Table;
use std::sync::Arc;

/// The paper's CS-departments scoring function:
/// 0.4·PubCount + 0.4·Faculty + 0.2·GRE over min-max-normalized attributes.
#[must_use]
pub fn cs_scoring() -> ScoringFunction {
    ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
        .expect("valid CS scoring function")
}

/// The default label configuration for the CS departments scenario
/// (Figure 1): top-10, both DeptSizeBin values audited, diversity over
/// DeptSizeBin and Region.
#[must_use]
pub fn cs_label_config() -> LabelConfig {
    LabelConfig::new(cs_scoring())
        .with_top_k(10)
        .with_ingredient_count(2)
        .with_dataset_name("CS departments (synthetic CSR + NRC)")
        .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
        .with_diversity_attribute("DeptSizeBin")
        .with_diversity_attribute("Region")
}

/// Generates the CS departments dataset at the paper's scale (97 rows, seed 42).
#[must_use]
pub fn cs_table() -> Table {
    CsDepartmentsConfig::default()
        .generate()
        .expect("CS departments generator")
}

/// Generates a CS-departments-shaped dataset with `rows` rows (for scaling
/// benchmarks).
#[must_use]
pub fn cs_table_with_rows(rows: usize) -> Table {
    CsDepartmentsConfig::with_rows(rows)
        .generate()
        .expect("CS departments generator")
}

/// The COMPAS scenario: dataset (full ProPublica size by default) and config.
#[must_use]
pub fn compas_scenario(rows: usize) -> (Table, LabelConfig) {
    let table = CompasConfig::with_rows(rows)
        .generate()
        .expect("COMPAS generator");
    let scoring = ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)])
        .expect("valid scoring");
    let config = LabelConfig::new(scoring)
        .with_top_k(100.min(rows))
        .with_dataset_name("COMPAS recidivism (synthetic)")
        .with_sensitive_attribute("race", ["African-American"])
        .with_sensitive_attribute("sex", ["Female"])
        .with_diversity_attribute("race")
        .with_diversity_attribute("age_cat");
    (table, config)
}

/// The German credit scenario: dataset (1,000 rows by default) and config.
#[must_use]
pub fn german_credit_scenario(rows: usize) -> (Table, LabelConfig) {
    let table = GermanCreditConfig::with_rows(rows)
        .generate()
        .expect("German credit generator");
    let scoring = ScoringFunction::from_pairs([
        ("credit_score", 0.7),
        ("employment_years", 0.2),
        ("credit_amount", -0.1),
    ])
    .expect("valid scoring");
    let config = LabelConfig::new(scoring)
        .with_top_k(100.min(rows))
        .with_dataset_name("German credit (synthetic)")
        .with_sensitive_attribute("sex", ["female"])
        .with_sensitive_attribute("age_group", ["young"])
        .with_diversity_attribute("housing")
        .with_diversity_attribute("checking_status");
    (table, config)
}

/// The large-scale synthetic scenario: a dense `rows`-row table from
/// [`SynthScenarioConfig`] plus the catalogue's default label configuration
/// for it (score_0/score_1/score_2 at 0.5/0.3/0.2, top-100, fairness and
/// diversity over `group`).  Dense (missingness 0) so the Monte-Carlo
/// weight-jitter path labels it under the default missing-value policy, and
/// two groups so the binary fairness widget accepts the attribute.
#[must_use]
pub fn synth_scenario(rows: usize) -> (Table, LabelConfig) {
    let table = SynthScenarioConfig::with_rows(rows)
        .with_missingness(0.0)
        .with_group_count(2)
        .generate()
        .expect("synthetic scenario generator");
    let scoring =
        ScoringFunction::from_pairs([("score_0", 0.5), ("score_1", 0.3), ("score_2", 0.2)])
            .expect("valid scoring");
    let config = LabelConfig::new(scoring)
        .with_top_k(100.min(rows))
        .with_dataset_name(format!("Synthetic scenario ({rows} rows)"))
        .with_sensitive_attribute("group", ["g1"])
        .with_diversity_attribute("group");
    (table, config)
}

/// Generates the CS departments label (the Figure 1 artifact) through the
/// parallel analysis pipeline.
#[must_use]
pub fn cs_label() -> NutritionalLabel {
    AnalysisPipeline::new()
        .generate(Arc::new(cs_table()), Arc::new(cs_label_config()))
        .expect("CS label")
}

/// Prints a labelled separator used by the regeneration binaries.
pub fn print_banner(title: &str) {
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs_scenario_helpers_agree() {
        let table = cs_table();
        let config = cs_label_config();
        assert!(config.validate(&table).is_ok());
        let label = cs_label();
        assert_eq!(label.ranking.len(), table.num_rows());
    }

    #[test]
    fn other_scenarios_validate() {
        let (table, config) = compas_scenario(500);
        assert!(config.validate(&table).is_ok());
        let (table, config) = german_credit_scenario(300);
        assert!(config.validate(&table).is_ok());
        let (table, config) = synth_scenario(400);
        assert_eq!(table.num_rows(), 400);
        assert!(config.validate(&table).is_ok());
    }

    #[test]
    fn scaled_cs_tables_have_requested_rows() {
        assert_eq!(cs_table_with_rows(250).num_rows(), 250);
    }
}
