//! Open-loop load generator for the sharded label server.
//!
//! Drives an in-process server at a *target* request rate — arrivals follow
//! a Poisson process (exponential inter-arrival times), scheduled ahead of
//! time and independent of completions, so a slow server cannot silently
//! slow the offered load the way a closed-loop client would.  Latency is
//! measured from each request's *scheduled* arrival, so coordination delay
//! (a backlogged client picking the job up late) counts against the server.
//!
//! Three request mixes exercise the three label-serving regimes:
//!
//! - `warm` — one cacheable label path; after warmup every request is a
//!   cache hit and the run measures the I/O plane itself.
//! - `cold` — a unique `mc_seed` per request defeats the cache; every
//!   request pays full label generation.
//! - `deadline` — cold German-credit labels under a 1 ms Monte-Carlo
//!   budget; generation is deadline-truncated (verified against the
//!   `/stats` truncation counter).
//!
//! Each (reactor-shard-count × mix) run reports achieved RPS, latency
//! percentiles, shed (503) rate, and the server's own rolled-up reactor
//! counters.  Results land in `BENCH_server.json` at the repo root.
//!
//! ```sh
//! cargo run --release -p rf-bench --bin load_gen            # full sweep
//! cargo run --release -p rf-bench --bin load_gen -- --smoke # 2 s CI smoke
//! ```

use rand::distributions::{Distribution, Exp};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rf_bench::exposition::{
    check_counters_monotonic, check_slow_debug, parse_metrics, stage_summaries, MetricsSnapshot,
    StageSummary,
};
use rf_server::{DatasetCatalog, Server, ServerConfig};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const WARM_PATH: &str = "/datasets/cs-departments/label.json?k=5";

/// One request mix: how the path for request `seq` is built.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mix {
    Warm,
    Cold,
    Deadline,
    /// Cold labels on a registered 10⁵-row synthetic scenario with a small
    /// trial count — the data plane at scale, kept CI-cheap.
    SynthCold,
}

/// Rows of the synthetic scenario the `SynthCold` mix labels.
const SYNTH_ROWS: usize = 100_000;

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Warm => "warm",
            Mix::Cold => "cold",
            Mix::Deadline => "deadline_truncated",
            Mix::SynthCold => "synth_100k_cold",
        }
    }

    fn path(self, seq: u64) -> String {
        match self {
            Mix::Warm => WARM_PATH.to_string(),
            // A unique seed defeats the label cache: every request is a
            // full cold generation.
            Mix::Cold => format!("/datasets/cs-departments/label.json?k=5&mc_seed={seq}"),
            // Cold *and* deadline-starved: the Monte-Carlo run truncates
            // after its first wave.
            Mix::Deadline => {
                format!("/datasets/german-credit/label.json?trials=256&deadline_ms=1&mc_seed={seq}")
            }
            // Each request re-labels the 10⁵-row synthetic scenario with a
            // handful of Monte-Carlo trials — million-value noise, scoring,
            // and argsort per trial, without a CI-hostile runtime.
            Mix::SynthCold => {
                format!("/datasets/synth-100k/label.json?trials=4&mc_seed={seq}")
            }
        }
    }
}

/// Target-rate settings for one sweep.
#[derive(Clone)]
struct Profile {
    smoke: bool,
    duration: Duration,
    connections: usize,
    warm_rps: f64,
    cold_rps: f64,
    deadline_rps: f64,
    synth_rps: f64,
    reactor_counts: Vec<usize>,
    mixes: Vec<Mix>,
}

impl Profile {
    fn full() -> Self {
        Profile {
            smoke: false,
            duration: Duration::from_secs(6),
            connections: 32,
            // Above single-shard capacity on purpose: an open-loop target
            // the server cannot sustain turns achieved RPS into a
            // saturation-throughput measurement.
            warm_rps: 25_000.0,
            cold_rps: 20.0,
            deadline_rps: 10.0,
            synth_rps: 4.0,
            reactor_counts: vec![1, 2, 4],
            mixes: vec![Mix::Warm, Mix::Cold, Mix::Deadline, Mix::SynthCold],
        }
    }

    /// The CI smoke profile: low RPS, 2 s, 1 vs 2 shards, the warm mix plus
    /// one pass of cold labels over the 10⁵-row synthetic scenario.
    fn smoke() -> Self {
        Profile {
            smoke: true,
            duration: Duration::from_secs(2),
            connections: 4,
            warm_rps: 20.0,
            cold_rps: 5.0,
            deadline_rps: 5.0,
            synth_rps: 2.0,
            reactor_counts: vec![1, 2],
            mixes: vec![Mix::Warm, Mix::SynthCold],
        }
    }

    fn rps_for(&self, mix: Mix) -> f64 {
        match mix {
            Mix::Warm => self.warm_rps,
            Mix::Cold => self.cold_rps,
            Mix::Deadline => self.deadline_rps,
            Mix::SynthCold => self.synth_rps,
        }
    }
}

/// One scheduled arrival, handed from the generator to a client.
struct Job {
    due: Instant,
    seq: u64,
}

/// One completed request, as the client measured it.
struct Sample {
    latency: Duration,
    status: u16,
}

struct RunOutcome {
    samples: Vec<Sample>,
    errors: u64,
    retries: u64,
    gave_up: u64,
    elapsed: Duration,
    mc_truncated_delta: u64,
    network: Option<serde_json::Value>,
    server_stages: Vec<StageSummary>,
    per_shard_requests: Vec<(String, u64)>,
    shard_skew: Option<f64>,
}

#[derive(serde::Serialize)]
struct LatencySummary {
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    mean_ms: f64,
}

#[derive(serde::Serialize)]
struct RunReport {
    reactors: usize,
    workers: usize,
    mix: String,
    target_rps: f64,
    duration_secs: f64,
    requests: u64,
    achieved_rps: f64,
    ok: u64,
    shed_503: u64,
    shed_rate: f64,
    /// Shed retries spent across the run (a request that eventually landed
    /// after N backoffs contributes N).
    retries: u64,
    /// Requests still shed after exhausting [`MAX_SHED_RETRIES`] backoffs.
    gave_up: u64,
    client_errors: u64,
    mc_truncated_runs: u64,
    latency: Option<LatencySummary>,
    server_network_totals: Option<serde_json::Value>,
    /// The server's own `/metrics` stage histograms at the end of the run:
    /// p50/p99/mean per pipeline stage, per shard and aggregated.
    server_stages: Vec<StageSummary>,
    /// Requests parsed per reactor shard (from the `parse` stage counts).
    per_shard_requests: Vec<(String, u64)>,
    /// Max-over-mean ratio of per-shard request counts (1.0 = perfectly
    /// balanced accept sharding).
    shard_skew: Option<f64>,
}

/// Warm-mix p99 with tracing at the default slow threshold (traces are
/// rare) versus `--slow-threshold-ms 0` (every request builds and publishes
/// a full trace) — the cost of the observability plane at its loudest.
#[derive(serde::Serialize)]
struct InstrumentationOverhead {
    baseline_warm_p99_ms: f64,
    trace_all_warm_p99_ms: f64,
    p99_ratio: f64,
}

/// One side of the restart-warm comparison: a server filled, shut down,
/// and restarted, with its first post-restart requests timed.
#[derive(serde::Serialize)]
struct RestartSide {
    disk_tier: bool,
    /// Round-trip of the very first request the restarted process serves.
    first_request_after_restart_ms: f64,
    /// p99 over the first post-restart request burst (first one included).
    post_restart_p99_ms: f64,
    /// Disk-tier hits the restarted server reported (0 without the tier).
    disk_hits_after_restart: u64,
    /// Pipeline preparations the first post-restart request cost (0 when
    /// the disk tier answered it).
    preparations_for_first_request: u64,
}

/// The `restart_warm` mix: cold-start latency of a restarted server with a
/// warm on-disk cache tier versus memory-only.
#[derive(serde::Serialize)]
struct RestartWarmReport {
    with_disk_tier: RestartSide,
    memory_only: RestartSide,
}

#[derive(serde::Serialize)]
struct BenchReport {
    benchmark: String,
    smoke: bool,
    host_parallelism: usize,
    note: String,
    warm_rps_by_reactors: Vec<(usize, f64)>,
    warm_scaling_vs_one_shard: Vec<(usize, f64)>,
    instrumentation_overhead: Option<InstrumentationOverhead>,
    restart_warm: Option<RestartWarmReport>,
    runs: Vec<RunReport>,
}

fn connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// One request/response exchange on a keep-alive connection; reconnects
/// once if the stream has gone away (idle timeout, server-side close).
/// Returns the status code plus whether the response carried a
/// `Retry-After` header (the shed hint the backoff policy honours).
fn exchange(
    stream: &mut Option<TcpStream>,
    addr: SocketAddr,
    path: &str,
) -> std::io::Result<(u16, bool)> {
    for attempt in 0..2 {
        if stream.is_none() {
            *stream = Some(connect(addr)?);
        }
        let conn = stream.as_mut().expect("connection");
        let request =
            format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n");
        let result = conn
            .write_all(request.as_bytes())
            .and_then(|()| rf_net::read_one_response(conn));
        match result {
            Ok(response) => {
                let status = response
                    .head
                    .split(' ')
                    .nth(1)
                    .and_then(|code| code.parse().ok())
                    .unwrap_or(0);
                let retry_after = response
                    .head
                    .lines()
                    .any(|line| line.to_ascii_lowercase().starts_with("retry-after:"));
                return Ok((status, retry_after));
            }
            Err(err) if attempt == 0 => {
                // Stale keep-alive connection: drop it and retry fresh.
                *stream = None;
                let _ = err;
            }
            Err(err) => return Err(err),
        }
    }
    unreachable!("loop returns on the second attempt")
}

/// Most shed retries a client spends on one request before giving up.
const MAX_SHED_RETRIES: u32 = 3;

/// An exchange that honours `503 + Retry-After` sheds with a capped
/// exponential backoff (4/8/16 ms, +0–7 ms of deterministic per-request
/// jitter so retries from concurrent clients do not re-arrive in lockstep).
/// The server's literal `Retry-After` hint is whole seconds — honouring its
/// *presence* but substituting a bench-scaled backoff keeps the open-loop
/// schedule meaningful.  Returns `(status, retries, gave_up)`.
fn exchange_with_retry(
    stream: &mut Option<TcpStream>,
    addr: SocketAddr,
    path: &str,
    seq: u64,
) -> std::io::Result<(u16, u32, bool)> {
    let mut retries = 0u32;
    loop {
        let (status, retry_after) = exchange(stream, addr, path)?;
        if status != 503 || !retry_after {
            return Ok((status, retries, false));
        }
        if retries >= MAX_SHED_RETRIES {
            return Ok((status, retries, true));
        }
        let base = 4u64 << retries;
        let jitter = seq
            .wrapping_add(u64::from(retries))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            >> 61;
        std::thread::sleep(Duration::from_millis((base + jitter).min(50)));
        retries += 1;
    }
}

/// One GET over a fresh connection; returns the body on a 200.
fn scrape_body(addr: SocketAddr, path: &str) -> Option<String> {
    let mut stream = connect(addr).ok()?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).ok()?;
    let response = rf_net::read_one_response(&mut stream).ok()?;
    if !response.head.starts_with("HTTP/1.1 200") {
        return None;
    }
    Some(response.body_text())
}

/// Reads the service counters over the wire.
fn scrape_stats(addr: SocketAddr) -> Option<serde_json::Value> {
    serde_json::from_str(&scrape_body(addr, "/stats")?).ok()
}

/// Scrapes `/metrics` and fails the run if the exposition is malformed —
/// this is the CI gate for the observability plane.
fn scrape_metrics(addr: SocketAddr) -> MetricsSnapshot {
    let body = scrape_body(addr, "/metrics").expect("scrape /metrics");
    parse_metrics(&body).expect("/metrics must be valid Prometheus text exposition")
}

fn mc_truncated(stats: Option<&serde_json::Value>) -> u64 {
    stats
        .and_then(|value| value.get("monte_carlo"))
        .and_then(|mc| mc.get("truncated"))
        .and_then(serde_json::Value::as_u64)
        .unwrap_or(0)
}

/// Runs one open-loop measurement against a freshly started server.
///
/// `trace_all` drops the slow-trace threshold to zero so every request
/// publishes a full span trace — the worst-case instrumentation load, used
/// for the overhead comparison.
fn run_once(
    profile: &Profile,
    reactors: usize,
    workers: usize,
    mix: Mix,
    trace_all: bool,
) -> RunOutcome {
    let config = ServerConfig {
        bind_address: "127.0.0.1:0".to_string(),
        workers,
        reactors,
        slow_threshold_ms: if trace_all {
            0
        } else {
            ServerConfig::default().slow_threshold_ms
        },
        ..ServerConfig::default()
    };
    let catalog = DatasetCatalog::with_demo_datasets();
    if mix == Mix::SynthCold {
        let slug = catalog.register_synth_scenario(SYNTH_ROWS);
        assert_eq!(slug, "synth-100k", "the mix path names this slug");
    }
    let server = Server::bind(catalog, &config).expect("bind server");
    let addr = server.local_addr().expect("server address");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Warm the cache so the warm mix measures serving, not generation.
    if mix == Mix::Warm {
        let mut warmup = None;
        for _ in 0..2 {
            exchange(&mut warmup, addr, WARM_PATH).expect("warmup request");
        }
    }
    let truncated_before = mc_truncated(scrape_stats(addr).as_ref());
    let metrics_before = scrape_metrics(addr);

    // Generator: schedule Poisson arrivals ahead of completions.
    let (sender, receiver) = mpsc::channel::<Job>();
    let receiver = Arc::new(Mutex::new(receiver));
    let rps = profile.rps_for(mix);
    let duration = profile.duration;
    let generator = std::thread::spawn(move || {
        let exp = Exp::new(rps);
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_1AB5);
        let started = Instant::now();
        let mut offset = 0.0f64;
        let mut seq = 0u64;
        loop {
            offset += exp.sample(&mut rng);
            if offset >= duration.as_secs_f64() {
                break;
            }
            let due = started + Duration::from_secs_f64(offset);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            if sender.send(Job { due, seq }).is_err() {
                break;
            }
            seq += 1;
        }
    });

    // Clients: each owns one keep-alive connection and drains the shared
    // arrival queue.
    let started = Instant::now();
    let clients: Vec<_> = (0..profile.connections)
        .map(|_| {
            let receiver = Arc::clone(&receiver);
            std::thread::spawn(move || {
                let mut stream: Option<TcpStream> = None;
                let mut samples = Vec::new();
                let mut errors = 0u64;
                let mut retries = 0u64;
                let mut gave_up = 0u64;
                loop {
                    let job = {
                        let queue = receiver.lock().expect("arrival queue");
                        match queue.recv() {
                            Ok(job) => job,
                            Err(_) => break,
                        }
                    };
                    let path = mix.path(job.seq);
                    match exchange_with_retry(&mut stream, addr, &path, job.seq) {
                        Ok((status, request_retries, request_gave_up)) => {
                            retries += u64::from(request_retries);
                            gave_up += u64::from(request_gave_up);
                            // Latency from *scheduled* arrival, so backoff
                            // sleeps count against the shed request.
                            samples.push(Sample {
                                latency: job.due.elapsed(),
                                status,
                            });
                        }
                        Err(_) => errors += 1,
                    }
                }
                (samples, errors, retries, gave_up)
            })
        })
        .collect();

    generator.join().expect("generator thread");
    let mut samples = Vec::new();
    let mut errors = 0u64;
    let mut retries = 0u64;
    let mut gave_up = 0u64;
    for client in clients {
        let (client_samples, client_errors, client_retries, client_gave_up) =
            client.join().expect("client thread");
        samples.extend(client_samples);
        errors += client_errors;
        retries += client_retries;
        gave_up += client_gave_up;
    }
    let elapsed = started.elapsed();

    let stats = scrape_stats(addr);
    let mc_truncated_delta = mc_truncated(stats.as_ref()).saturating_sub(truncated_before);
    let network = stats
        .as_ref()
        .and_then(|value| value.get("network"))
        .and_then(|network| network.get("totals"))
        .cloned();

    // Server-side observability scrape: the exposition must parse, every
    // cumulative series must be monotone across the run, and /debug/slow
    // must serve well-formed traces.  Any violation fails the run (and CI).
    let metrics_after = scrape_metrics(addr);
    check_counters_monotonic(&metrics_before, &metrics_after)
        .expect("cumulative /metrics series must never decrease");
    let slow_body = scrape_body(addr, "/debug/slow").expect("scrape /debug/slow");
    check_slow_debug(&slow_body).expect("/debug/slow must serve well-formed traces");

    let server_stages = stage_summaries(&metrics_after);
    let per_shard_requests: Vec<(String, u64)> = server_stages
        .iter()
        .filter(|summary| {
            summary.stage == "parse" && summary.shard.chars().all(|ch| ch.is_ascii_digit())
        })
        .map(|summary| (summary.shard.clone(), summary.count))
        .collect();
    let shard_skew = (per_shard_requests.len() > 1).then(|| {
        let max = per_shard_requests
            .iter()
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0);
        let total: u64 = per_shard_requests.iter().map(|(_, n)| *n).sum();
        let mean = total as f64 / per_shard_requests.len() as f64;
        if mean > 0.0 {
            max as f64 / mean
        } else {
            0.0
        }
    });

    shutdown.store(true, Ordering::Relaxed);
    server_thread.join().expect("server thread");

    RunOutcome {
        samples,
        errors,
        retries,
        gave_up,
        elapsed,
        mc_truncated_delta,
        network,
        server_stages,
        per_shard_requests,
        shard_skew,
    }
}

/// One closed-loop warm measurement for the instrumentation-overhead pair:
/// a fresh one-shard server, a warmed cache, then `requests` sequential
/// exchanges on one keep-alive connection.  Returns the p99 round-trip in
/// milliseconds.
fn closed_loop_warm_p99(trace_all: bool, requests: usize) -> Option<f64> {
    let config = ServerConfig {
        bind_address: "127.0.0.1:0".to_string(),
        workers: 2,
        reactors: 1,
        slow_threshold_ms: if trace_all {
            0
        } else {
            ServerConfig::default().slow_threshold_ms
        },
        ..ServerConfig::default()
    };
    let server = Server::bind(DatasetCatalog::with_demo_datasets(), &config).expect("bind server");
    let addr = server.local_addr().expect("server address");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let mut stream = None;
    for _ in 0..50 {
        exchange(&mut stream, addr, WARM_PATH).ok()?;
    }
    let mut latencies_ms: Vec<f64> = (0..requests)
        .map(|_| {
            let started = Instant::now();
            exchange(&mut stream, addr, WARM_PATH).expect("warm request");
            started.elapsed().as_secs_f64() * 1_000.0
        })
        .collect();
    drop(stream);
    shutdown.store(true, Ordering::Relaxed);
    server_thread.join().expect("server thread");

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let index = ((latencies_ms.len() - 1) as f64 * 0.99).round() as usize;
    latencies_ms.get(index).copied()
}

/// Binds a one-shard server over an explicit label service (with or
/// without a disk tier) and runs it on a background thread.
fn bind_service_server(
    service: rf_core::LabelService,
) -> (
    SocketAddr,
    Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    let config = ServerConfig {
        bind_address: "127.0.0.1:0".to_string(),
        workers: 2,
        reactors: 1,
        ..ServerConfig::default()
    };
    let state = rf_server::AppState::with_service(DatasetCatalog::with_demo_datasets(), service);
    let server = Server::bind_state(state, &config).expect("bind server");
    let addr = server.local_addr().expect("server address");
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, shutdown, handle)
}

/// One side of the restart-warm measurement: fill a server's cache, shut it
/// down, restart over the same (or no) disk tier, and time the first
/// post-restart requests.  The `/metrics` scrape doubles as the CI gate for
/// the `rf_disk_*` families: with the tier attached they must be present and
/// monotone across the burst; without it they must be absent.
fn restart_warm_side(cache_dir: Option<&std::path::Path>) -> RestartSide {
    let open_store = |dir: &std::path::Path| {
        Arc::new(rf_store::DiskStore::open(dir, 64 * 1024 * 1024).expect("open disk store"))
    };
    let service_for = |dir: Option<&std::path::Path>| {
        let service = rf_core::LabelService::with_cache_policy(
            rf_core::AnalysisPipeline::new(),
            rf_core::service::DEFAULT_CACHE_CAPACITY,
            rf_core::service::DEFAULT_CACHE_BYTES,
            None,
        );
        match dir {
            Some(dir) => {
                let store = open_store(dir);
                (service.with_disk_tier(Arc::clone(&store)), Some(store))
            }
            None => (service, None),
        }
    };

    // Fill phase: serve the warm path once, make the fill durable, "crash".
    {
        let (service, store) = service_for(cache_dir);
        let (addr, shutdown, handle) = bind_service_server(service);
        let mut stream = None;
        for _ in 0..2 {
            exchange(&mut stream, addr, WARM_PATH).expect("fill request");
        }
        if let Some(store) = store {
            store.flush();
        }
        drop(stream);
        shutdown.store(true, Ordering::Relaxed);
        handle.join().expect("server thread");
    }

    // Restart phase: a fresh process-equivalent (new service, empty memory
    // tier) over the same directory.
    let (service, _store) = service_for(cache_dir);
    let (addr, shutdown, handle) = bind_service_server(service);
    let preparations_before = scrape_stats(addr)
        .and_then(|stats| {
            stats
                .get("preparations")
                .and_then(serde_json::Value::as_u64)
        })
        .unwrap_or(0);
    let metrics_before = scrape_metrics(addr);

    let mut stream = None;
    let mut latencies_ms = Vec::with_capacity(50);
    for _ in 0..50 {
        let started = Instant::now();
        let (status, _) = exchange(&mut stream, addr, WARM_PATH).expect("post-restart request");
        assert_eq!(status, 200, "post-restart warm request must succeed");
        latencies_ms.push(started.elapsed().as_secs_f64() * 1_000.0);
    }
    let first_request_after_restart_ms = latencies_ms[0];
    let stats = scrape_stats(addr).expect("scrape /stats");
    let preparations_for_first_request = stats
        .get("preparations")
        .and_then(serde_json::Value::as_u64)
        .unwrap_or(0)
        .saturating_sub(preparations_before);
    let disk_hits_after_restart = stats
        .get("disk")
        .and_then(|disk| disk.get("disk_hits"))
        .and_then(serde_json::Value::as_u64)
        .unwrap_or(0);

    let metrics_after = scrape_metrics(addr);
    check_counters_monotonic(&metrics_before, &metrics_after)
        .expect("cumulative /metrics series must never decrease across the restart burst");
    let has_disk_families = metrics_after
        .samples
        .keys()
        .any(|name| name.starts_with("rf_disk_"));
    assert_eq!(
        has_disk_families,
        cache_dir.is_some(),
        "rf_disk_* families must be exposed exactly when the tier is configured"
    );
    if cache_dir.is_some() {
        assert!(
            disk_hits_after_restart >= 1,
            "the restarted server's first warm request must be a disk hit"
        );
        assert_eq!(
            preparations_for_first_request, 0,
            "a disk-served restart must not re-run the pipeline"
        );
    }

    drop(stream);
    shutdown.store(true, Ordering::Relaxed);
    handle.join().expect("server thread");

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let index = ((latencies_ms.len() - 1) as f64 * 0.99).round() as usize;
    RestartSide {
        disk_tier: cache_dir.is_some(),
        first_request_after_restart_ms,
        post_restart_p99_ms: latencies_ms[index],
        disk_hits_after_restart,
        preparations_for_first_request,
    }
}

/// Runs both sides of the restart-warm comparison in a scratch directory.
fn restart_warm_run() -> RestartWarmReport {
    let dir = std::env::temp_dir().join(format!("rf-bench-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch cache dir");
    let with_disk_tier = restart_warm_side(Some(&dir));
    let memory_only = restart_warm_side(None);
    let _ = std::fs::remove_dir_all(&dir);
    RestartWarmReport {
        with_disk_tier,
        memory_only,
    }
}

fn summarize(
    profile: &Profile,
    reactors: usize,
    workers: usize,
    mix: Mix,
    out: RunOutcome,
) -> RunReport {
    let mut latencies_ms: Vec<f64> = out
        .samples
        .iter()
        .map(|sample| sample.latency.as_secs_f64() * 1_000.0)
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let percentile = |q: f64| -> f64 {
        if latencies_ms.is_empty() {
            return 0.0;
        }
        let index = ((latencies_ms.len() - 1) as f64 * q).round() as usize;
        latencies_ms[index]
    };
    let latency = if latencies_ms.is_empty() {
        None
    } else {
        Some(LatencySummary {
            p50_ms: percentile(0.50),
            p90_ms: percentile(0.90),
            p99_ms: percentile(0.99),
            max_ms: *latencies_ms.last().expect("non-empty"),
            mean_ms: latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64,
        })
    };

    let requests = out.samples.len() as u64 + out.errors;
    let ok = out
        .samples
        .iter()
        .filter(|sample| sample.status == 200)
        .count() as u64;
    let shed_503 = out
        .samples
        .iter()
        .filter(|sample| sample.status == 503)
        .count() as u64;
    let answered = out.samples.len() as u64;
    RunReport {
        reactors,
        workers,
        mix: mix.name().to_string(),
        target_rps: profile.rps_for(mix),
        duration_secs: out.elapsed.as_secs_f64(),
        requests,
        achieved_rps: answered as f64 / out.elapsed.as_secs_f64().max(f64::EPSILON),
        ok,
        shed_503,
        shed_rate: if answered == 0 {
            0.0
        } else {
            shed_503 as f64 / answered as f64
        },
        retries: out.retries,
        gave_up: out.gave_up,
        client_errors: out.errors,
        mc_truncated_runs: out.mc_truncated_delta,
        latency,
        server_network_totals: out.network,
        server_stages: out.server_stages,
        per_shard_requests: out.per_shard_requests,
        shard_skew: out.shard_skew,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = if args.iter().any(|arg| arg == "--smoke") {
        Profile::smoke()
    } else {
        Profile::full()
    };
    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let workers = 2usize;

    println!(
        "open-loop load generator: {} mode, {} host core(s), {} client connection(s), {:?} per run",
        if profile.smoke { "smoke" } else { "full" },
        host_parallelism,
        profile.connections,
        profile.duration,
    );

    let mut runs = Vec::new();
    for &reactors in &profile.reactor_counts {
        for &mix in &profile.mixes {
            println!(
                "→ reactors={reactors} mix={} target={} rps …",
                mix.name(),
                profile.rps_for(mix)
            );
            let outcome = run_once(&profile, reactors, workers, mix, false);
            let report = summarize(&profile, reactors, workers, mix, outcome);
            println!(
                "   {} requests, {:.1} rps achieved, {} ok / {} shed / {} errors{}{}",
                report.requests,
                report.achieved_rps,
                report.ok,
                report.shed_503,
                report.client_errors,
                report
                    .latency
                    .as_ref()
                    .map(|latency| {
                        format!(
                            ", p50 {:.2} ms / p99 {:.2} ms",
                            latency.p50_ms, latency.p99_ms
                        )
                    })
                    .unwrap_or_default(),
                report
                    .shard_skew
                    .map(|skew| format!(", shard skew {skew:.2}x"))
                    .unwrap_or_default(),
            );
            runs.push(report);
        }
    }

    // Instrumentation overhead: a dedicated closed-loop warm pair —
    // default slow threshold (traces are rare) vs threshold zero (every
    // request builds and publishes a full trace).  Closed-loop on one
    // keep-alive connection, because an open-loop p99 near any utilization
    // includes Poisson queueing delay, which amplifies scheduler jitter on
    // a shared core far beyond the sub-microsecond cost being measured.
    // Sides alternate and each keeps its best p99 across repeats, so a
    // transient machine stall (VM steal, page-cache flush) lands on
    // whichever run is active and min-of-repeats discards it symmetrically.
    println!("→ reactors=1 mix=warm closed-loop instrumentation-overhead pair …");
    let mut best = [f64::INFINITY; 2];
    for _ in 0..3 {
        for (side, slot) in best.iter_mut().enumerate() {
            if let Some(p99) = closed_loop_warm_p99(side == 1, 2_000) {
                *slot = slot.min(p99);
            }
        }
    }
    let pair = (best[0].is_finite() && best[1].is_finite()).then_some((best[0], best[1]));
    let instrumentation_overhead = pair.map(|(baseline, traced)| {
        println!(
            "   warm p99 {baseline:.2} ms (default threshold) vs {traced:.2} ms (trace-all), \
             ratio {:.3}",
            traced / baseline.max(f64::EPSILON)
        );
        InstrumentationOverhead {
            baseline_warm_p99_ms: baseline,
            trace_all_warm_p99_ms: traced,
            p99_ratio: traced / baseline.max(f64::EPSILON),
        }
    });

    // The restart-warm pair: how much of a restarted server's cold start
    // the crash-safe disk tier absorbs.  Runs in smoke mode too — it doubles
    // as the CI gate that the rf_disk_* metric families parse, stay
    // monotone, and appear exactly when the tier is configured.
    println!("→ reactors=1 mix=restart_warm disk-tier vs memory-only …");
    let restart_warm = restart_warm_run();
    println!(
        "   first post-restart request: {:.2} ms with disk tier ({} disk hit(s), \
         {} preparation(s)) vs {:.2} ms memory-only ({} preparation(s))",
        restart_warm.with_disk_tier.first_request_after_restart_ms,
        restart_warm.with_disk_tier.disk_hits_after_restart,
        restart_warm.with_disk_tier.preparations_for_first_request,
        restart_warm.memory_only.first_request_after_restart_ms,
        restart_warm.memory_only.preparations_for_first_request,
    );

    let warm_rps_by_reactors: Vec<(usize, f64)> = runs
        .iter()
        .filter(|run| run.mix == "warm")
        .map(|run| (run.reactors, run.achieved_rps))
        .collect();
    let baseline = warm_rps_by_reactors
        .iter()
        .find(|(reactors, _)| *reactors == 1)
        .map(|(_, rps)| *rps)
        .unwrap_or(0.0);
    let warm_scaling_vs_one_shard: Vec<(usize, f64)> = warm_rps_by_reactors
        .iter()
        .map(|(reactors, rps)| (*reactors, if baseline > 0.0 { rps / baseline } else { 0.0 }))
        .collect();

    let report = BenchReport {
        benchmark: "server_open_loop_load".to_string(),
        smoke: profile.smoke,
        host_parallelism,
        note: format!(
            "Open-loop Poisson arrivals; latency measured from scheduled arrival. \
             Reactor-shard scaling is bounded by host parallelism: on a \
             {host_parallelism}-core host, {} shards cannot exceed ~{host_parallelism}x \
             one shard regardless of the I/O plane.",
            profile.reactor_counts.last().copied().unwrap_or(1)
        ),
        warm_rps_by_reactors,
        warm_scaling_vs_one_shard,
        instrumentation_overhead,
        restart_warm: Some(restart_warm),
        runs,
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_server.json");
    println!("wrote {path}");
}
