//! Regenerates **Figure 2** of the paper: the detailed Stability widget —
//! the score distribution at the top-10 and over-all with the fitted line
//! whose slope is the stability score (threshold 0.25).
//!
//! ```sh
//! cargo run -p rf-bench --bin figure2_stability
//! ```

use rf_bench::{cs_label, print_banner};

fn main() {
    print_banner("Figure 2 — Stability: detailed widget (CS departments)");
    let label = cs_label();
    let slope = &label.stability.slope;

    println!(
        "Stability threshold: a score distribution is UNSTABLE if the slope is {:.2} or lower.\n",
        slope.threshold
    );

    for (name, slice, scores) in [
        (
            "Top-10",
            &slope.top_k,
            &label.ranking.scores_in_rank_order()[..slope.k],
        ),
        (
            "Over-all",
            &slope.overall,
            &label.ranking.scores_in_rank_order()[..],
        ),
    ] {
        println!(
            "{name}: slope magnitude {:.3} (raw {:.3}), intercept {:.3}, R² {:.3} → {}",
            slice.slope_magnitude,
            slice.raw_slope,
            slice.intercept,
            slice.r_squared,
            slice.verdict.as_str().to_uppercase()
        );
        // ASCII rendition of the score-vs-rank scatter the figure plots.
        println!("{}", ascii_scatter(scores, 48, 12));
    }

    println!(
        "Overview verdict: {} (stability score {:.3})",
        if label.stability.stable {
            "STABLE"
        } else {
            "UNSTABLE"
        },
        label.stability.stability_score
    );

    println!("\nPer-attribute stability:");
    for attr in &label.stability.per_attribute {
        println!(
            "  {:<12} weight {:>5.2}  slope {:.3}  ({})",
            attr.attribute,
            attr.weight,
            attr.slope_magnitude,
            attr.verdict.as_str()
        );
    }
}

/// Plots scores (already in rank order) as a crude ASCII scatter:
/// x = rank, y = score.
fn ascii_scatter(scores: &[f64], width: usize, height: usize) -> String {
    if scores.is_empty() {
        return String::new();
    }
    let min = scores.iter().copied().fold(f64::INFINITY, f64::min);
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (i, &score) in scores.iter().enumerate() {
        let x = if scores.len() == 1 {
            0
        } else {
            i * (width - 1) / (scores.len() - 1)
        };
        let y = ((score - min) / span * (height - 1) as f64).round() as usize;
        grid[height - 1 - y][x] = '*';
    }
    let mut out = String::new();
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push_str("\n   rank 1 ");
    out.push_str(&" ".repeat(width.saturating_sub(20)));
    out.push_str(&format!("rank {}\n", scores.len()));
    out
}
