//! Regenerates **Figure 3** of the paper: the scoring-function design view —
//! the data preview, the normalize/standardize option, the attribute
//! histogram (GRE is the one shown in the figure), attribute selection and
//! the ranking preview.
//!
//! ```sh
//! cargo run -p rf-bench --bin figure3_design_view
//! ```

use rf_bench::{cs_scoring, cs_table, print_banner};
use rf_core::DesignView;
use rf_table::NormalizationMethod;

fn main() {
    print_banner("Figure 3 — Scoring function design (CS departments)");
    let table = cs_table();

    for method in [NormalizationMethod::None, NormalizationMethod::MinMax] {
        println!(
            "\n### normalize and standardize attributes: {}",
            method.as_str()
        );
        let view = DesignView::build(&table, method, 6, 10).expect("design view");

        println!("\nData preview ({} rows total):", view.rows);
        println!("{}", view.data_preview);

        println!(
            "Numerical attributes (scoring candidates): {:?}",
            view.numeric_attributes
        );
        println!(
            "Categorical attributes (sensitive candidates): {:?}",
            view.categorical_attributes
        );

        if let Some(gre) = view.attribute_preview("GRE") {
            println!("\nDistribution of GRE (the histogram shown in the figure):");
            print!("{}", gre.histogram.to_ascii(36));
            println!(
                "raw summary:        min {:.1}  median {:.1}  max {:.1}  mean {:.1}",
                gre.raw_summary.min,
                gre.raw_summary.median,
                gre.raw_summary.max,
                gre.raw_summary.mean
            );
            if let Some(norm) = &gre.normalized_summary {
                println!(
                    "normalized summary: min {:.2}  median {:.2}  max {:.2}  mean {:.2}",
                    norm.min, norm.median, norm.max, norm.mean
                );
            }
        }

        let preview = view
            .preview_ranking(&table, &cs_scoring(), 10)
            .expect("ranking preview");
        println!("\nRanking preview (top-10) for 0.4·PubCount + 0.4·Faculty + 0.2·GRE:");
        for (rank, (item, score)) in preview
            .top_items
            .iter()
            .zip(preview.top_scores.iter())
            .enumerate()
        {
            println!("{:>3}. {:<10} {:.4}", rank + 1, item, score);
        }
    }
}
