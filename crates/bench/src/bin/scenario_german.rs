//! Demonstration scenario 3 (paper §3): German credit — 1,000 applicants
//! ranked by credit-worthiness, audited for sex and age group.
//!
//! ```sh
//! cargo run -p rf-bench --bin scenario_german
//! ```

use rf_bench::{german_credit_scenario, print_banner};
use rf_core::NutritionalLabel;

fn main() {
    print_banner("Scenario 3 — German credit (1,000 applicants)");
    let (table, config) = german_credit_scenario(1_000);
    let label = NutritionalLabel::generate(&table, &config).expect("label");
    println!("{}", label.to_text());

    print_banner("Audit summary");
    for report in &label.fairness.reports {
        println!(
            "{} = {:<8}  FA*IR {}  Pairwise {} (θ = {:.3})  Proportion {} (top-k {:.2} vs all {:.2})",
            report.attribute,
            report.protected_value,
            if report.fair_star.satisfied { "fair  " } else { "UNFAIR" },
            if report.pairwise.fair { "fair  " } else { "UNFAIR" },
            report.pairwise.preference_probability,
            if report.proportion.fair { "fair  " } else { "UNFAIR" },
            report.proportion.top_k_proportion,
            report.proportion.overall_proportion,
        );
    }
    for report in &label.diversity.reports {
        if !report.missing_from_top_k.is_empty() {
            println!(
                "diversity: categories of `{}` missing from the top-{}: {}",
                report.attribute,
                report.k,
                report.missing_from_top_k.join(", ")
            );
        }
    }
}
