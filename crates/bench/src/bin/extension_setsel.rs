//! Extension experiment E2: constrained set selection (EDBT 2018 substrate)
//! on the demo datasets — the utility price of fairness/diversity floors and
//! ceilings, offline and online.
//!
//! ```sh
//! cargo run -p rf-bench --bin extension_setsel
//! ```

use rf_bench::{cs_table, print_banner};
use rf_datasets::CompasConfig;
use rf_setsel::{
    expected_utility_ratio, offline_select, Candidate, ConstraintSet, GroupConstraint,
    OnlineSelector, OnlineStrategy,
};

fn main() {
    print_banner("Extension E2 — online set selection with fairness and diversity constraints");

    // CS departments: force small departments back into the top-10.
    let cs = cs_table();
    let candidates = Candidate::from_table(&cs, "PubCount", "DeptSizeBin").expect("candidates");
    let unconstrained =
        offline_select(&candidates, &ConstraintSet::unconstrained(10).unwrap()).expect("top-10");
    let constrained = offline_select(
        &candidates,
        &ConstraintSet::new(10, vec![GroupConstraint::at_least("small", 3).unwrap()]).unwrap(),
    )
    .expect("constrained");
    println!(
        "CS departments, k = 10 by PubCount:\n\
         \x20 unconstrained top-10: utility {:.2}, counts {:?}\n\
         \x20 floor small ≥ 3:      utility {:.2}, counts {:?}  (price of diversity: {:.2})\n",
        unconstrained.total_utility,
        unconstrained.category_counts,
        constrained.total_utility,
        constrained.category_counts,
        unconstrained.total_utility - constrained.total_utility,
    );

    // COMPAS: online selection of a review cohort under race constraints.
    let compas = CompasConfig {
        rows: 2_000,
        seed: 7,
        ..CompasConfig::default()
    }
    .generate()
    .expect("compas");
    let candidates = Candidate::from_table(&compas, "decile_score", "race").expect("candidates");
    let constraints = ConstraintSet::new(
        50,
        vec![
            GroupConstraint::at_least("Other", 20).unwrap(),
            GroupConstraint::at_most("African-American", 30).unwrap(),
        ],
    )
    .unwrap();
    let offline = offline_select(&candidates, &constraints).expect("offline");
    println!(
        "COMPAS-like, k = 50 by decile score (floor Other ≥ 20, ceiling African-American ≤ 30):\n\
         \x20 offline optimum: utility {:.0}, counts {:?}",
        offline.total_utility, offline.category_counts
    );
    for (name, strategy) in [
        ("greedy", OnlineStrategy::Greedy),
        ("secretary (1/e warm-up)", OnlineStrategy::secretary()),
    ] {
        let selector = OnlineSelector::new(constraints.clone(), strategy).expect("selector");
        let summary = expected_utility_ratio(&candidates, &selector, 100, 1).expect("simulation");
        println!(
            "\x20 online {name:<24} mean utility ratio {:.3} (min {:.3}, max {:.3}); \
             constraints satisfied in {:.0}% of 100 random orders",
            summary.mean,
            summary.min,
            summary.max,
            100.0 * summary.constraint_satisfaction_rate,
        );
    }
}
