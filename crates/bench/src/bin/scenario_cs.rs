//! Demonstration scenario 1 (paper §3): CS departments — the full walk-through
//! with the default scoring function and an alternative weighting, showing how
//! the label updates "as the user selects different ranking methods or sets
//! different weights".
//!
//! ```sh
//! cargo run -p rf-bench --bin scenario_cs
//! ```

use rf_bench::{cs_label_config, cs_table, print_banner};
use rf_core::NutritionalLabel;
use rf_ranking::ScoringFunction;

fn main() {
    let table = cs_table();

    print_banner("Scenario 1a — CS departments, default recipe (0.4/0.4/0.2)");
    let label = NutritionalLabel::generate(&table, &cs_label_config()).expect("label");
    println!("{}", label.to_text());

    print_banner("Scenario 1b — what if the user weights GRE heavily? (0.1/0.1/0.8)");
    let alt_scoring =
        ScoringFunction::from_pairs([("PubCount", 0.1), ("Faculty", 0.1), ("GRE", 0.8)])
            .expect("valid scoring");
    let alt_config = cs_label_config();
    let alt_config = rf_core::LabelConfig {
        scoring: alt_scoring,
        ..alt_config
    };
    let alt_label = NutritionalLabel::generate(&table, &alt_config).expect("label");
    println!("{}", alt_label.to_text());

    print_banner("Comparison");
    println!("default recipe headline: {}", label.headline());
    println!("GRE-heavy recipe headline: {}", alt_label.headline());
    let overlap = label
        .ranking
        .top_k_indices(10)
        .iter()
        .filter(|idx| alt_label.ranking.top_k_indices(10).contains(idx))
        .count();
    println!("top-10 overlap between the two recipes: {overlap}/10 departments");
}
