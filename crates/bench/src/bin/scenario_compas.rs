//! Demonstration scenario 2 (paper §3): COMPAS criminal risk assessment at the
//! full ProPublica size (6,889 individuals), audited for race and sex, plus
//! the unbiased counterfactual for contrast.
//!
//! ```sh
//! cargo run -p rf-bench --bin scenario_compas
//! ```

use rf_bench::{compas_scenario, print_banner};
use rf_core::NutritionalLabel;
use rf_datasets::CompasConfig;

fn main() {
    print_banner("Scenario 2 — COMPAS criminal risk assessment (6,889 individuals)");
    let (table, config) = compas_scenario(6_889);
    let label = NutritionalLabel::generate(&table, &config).expect("label");
    println!("{}", label.to_text());

    print_banner("Counterfactual: the same pipeline on an unbiased synthetic dataset");
    let unbiased_table = CompasConfig::default()
        .unbiased()
        .generate()
        .expect("unbiased dataset");
    let unbiased_label = NutritionalLabel::generate(&unbiased_table, &config).expect("label");

    for (name, l) in [
        ("biased (as published)", &label),
        ("unbiased counterfactual", &unbiased_label),
    ] {
        println!("\n[{name}]");
        for report in &l.fairness.reports {
            println!(
                "  {} = {:<18} pairwise {:.3}  proportion top-k {:.2} vs all {:.2}  → {}",
                report.attribute,
                report.protected_value,
                report.pairwise.preference_probability,
                report.proportion.top_k_proportion,
                report.proportion.overall_proportion,
                if report.any_unfair() {
                    "UNFAIR"
                } else {
                    "fair"
                }
            );
        }
    }
}
