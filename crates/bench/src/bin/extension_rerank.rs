//! Extension experiment E1: FA*IR re-ranking as a mitigation that edits the
//! output instead of the recipe (the measure-preserving counterpart of the
//! §4 mitigation extension).
//!
//! For each demo scenario, diagnose the headline ranking with FA*IR, repair
//! it with the constructive FA*IR algorithm, and report the verdict flip and
//! the utility cost of the repair.
//!
//! ```sh
//! cargo run -p rf-bench --bin extension_rerank
//! ```

use rf_bench::{cs_scoring, cs_table, print_banner};
use rf_datasets::{CompasConfig, GermanCreditConfig};
use rf_fairness::{FairRerank, FairStarTest, ProtectedGroup};
use rf_ranking::ScoringFunction;
use rf_table::Table;

fn audit_and_repair(
    name: &str,
    table: &Table,
    scoring: &ScoringFunction,
    attribute: &str,
    protected_value: &str,
    k: usize,
) {
    let ranking = scoring.rank_table(table).expect("ranking");
    let group = ProtectedGroup::from_table(table, attribute, protected_value).expect("group");
    let p = group.protected_proportion();
    let test = FairStarTest::new(k, p).expect("test");
    let before = test.evaluate(&group, &ranking).expect("before");
    let outcome = FairRerank::new(k, p)
        .expect("re-ranker")
        .rerank(&group, &ranking)
        .expect("re-rank");
    let after = test.evaluate(&group, &outcome.reranked).expect("after");

    println!(
        "{name:<32} {attribute}={protected_value:<18} k={k:<4} p={p:.3}\n\
         \x20 before: {}  (p-value {:.4}, protected in top-k {})\n\
         \x20 after:  {}  (p-value {:.4}, protected in top-k {})\n\
         \x20 cost: {} boosted item(s), max boost {} positions, score loss {:.4}, \
         Kendall tau to original {:.4}\n",
        if before.satisfied { "FAIR  " } else { "UNFAIR" },
        before.p_value,
        before.observed_counts.last().copied().unwrap_or(0),
        if after.satisfied { "FAIR  " } else { "UNFAIR" },
        after.p_value,
        after.observed_counts.last().copied().unwrap_or(0),
        outcome.boosted_into_top_k.len(),
        outcome.max_rank_boost,
        outcome.total_score_loss,
        outcome.kendall_tau_to_original,
    );
}

fn main() {
    print_banner("Extension E1 — FA*IR re-ranking across the demo scenarios");

    // Scenario 1: CS departments, small departments shut out of the top-10.
    let cs = cs_table();
    audit_and_repair(
        "CS departments (97 rows)",
        &cs,
        &cs_scoring(),
        "DeptSizeBin",
        "small",
        10,
    );

    // Scenario 2: COMPAS — audit the non-protected group, which the injected
    // score skew pushes out of the highest-risk prefix.
    let compas = CompasConfig {
        rows: 2_000,
        seed: 7,
        ..CompasConfig::default()
    }
    .generate()
    .expect("compas");
    let compas_scoring =
        ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)])
            .expect("scoring");
    audit_and_repair(
        "COMPAS-like (2,000 rows)",
        &compas,
        &compas_scoring,
        "race",
        "Other",
        100,
    );

    // Scenario 3: German credit — young applicants pushed down by the score.
    let german = GermanCreditConfig {
        seed: 11,
        ..GermanCreditConfig::default()
    }
    .generate()
    .expect("german");
    let german_scoring = ScoringFunction::from_pairs([("credit_score", 1.0)]).expect("scoring");
    audit_and_repair(
        "German credit (1,000 rows)",
        &german,
        &german_scoring,
        "age_group",
        "young",
        50,
    );
}
