//! Regenerates **Figure 1** of the paper: the complete Ranking Facts label
//! for the CS departments dataset, with the Ingredients and Fairness widgets
//! expanded (the two widgets the figure shows in detail).
//!
//! ```sh
//! cargo run -p rf-bench --bin figure1_cs_label
//! ```

use rf_bench::{cs_label, print_banner};

fn main() {
    print_banner("Figure 1 — Ranking Facts for the CS departments dataset");
    let label = cs_label();

    // The compact label (all six widgets).
    println!("{}", label.to_text());

    // Expanded Ingredients widget (green box in the figure).
    print_banner("Expanded: Ingredients (attributes that strongly influence the ranking)");
    for ing in &label.ingredients.all_attributes {
        println!(
            "{:<12} rank association {:>6.3}   learned weight {}   {}",
            ing.attribute,
            ing.signed_association,
            ing.learned_weight
                .map_or_else(|| "   n/a".to_string(), |w| format!("{w:>6.3}")),
            if ing.in_recipe {
                "(declared in Recipe)"
            } else {
                "(not in Recipe)"
            }
        );
    }
    println!(
        "Recipe attributes not material to the outcome: {}",
        if label.ingredients.recipe_attributes_not_material.is_empty() {
            "none".to_string()
        } else {
            label.ingredients.recipe_attributes_not_material.join(", ")
        }
    );

    // Expanded Fairness widget (blue box in the figure): the computation that
    // produced the fair/unfair labels.
    print_banner("Expanded: Fairness (computation behind the fair/unfair labels)");
    for report in &label.fairness.reports {
        println!(
            "\nProtected feature: {} = {} (population share {:.2})",
            report.attribute, report.protected_value, report.protected_proportion
        );
        println!(
            "  FA*IR       : p-value {:.4}, adjusted alpha {:.4}, {} (first violation at prefix {:?})",
            report.fair_star.p_value,
            report.fair_star.alpha_adjusted,
            if report.fair_star.satisfied { "FAIR" } else { "UNFAIR" },
            report.fair_star.first_violation_prefix,
        );
        println!(
            "  Pairwise    : P[protected preferred] = {:.3}, p-value {:.4}, {}",
            report.pairwise.preference_probability,
            report.pairwise.p_value,
            if report.pairwise.fair {
                "FAIR"
            } else {
                "UNFAIR"
            },
        );
        println!(
            "  Proportion  : top-{} share {:.2} vs over-all {:.2}, z = {:.2}, p-value {:.4}, {}",
            report.proportion.k,
            report.proportion.top_k_proportion,
            report.proportion.overall_proportion,
            report.proportion.z_statistic,
            report.proportion.p_value,
            if report.proportion.fair {
                "FAIR"
            } else {
                "UNFAIR"
            },
        );
        println!(
            "  Discounted  : rND {:.3}  rKL {:.3}  rRD {:.3}",
            report.discounted.rnd, report.discounted.rkl, report.discounted.rrd
        );
    }
}
