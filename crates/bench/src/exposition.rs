//! Prometheus text-exposition validation for the load generator's CI smoke
//! check.
//!
//! The server's `GET /metrics` endpoint speaks the Prometheus text format
//! (version 0.0.4).  This module parses a scrape into a series → value map,
//! rejecting any line that is neither a well-formed comment nor a
//! `name{labels} value` sample, and cross-checks two scrapes of the same
//! server for counter monotonicity: `_total` counters and histogram
//! `_bucket`/`_sum`/`_count` samples must never decrease.  It also
//! reconstructs per-stage latency summaries (count, mean, p50, p99) from the
//! cumulative `rf_stage_duration_microseconds` histogram so the load
//! generator can record the server's own view of where time went.

use std::collections::BTreeMap;

/// A parsed `/metrics` scrape: every sample keyed by its full series name
/// (metric name plus label set, exactly as exposed).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `name{labels}` → sample value, in exposition order.
    pub samples: BTreeMap<String, f64>,
}

/// One `(stage, shard)` latency summary reconstructed from the cumulative
/// histogram buckets of a `/metrics` scrape.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StageSummary {
    /// Stage label (`parse`, `prepare`, `render`, …).
    pub stage: String,
    /// Shard label (`0`, `1`, …, `service`, or `all`).
    pub shard: String,
    /// Number of observations recorded for this stage.
    pub count: u64,
    /// Mean latency in microseconds (`_sum / _count`).
    pub mean_micros: f64,
    /// Median latency upper bound in microseconds.
    pub p50_micros: u64,
    /// 99th-percentile latency upper bound in microseconds.
    pub p99_micros: u64,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|first| first.is_ascii_alphabetic() || first == '_' || first == ':')
        && name
            .chars()
            .all(|ch| ch.is_ascii_alphanumeric() || ch == '_' || ch == ':')
}

fn valid_label_pair(pair: &str) -> bool {
    let Some((name, value)) = pair.split_once('=') else {
        return false;
    };
    valid_metric_name(name) && value.len() >= 2 && value.starts_with('"') && value.ends_with('"')
}

/// Validates one `# TYPE name kind` comment line.
fn check_type_line(rest: &str) -> Result<(), String> {
    let mut parts = rest.split_whitespace();
    let name = parts
        .next()
        .ok_or_else(|| "TYPE comment is missing a metric name".to_string())?;
    if !valid_metric_name(name) {
        return Err(format!("TYPE comment names invalid metric {name:?}"));
    }
    let kind = parts
        .next()
        .ok_or_else(|| format!("TYPE comment for {name} is missing a kind"))?;
    match kind {
        "counter" | "gauge" | "histogram" | "summary" | "untyped" => {}
        other => {
            return Err(format!(
                "TYPE comment for {name} has unknown kind {other:?}"
            ))
        }
    }
    if parts.next().is_some() {
        return Err(format!("TYPE comment for {name} has trailing tokens"));
    }
    Ok(())
}

/// Parses a full `/metrics` payload; every line must be empty, a comment, or
/// a `name{labels} value` sample with a numeric value.
pub fn parse_metrics(text: &str) -> Result<MetricsSnapshot, String> {
    let mut snapshot = MetricsSnapshot::default();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                check_type_line(rest).map_err(|err| format!("line {}: {err}", line_no + 1))?;
            }
            // HELP and free-form comments are legal as-is.
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: sample has no value: {line:?}", line_no + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: non-numeric value {value:?}", line_no + 1))?;
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated label set", line_no + 1))?;
                if !labels.is_empty() && !labels.split(',').all(valid_label_pair) {
                    return Err(format!(
                        "line {}: malformed label set {labels:?}",
                        line_no + 1
                    ));
                }
                name
            }
            None => series,
        };
        if !valid_metric_name(name) {
            return Err(format!(
                "line {}: invalid metric name {name:?}",
                line_no + 1
            ));
        }
        if snapshot.samples.insert(series.to_string(), value).is_some() {
            return Err(format!("line {}: duplicate series {series:?}", line_no + 1));
        }
    }
    Ok(snapshot)
}

/// True for series that must never decrease between scrapes of one server:
/// `_total` counters and histogram `_bucket`/`_sum`/`_count` samples.
fn is_cumulative(series: &str) -> bool {
    let name = series.split('{').next().unwrap_or(series);
    name.ends_with("_total")
        || name.ends_with("_sum")
        || name.ends_with("_count")
        || name.ends_with("_bucket")
}

/// Checks that every cumulative series present in both scrapes is
/// non-decreasing from `before` to `after`.
pub fn check_counters_monotonic(
    before: &MetricsSnapshot,
    after: &MetricsSnapshot,
) -> Result<(), String> {
    for (series, &earlier) in &before.samples {
        if !is_cumulative(series) {
            continue;
        }
        if let Some(&later) = after.samples.get(series) {
            if later < earlier {
                return Err(format!(
                    "counter {series} decreased between scrapes: {earlier} -> {later}"
                ));
            }
        }
    }
    Ok(())
}

/// Reconstructs per-`(stage, shard)` latency summaries from the cumulative
/// `rf_stage_duration_microseconds` histogram in a scrape.
pub fn stage_summaries(snapshot: &MetricsSnapshot) -> Vec<StageSummary> {
    const HISTOGRAM: &str = "rf_stage_duration_microseconds";
    // (stage, shard) → sorted cumulative (le, count) pairs.
    let mut buckets: BTreeMap<(String, String), Vec<(f64, u64)>> = BTreeMap::new();
    let mut sums: BTreeMap<(String, String), f64> = BTreeMap::new();
    for (series, &value) in &snapshot.samples {
        let Some(labels) = series
            .strip_prefix(HISTOGRAM)
            .and_then(|rest| rest.strip_prefix("_bucket{"))
            .and_then(|rest| rest.strip_suffix('}'))
            .or_else(|| {
                series
                    .strip_prefix(HISTOGRAM)
                    .and_then(|rest| rest.strip_prefix("_sum{"))
                    .and_then(|rest| rest.strip_suffix('}'))
            })
        else {
            continue;
        };
        let mut stage = None;
        let mut shard = None;
        let mut le = None;
        for pair in labels.split(',') {
            let Some((key, quoted)) = pair.split_once('=') else {
                continue;
            };
            let value = quoted.trim_matches('"').to_string();
            match key {
                "stage" => stage = Some(value),
                "shard" => shard = Some(value),
                "le" => le = Some(value),
                _ => {}
            }
        }
        let (Some(stage), Some(shard)) = (stage, shard) else {
            continue;
        };
        match le {
            Some(le) => {
                let upper = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap_or(0.0)
                };
                buckets
                    .entry((stage, shard))
                    .or_default()
                    .push((upper, value as u64));
            }
            None => {
                sums.insert((stage, shard), value);
            }
        }
    }

    buckets
        .into_iter()
        .filter_map(|((stage, shard), mut series)| {
            series.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite or +Inf bound"));
            let count = series.last().map_or(0, |(_, cumulative)| *cumulative);
            if count == 0 {
                return None;
            }
            let quantile = |q: f64| -> u64 {
                let rank = ((q * count as f64).ceil() as u64).max(1);
                series
                    .iter()
                    .find(|(_, cumulative)| *cumulative >= rank)
                    .map_or(u64::MAX, |(upper, _)| {
                        if upper.is_finite() {
                            *upper as u64
                        } else {
                            u64::MAX
                        }
                    })
            };
            let sum = sums
                .get(&(stage.clone(), shard.clone()))
                .copied()
                .unwrap_or(0.0);
            Some(StageSummary {
                stage,
                shard,
                count,
                mean_micros: sum / count as f64,
                p50_micros: quantile(0.50),
                p99_micros: quantile(0.99),
            })
        })
        .collect()
}

/// Validates a `GET /debug/slow` response body: it must be a JSON object
/// with numeric `capacity`/`recorded` fields and a `traces` array.
pub fn check_slow_debug(body: &str) -> Result<u64, String> {
    let value: serde_json::Value =
        serde_json::from_str(body).map_err(|err| format!("/debug/slow is not JSON: {err}"))?;
    let capacity = value
        .get("capacity")
        .and_then(serde_json::Value::as_u64)
        .ok_or_else(|| "/debug/slow is missing numeric `capacity`".to_string())?;
    value
        .get("recorded")
        .and_then(serde_json::Value::as_u64)
        .ok_or_else(|| "/debug/slow is missing numeric `recorded`".to_string())?;
    let traces = value
        .get("traces")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| "/debug/slow is missing `traces` array".to_string())?;
    for trace in traces {
        for field in ["id", "cache"] {
            if trace
                .get(field)
                .and_then(serde_json::Value::as_str)
                .is_none()
            {
                return Err(format!("/debug/slow trace is missing string `{field}`"));
            }
        }
        if trace
            .get("total_micros")
            .and_then(serde_json::Value::as_u64)
            .is_none()
        {
            return Err("/debug/slow trace is missing numeric `total_micros`".to_string());
        }
        if trace
            .get("stages")
            .and_then(serde_json::Value::as_array)
            .is_none()
        {
            return Err("/debug/slow trace is missing `stages` array".to_string());
        }
    }
    Ok(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# TYPE rf_cache_hits_total counter
rf_cache_hits_total 12
# TYPE rf_stage_duration_microseconds histogram
rf_stage_duration_microseconds_bucket{stage=\"parse\",shard=\"0\",le=\"1\"} 2
rf_stage_duration_microseconds_bucket{stage=\"parse\",shard=\"0\",le=\"3\"} 9
rf_stage_duration_microseconds_bucket{stage=\"parse\",shard=\"0\",le=\"+Inf\"} 10
rf_stage_duration_microseconds_sum{stage=\"parse\",shard=\"0\"} 25
rf_stage_duration_microseconds_count{stage=\"parse\",shard=\"0\"} 10
rf_cache_entries 3
";

    #[test]
    fn parses_a_valid_exposition() {
        let snapshot = parse_metrics(GOOD).expect("valid exposition");
        assert_eq!(snapshot.samples["rf_cache_hits_total"], 12.0);
        assert_eq!(snapshot.samples.len(), 7);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_metrics("rf_cache_hits_total").is_err());
        assert!(parse_metrics("rf_cache_hits_total abc").is_err());
        assert!(parse_metrics("2bad_name 1").is_err());
        assert!(parse_metrics("name{unterminated=\"x\" 1").is_err());
        assert!(parse_metrics("name{no_quotes=x} 1").is_err());
        assert!(parse_metrics("# TYPE name rocket\nname 1").is_err());
        assert!(parse_metrics("name 1\nname 2").is_err(), "duplicate series");
    }

    #[test]
    fn monotonicity_flags_decreasing_counters_only() {
        let before = parse_metrics("rf_x_total 5\nrf_gauge 9\n").expect("before");
        let shrunk_gauge = parse_metrics("rf_x_total 5\nrf_gauge 2\n").expect("after");
        check_counters_monotonic(&before, &shrunk_gauge).expect("gauges may decrease");
        let shrunk_counter = parse_metrics("rf_x_total 4\nrf_gauge 9\n").expect("after");
        let err = check_counters_monotonic(&before, &shrunk_counter).expect_err("must fail");
        assert!(err.contains("rf_x_total"), "unexpected error: {err}");
    }

    #[test]
    fn stage_summaries_recover_count_quantiles_and_mean() {
        let snapshot = parse_metrics(GOOD).expect("valid exposition");
        let summaries = stage_summaries(&snapshot);
        assert_eq!(summaries.len(), 1);
        let parse = &summaries[0];
        assert_eq!((parse.stage.as_str(), parse.shard.as_str()), ("parse", "0"));
        assert_eq!(parse.count, 10);
        // rank(p50) = 5 lands in the le="3" bucket; rank(p99) = 10 in +Inf.
        assert_eq!(parse.p50_micros, 3);
        assert_eq!(parse.p99_micros, u64::MAX);
        assert!((parse.mean_micros - 2.5).abs() < 1e-9);
    }

    #[test]
    fn slow_debug_checker_accepts_the_served_shape() {
        let ok = r#"{"capacity":16,"recorded":2,"traces":[
            {"id":"0:1","total_micros":1200,"cache":"miss","truncated":false,
             "shed":null,"stages":[{"stage":"parse","micros":3}]}]}"#;
        assert_eq!(check_slow_debug(ok).expect("valid document"), 16);
        assert!(check_slow_debug("[]").is_err());
        assert!(check_slow_debug(r#"{"capacity":1,"recorded":0}"#).is_err());
        assert!(
            check_slow_debug(r#"{"capacity":1,"recorded":0,"traces":[{"id":5}]}"#).is_err(),
            "trace with non-string id must be rejected"
        );
    }
}
