//! # rf-server
//!
//! A minimal, dependency-free HTTP server that exposes the Ranking Facts demo
//! flow described in the paper's §3: pick one of the pre-loaded datasets (or
//! upload a CSV), inspect the scoring-function design view, and generate the
//! nutritional label as HTML or JSON.
//!
//! The original system is a Python web application; this crate is the web
//! substrate of the reproduction.  It is intentionally small — a hand-rolled
//! HTTP/1.1 request parser and response writer over `std::net::TcpListener`,
//! dispatching connections onto an [`rf_runtime::ThreadPool`] — because the
//! interesting logic lives in `rf-core`.  Label requests route through
//! `rf-core`'s `LabelService`: the content-addressed LRU label cache (shared
//! by every connection worker via [`AppState`]) answers warm hits with the
//! pre-rendered JSON, and cold misses fan out on the shared runtime pool
//! while the server's own pool handles connection I/O.  `GET /stats` exposes
//! the cache's hit/miss/eviction counters.
//!
//! ## Endpoints
//!
//! | Method & path | Description |
//! |---|---|
//! | `GET /` | Landing page listing the demo datasets |
//! | `GET /datasets` | JSON list of available datasets |
//! | `GET /datasets/{name}/preview` | Dataset summary + design-view preview (JSON) |
//! | `GET /datasets/{name}/label` | Nutritional label as HTML |
//! | `GET /datasets/{name}/label.json` | Nutritional label as JSON |
//! | `GET /stats` | Label-cache hit/miss counters and occupancy (JSON) |
//! | `POST /labels` | Generate a label for an uploaded CSV (body = CSV, query = scoring spec) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod http;
pub mod router;
pub mod server;

pub use catalog::{DatasetCatalog, DatasetEntry};
pub use http::{Method, Request, Response, StatusCode};
pub use router::{route, AppState};
pub use server::{Server, ServerConfig};
