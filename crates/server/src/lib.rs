//! # rf-server
//!
//! A minimal, dependency-free HTTP server that exposes the Ranking Facts demo
//! flow described in the paper's §3: pick one of the pre-loaded datasets (or
//! upload a CSV), inspect the scoring-function design view, and generate the
//! nutritional label as HTML or JSON.
//!
//! The original system is a Python web application; this crate is the web
//! substrate of the reproduction, built for the north star's "heavy traffic"
//! goal.  Socket I/O is **event-driven**: all connections live on an
//! `rf-net` epoll reactor (accept loop, incremental request parsing,
//! buffered keep-alive response streaming), and only complete requests are
//! dispatched onto the [`rf_runtime::ThreadPool`] — so idle connections pin
//! zero workers and the pool is sized to the CPU work, not the client count.
//!
//! Label requests route through `rf-core`'s `LabelService`: the
//! content-addressed LRU label cache (shared by every pool worker via
//! [`AppState`]) answers warm hits with the pre-rendered JSON — streamed
//! `Arc`-shared, no per-connection copy — concurrent cold misses for one
//! key coalesce onto a single generation, and dataset uploads into the
//! catalogue invalidate the cache.  `GET /stats` exposes the cache's
//! hit/miss/eviction counters plus the coalescing counter.
//!
//! ## Endpoints
//!
//! | Method & path | Description |
//! |---|---|
//! | `GET /` | Landing page listing the demo datasets |
//! | `GET /datasets` | JSON list of available datasets |
//! | `GET /datasets/{name}/preview` | Dataset summary + design-view preview (JSON) |
//! | `GET /datasets/{name}/label` | Nutritional label as HTML |
//! | `GET /datasets/{name}/label.json` | Nutritional label as JSON |
//! | `GET /stats` | Label-cache + coalescing counters and occupancy (JSON) |
//! | `GET /metrics` | Prometheus text exposition: stage latency histograms (per shard + aggregated) and every counter family |
//! | `GET /debug/slow` | Recent slow-request span traces (JSON, newest first) |
//! | `POST /labels` | Generate a label for an uploaded CSV (body = CSV, query = scoring spec) |
//! | `POST /datasets/{name}` | Upload a CSV **into the catalogue** (replaces + invalidates cache) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod http;
pub mod router;
pub mod server;

pub use catalog::{DatasetCatalog, DatasetEntry};
pub use http::{Body, Method, Request, Response, StatusCode};
pub use router::{route, AdmissionProbe, AppState, Observability};
pub use server::{Server, ServerConfig, ServerOptions};
