//! The catalogue of pre-loaded demo datasets.
//!
//! "The demo user has the option to choose one of these datasets, or to
//! upload one of their own" (paper §3).  The catalogue holds the three
//! synthetic demonstration datasets together with a sensible default label
//! configuration for each, so a single GET produces the corresponding
//! nutritional label.

use rf_core::LabelConfig;
use rf_datasets::{CompasConfig, CsDepartmentsConfig, GermanCreditConfig, SynthScenarioConfig};
use rf_ranking::ScoringFunction;
use rf_table::Table;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// One pre-loaded dataset plus its default label configuration.
#[derive(Debug, Clone)]
pub struct DatasetEntry {
    /// Short identifier used in URLs (e.g. `cs-departments`).
    pub slug: String,
    /// Human-readable name.
    pub name: String,
    /// Short description shown on the landing page.
    pub description: String,
    /// The dataset itself.
    pub table: Arc<Table>,
    /// Default label configuration.
    pub config: LabelConfig,
}

/// Thread-safe catalogue of datasets, keyed by slug.
#[derive(Debug, Default)]
pub struct DatasetCatalog {
    entries: RwLock<BTreeMap<String, DatasetEntry>>,
}

impl DatasetCatalog {
    /// Creates an empty catalogue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the catalogue pre-loaded with the paper's three demonstration
    /// datasets (synthetic stand-ins; smaller row counts keep the demo fast).
    #[must_use]
    pub fn with_demo_datasets() -> Self {
        let catalog = Self::new();

        let cs = CsDepartmentsConfig::default()
            .generate()
            .expect("CS departments generator");
        let cs_config = LabelConfig::new(
            ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
                .expect("valid scoring"),
        )
        .with_top_k(10)
        .with_ingredient_count(2)
        .with_dataset_name("CS departments (synthetic CSR + NRC)")
        .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
        .with_diversity_attribute("DeptSizeBin")
        .with_diversity_attribute("Region");
        catalog.insert(DatasetEntry {
            slug: "cs-departments".to_string(),
            name: "CS departments".to_string(),
            description: "CS Rankings + NRC attributes; the Figure 1 walk-through".to_string(),
            table: Arc::new(cs),
            config: cs_config,
        });

        let compas = CompasConfig::with_rows(2_000)
            .generate()
            .expect("COMPAS generator");
        let compas_config = LabelConfig::new(
            ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)])
                .expect("valid scoring"),
        )
        .with_top_k(100)
        .with_dataset_name("COMPAS recidivism (synthetic)")
        .with_sensitive_attribute("race", ["African-American"])
        .with_sensitive_attribute("sex", ["Female"])
        .with_diversity_attribute("race")
        .with_diversity_attribute("age_cat");
        catalog.insert(DatasetEntry {
            slug: "compas".to_string(),
            name: "Criminal risk assessment (COMPAS)".to_string(),
            description: "Synthetic ProPublica-style recidivism scores".to_string(),
            table: Arc::new(compas),
            config: compas_config,
        });

        let credit = GermanCreditConfig::default()
            .generate()
            .expect("German credit generator");
        let credit_config = LabelConfig::new(
            ScoringFunction::from_pairs([
                ("credit_score", 0.7),
                ("employment_years", 0.2),
                ("credit_amount", -0.1),
            ])
            .expect("valid scoring"),
        )
        .with_top_k(100)
        .with_dataset_name("German credit (synthetic)")
        .with_sensitive_attribute("sex", ["female"])
        .with_sensitive_attribute("age_group", ["young"])
        .with_diversity_attribute("housing")
        .with_diversity_attribute("checking_status");
        catalog.insert(DatasetEntry {
            slug: "german-credit".to_string(),
            name: "Credit and loans (German credit)".to_string(),
            description: "Synthetic UCI German Credit applicants".to_string(),
            table: Arc::new(credit),
            config: credit_config,
        });

        catalog
    }

    /// Generates and registers a large synthetic ranking scenario
    /// (`rf_datasets::SynthScenarioConfig`) of the given row count,
    /// returning its slug (`synth-100k`, `synth-1m`, ...).
    ///
    /// The scenario is dense (no missing cells): the default missing-value
    /// policy is `Error`, and the Monte-Carlo weight jitter resets the
    /// policy to that default, so a sparse catalogued table could never
    /// serve a label under the default noise knobs.  It also uses two
    /// groups, because the fairness widget audits only binary sensitive
    /// attributes.  Other shapes remain available through
    /// `SynthScenarioConfig` directly (bench and CLI).
    pub fn register_synth_scenario(&self, rows: usize) -> String {
        let config = SynthScenarioConfig::with_rows(rows)
            .with_missingness(0.0)
            .with_group_count(2);
        let slug = config.slug();
        let table = config.generate().expect("synthetic scenario generator");
        let label_config = LabelConfig::new(
            ScoringFunction::from_pairs([("score_0", 0.5), ("score_1", 0.3), ("score_2", 0.2)])
                .expect("valid scoring"),
        )
        .with_top_k(100)
        .with_dataset_name(format!("Synthetic scenario ({rows} rows)"))
        .with_sensitive_attribute("group", ["g1"])
        .with_diversity_attribute("group");
        self.insert(DatasetEntry {
            slug: slug.clone(),
            name: format!("Synthetic scenario, {rows} rows"),
            description: "Parameterized large-scale synthetic ranking scenario".to_string(),
            table: Arc::new(table),
            config: label_config,
        });
        slug
    }

    /// Adds or replaces an entry.
    pub fn insert(&self, entry: DatasetEntry) {
        self.entries
            .write()
            .expect("catalog lock")
            .insert(entry.slug.clone(), entry);
    }

    /// Adds or replaces an entry unless doing so would grow the catalogue
    /// past `cap`; returns whether the entry went in.  Check and insert
    /// happen under one write-lock acquisition, so concurrent uploads
    /// cannot race past the bound (replacements are always allowed — they
    /// don't grow the catalogue).
    #[must_use]
    pub fn insert_bounded(&self, entry: DatasetEntry, cap: usize) -> bool {
        let mut entries = self.entries.write().expect("catalog lock");
        if !entries.contains_key(&entry.slug) && entries.len() >= cap {
            return false;
        }
        entries.insert(entry.slug.clone(), entry);
        true
    }

    /// Looks up an entry by slug.
    #[must_use]
    pub fn get(&self, slug: &str) -> Option<DatasetEntry> {
        self.entries
            .read()
            .expect("catalog lock")
            .get(slug)
            .cloned()
    }

    /// All entries, ordered by slug.
    #[must_use]
    pub fn list(&self) -> Vec<DatasetEntry> {
        self.entries
            .read()
            .expect("catalog lock")
            .values()
            .cloned()
            .collect()
    }

    /// Number of datasets in the catalogue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.read().expect("catalog lock").len()
    }

    /// `true` when the catalogue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.read().expect("catalog lock").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_catalog_has_three_datasets() {
        let catalog = DatasetCatalog::with_demo_datasets();
        assert_eq!(catalog.len(), 3);
        assert!(!catalog.is_empty());
        let slugs: Vec<String> = catalog.list().iter().map(|e| e.slug.clone()).collect();
        assert_eq!(slugs, vec!["compas", "cs-departments", "german-credit"]);
    }

    #[test]
    fn entries_validate_against_their_tables() {
        let catalog = DatasetCatalog::with_demo_datasets();
        for entry in catalog.list() {
            assert!(
                entry.config.validate(&entry.table).is_ok(),
                "default config for {} must validate",
                entry.slug
            );
        }
    }

    #[test]
    fn lookup_and_insert() {
        let catalog = DatasetCatalog::with_demo_datasets();
        assert!(catalog.get("cs-departments").is_some());
        assert!(catalog.get("nope").is_none());
        let mut entry = catalog.get("cs-departments").unwrap();
        entry.slug = "copy".to_string();
        catalog.insert(entry);
        assert_eq!(catalog.len(), 4);
    }

    #[test]
    fn empty_catalog() {
        let catalog = DatasetCatalog::new();
        assert!(catalog.is_empty());
        assert!(catalog.list().is_empty());
    }

    #[test]
    fn synth_scenario_registers_and_validates() {
        let catalog = DatasetCatalog::new();
        let slug = catalog.register_synth_scenario(2_000);
        assert_eq!(slug, "synth-2k");
        let entry = catalog.get("synth-2k").unwrap();
        assert_eq!(entry.table.num_rows(), 2_000);
        assert!(entry.config.validate(&entry.table).is_ok());
        // `validate` does not catch everything the widgets require (e.g.
        // the fairness widget's binary-attribute rule), so prove the entry
        // actually serves a label end to end.
        let config = entry.config.clone().with_monte_carlo_trials(2);
        let label = rf_core::NutritionalLabel::generate(&entry.table, &config)
            .expect("catalogued synth scenario must label");
        assert_eq!(label.ranking.len(), 2_000);
        // Registration is deterministic: re-registering replaces the entry
        // with an identical table.
        let before = entry.table.fingerprint();
        catalog.register_synth_scenario(2_000);
        assert_eq!(catalog.get("synth-2k").unwrap().table.fingerprint(), before);
    }
}
