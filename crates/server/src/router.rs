//! Request routing and handlers for the demo flow.

use crate::catalog::{DatasetCatalog, DatasetEntry};
use crate::http::{Method, Request, Response, StatusCode};
use rf_core::{DesignView, LabelConfig, LabelError, LabelService};
use rf_datasets::load_csv_str;
use rf_ranking::ScoringFunction;
use rf_table::{NormalizationMethod, Table};
use std::fmt::Write as _;
use std::sync::Arc;

/// A scrape hook for admission control, installed by
/// [`Server::run`](crate::Server::run) so `/stats` and `/metrics` can report
/// the controller's predicted-vs-measured service times without the router
/// depending on the server's internals.
pub type AdmissionProbe = Arc<dyn Fn() -> rf_core::AdmissionStats + Send + Sync>;

/// The observability surfaces a running server installs into its
/// [`AppState`] before accepting: per-shard stage histograms, the shared
/// slow-trace ring, and the admission scrape hook.
pub struct Observability {
    /// Per-reactor-shard stage histograms (the network-side `parse` and
    /// `write` stages), in shard order.
    pub shard_stages: Vec<Arc<rf_obs::StageHistograms>>,
    /// The bounded ring of slow request traces behind `GET /debug/slow`.
    pub trace_ring: Arc<rf_obs::TraceRing>,
    /// Admission-control scrape hook, when a server front-end exists.
    pub admission: Option<AdmissionProbe>,
}

impl std::fmt::Debug for Observability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observability")
            .field("shards", &self.shard_stages.len())
            .field("trace_ring_capacity", &self.trace_ring.capacity())
            .field("admission", &self.admission.is_some())
            .finish()
    }
}

/// Everything a request handler needs: the dataset catalogue plus the shared
/// [`LabelService`] every label request routes through.  One instance is
/// `Arc`-shared across all connection workers, so the label cache and its
/// counters are global to the server.
#[derive(Debug)]
pub struct AppState {
    /// The pre-loaded datasets.
    pub catalog: DatasetCatalog,
    /// The cached label generator.
    pub labels: LabelService,
    /// The live counters of every reactor shard, installed by
    /// [`Server::run`](crate::Server::run) before the event loops start.
    /// Empty until then (library users and router unit tests have no I/O
    /// plane), in which case `/stats` reports `network: null`.
    network: std::sync::Mutex<Vec<Arc<rf_net::ReactorMetrics>>>,
    /// The running server's observability surfaces, installed alongside the
    /// reactor metrics.  `None` for library users and router unit tests —
    /// `/metrics` then serves the process-wide service-side histograms and
    /// counters only, and `/debug/slow` an empty ring.
    observability: std::sync::Mutex<Option<Observability>>,
}

impl AppState {
    /// Wraps a catalogue with a fresh default [`LabelService`].
    #[must_use]
    pub fn new(catalog: DatasetCatalog) -> Self {
        Self::with_service(catalog, LabelService::new())
    }

    /// Wraps a catalogue with an explicit [`LabelService`] — the hook the
    /// server binary uses to apply its cache-policy flags (TTL, entry and
    /// byte bounds).
    #[must_use]
    pub fn with_service(catalog: DatasetCatalog, labels: LabelService) -> Self {
        AppState {
            catalog,
            labels,
            network: std::sync::Mutex::new(Vec::new()),
            observability: std::sync::Mutex::new(None),
        }
    }

    /// Installs (replacing any previous set) the observability surfaces
    /// `/metrics` and `/debug/slow` serve.  Called once per
    /// [`Server::run`](crate::Server::run), before any shard accepts.
    pub fn install_observability(&self, observability: Observability) {
        *self.observability.lock().expect("observability lock") = Some(observability);
    }

    /// Runs `f` against the installed observability surfaces, if any.
    fn with_observability<T>(&self, f: impl FnOnce(&Observability) -> T) -> Option<T> {
        self.observability
            .lock()
            .expect("observability lock")
            .as_ref()
            .map(f)
    }

    /// The admission controller's current stats, when a server is running.
    #[must_use]
    pub fn admission_snapshot(&self) -> Option<rf_core::AdmissionStats> {
        self.with_observability(|obs| obs.admission.as_ref().map(|probe| probe()))
            .flatten()
    }

    /// Installs (replacing any previous set) the reactor counter blocks
    /// `/stats` rolls up.  Called once per [`Server::run`](crate::Server::run)
    /// with every shard's metrics, before any shard starts accepting.
    pub fn install_reactor_metrics(&self, shards: Vec<Arc<rf_net::ReactorMetrics>>) {
        *self.network.lock().expect("network registry lock") = shards;
    }

    /// A consistent snapshot of the I/O plane, or `None` when no server is
    /// running over this state.  Uses rf-net's closed-before-accepted
    /// snapshot discipline, so `active ≤ accepted` holds per shard and in
    /// the totals even while a scrape races the reactors.
    #[must_use]
    pub fn network_snapshot(&self) -> Option<rf_core::NetworkStats> {
        let shards = self.network.lock().expect("network registry lock");
        if shards.is_empty() {
            return None;
        }
        let (snapshots, totals) = rf_net::aggregate(&shards);
        let convert = |snap: &rf_net::ReactorSnapshot| rf_core::ReactorCounters {
            accepted: snap.accepted,
            active: snap.active,
            dispatched: snap.dispatched,
            completions: snap.completions,
            shed_connections: snap.shed_connections,
            shed_requests: snap.shed_requests,
        };
        Some(rf_core::NetworkStats {
            reactors: snapshots.iter().map(convert).collect(),
            totals: convert(&totals),
        })
    }

    /// The demo state: the paper's three datasets plus a fresh service.
    #[must_use]
    pub fn with_demo_datasets() -> Self {
        Self::new(DatasetCatalog::with_demo_datasets())
    }

    /// Adds or replaces a catalogue dataset **and invalidates the label
    /// cache** — the invalidation hook for mutable catalogues.
    ///
    /// The cache is content-addressed, so entries for the *old* bytes can
    /// never be served for the *new* bytes; what the invalidation prevents
    /// is the other staleness: labels for the replaced dataset lingering at
    /// full LRU weight even though no catalogue path can reach them again.
    /// Dropping them keeps the bounded cache's capacity working for
    /// reachable labels (counters keep their history).
    pub fn insert_dataset(&self, entry: DatasetEntry) {
        self.catalog.insert(entry);
        self.labels.clear_cache();
    }

    /// [`AppState::insert_dataset`] behind an atomic catalogue bound:
    /// returns `false` (inserting and invalidating nothing) when a *new*
    /// slug would grow the catalogue past `cap`.  The unauthenticated
    /// upload endpoint goes through this so concurrent uploads cannot race
    /// past the bound.
    #[must_use]
    pub fn try_insert_dataset(&self, entry: DatasetEntry, cap: usize) -> bool {
        if self.catalog.insert_bounded(entry, cap) {
            self.labels.clear_cache();
            true
        } else {
            false
        }
    }
}

/// Routes a request to its handler and produces the response.
#[must_use]
pub fn route(state: &AppState, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();

    match (request.method, segments.as_slice()) {
        (Method::Get, []) => landing_page(&state.catalog),
        (Method::Get, ["datasets"]) => list_datasets(&state.catalog),
        (Method::Get, ["datasets", slug, "preview"]) => dataset_preview(&state.catalog, slug),
        (Method::Get, ["datasets", slug, "label"]) => dataset_label(state, slug, request, false),
        (Method::Get, ["datasets", slug, "label.json"]) => {
            dataset_label(state, slug, request, true)
        }
        (Method::Get, ["stats"]) => service_stats(state),
        (Method::Get, ["metrics"]) => metrics_exposition(state),
        (Method::Get, ["debug", "slow"]) => debug_slow(state),
        (Method::Post, ["labels"]) => uploaded_label(state, request),
        (Method::Post, ["datasets", slug]) => upload_dataset(state, slug, request),
        (Method::Post, _) | (Method::Get, _) => Response::text(StatusCode::NotFound, "not found"),
    }
}

/// `GET /stats` — label-cache counters, the process-wide preparation
/// count, and (when a server is running) the per-reactor I/O counters, for
/// observing hit and shed rates in production.
fn service_stats(state: &AppState) -> Response {
    let mut stats = state.labels.stats();
    stats.network = state.network_snapshot();
    stats.admission = state.admission_snapshot();
    stats.datasets = Some(
        state
            .catalog
            .list()
            .iter()
            .map(|entry| rf_core::DatasetTableStats {
                slug: entry.slug.clone(),
                rows: entry.table.num_rows() as u64,
                columns: entry.table.num_columns() as u64,
            })
            .collect(),
    );
    match serde_json::to_string_pretty(&stats) {
        Ok(json) => Response::json(json),
        Err(err) => Response::text(StatusCode::InternalServerError, err.to_string()),
    }
}

/// Writes one `# TYPE` header for a metric family.
fn prom_type(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Writes one sample line, with or without labels.
fn prom_sample(out: &mut String, name: &str, labels: &str, value: u64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// Writes one histogram series (cumulative `le` buckets, `+Inf`, `_sum`,
/// `_count`) for a [`rf_obs::HistogramSnapshot`].  Empty trailing buckets
/// are trimmed — a new higher bucket appearing in a later scrape only adds
/// label sets, it never shrinks an existing cumulative count.
fn prom_histogram(out: &mut String, name: &str, labels: &str, snap: &rf_obs::HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let top = snap
        .buckets
        .iter()
        .rposition(|&count| count > 0)
        .unwrap_or(0)
        .min(rf_obs::BUCKET_COUNT - 2);
    let mut cumulative = 0u64;
    for index in 0..=top {
        cumulative += snap.buckets[index];
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
            rf_obs::LatencyHistogram::bucket_upper_bound(index)
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        snap.count()
    );
    prom_sample(out, &format!("{name}_sum"), labels, snap.sum_micros);
    prom_sample(out, &format!("{name}_count"), labels, snap.count());
}

/// The service-side stages recorded into the process-wide histograms (the
/// worker pool is shared across shards); `parse` and `write` are per-shard.
const SERVICE_SIDE_STAGES: [rf_obs::Stage; 7] = [
    rf_obs::Stage::Admission,
    rf_obs::Stage::QueueWait,
    rf_obs::Stage::CacheLookup,
    rf_obs::Stage::CacheDisk,
    rf_obs::Stage::Prepare,
    rf_obs::Stage::Render,
    rf_obs::Stage::McTrials,
];

/// `GET /metrics` — Prometheus text exposition (version 0.0.4) of the stage
/// latency histograms plus every counter family the stack already keeps:
/// cache, scheduler, Monte-Carlo, per-reactor I/O, and admission control.
/// Stage histograms carry a `shard` label: `"0".."N-1"` for each reactor's
/// network-side stages, `"service"` for the shared worker-pool stages, and
/// `"all"` for the merge.  Counters only ever grow between scrapes; gauges
/// (`rf_*_pending`, `rf_reactor_active`, queue depth, occupancy) move both
/// ways.
fn metrics_exposition(state: &AppState) -> Response {
    let stats = state.labels.stats();
    let mut out = String::new();

    prom_type(&mut out, "rf_stage_duration_microseconds", "histogram");
    let service = rf_obs::service_stages().snapshot();
    let shard_snapshots: Vec<rf_obs::StageSnapshot> = state
        .with_observability(|obs| obs.shard_stages.iter().map(|s| s.snapshot()).collect())
        .unwrap_or_default();
    let mut all = service.clone();
    for snapshot in &shard_snapshots {
        all = all.merge(snapshot);
    }
    for (shard, snapshot) in shard_snapshots.iter().enumerate() {
        for stage in [rf_obs::Stage::Parse, rf_obs::Stage::Write] {
            prom_histogram(
                &mut out,
                "rf_stage_duration_microseconds",
                &format!("stage=\"{}\",shard=\"{shard}\"", stage.name()),
                snapshot.get(stage),
            );
        }
    }
    for stage in SERVICE_SIDE_STAGES {
        prom_histogram(
            &mut out,
            "rf_stage_duration_microseconds",
            &format!("stage=\"{}\",shard=\"service\"", stage.name()),
            service.get(stage),
        );
    }
    for stage in rf_obs::Stage::ALL {
        prom_histogram(
            &mut out,
            "rf_stage_duration_microseconds",
            &format!("stage=\"{}\",shard=\"all\"", stage.name()),
            all.get(stage),
        );
    }

    for (name, value) in [
        ("rf_cache_hits_total", stats.cache.hits),
        ("rf_cache_misses_total", stats.cache.misses),
        ("rf_cache_evictions_total", stats.cache.evictions),
        ("rf_cache_expired_total", stats.cache.expired),
        ("rf_label_preparations_total", stats.preparations),
        ("rf_label_coalesced_total", stats.coalesced),
        (
            "rf_scheduler_executed_jobs_total",
            stats.scheduler.executed_jobs,
        ),
        (
            "rf_scheduler_panicked_jobs_total",
            stats.scheduler.panicked_jobs,
        ),
        ("rf_scheduler_steals_total", stats.scheduler.steals),
        ("rf_mc_runs_total", stats.monte_carlo.runs),
        (
            "rf_mc_trials_completed_total",
            stats.monte_carlo.trials_completed,
        ),
        ("rf_mc_truncated_total", stats.monte_carlo.truncated),
    ] {
        prom_type(&mut out, name, "counter");
        prom_sample(&mut out, name, "", value);
    }
    for (name, value) in [
        ("rf_cache_entries", stats.cache.entries as u64),
        ("rf_cache_bytes", stats.cache.bytes as u64),
        (
            "rf_scheduler_queue_depth",
            stats.scheduler.queue_depth as u64,
        ),
        ("rf_scheduler_workers", stats.scheduler.workers as u64),
    ] {
        prom_type(&mut out, name, "gauge");
        prom_sample(&mut out, name, "", value);
    }

    // The on-disk tier's families only exist when the tier is configured —
    // a memory-only deployment (including degraded mode after an unusable
    // cache directory) exposes no `rf_disk_*` series at all.
    if let Some(disk) = &stats.disk {
        for (name, value) in [
            ("rf_disk_hits_total", disk.disk_hits),
            ("rf_disk_misses_total", disk.disk_misses),
            ("rf_disk_promotions_total", disk.promotions),
            ("rf_disk_write_errors_total", disk.write_errors),
            ("rf_disk_corrupt_dropped_total", disk.corrupt_dropped),
            ("rf_disk_pruned_total", disk.pruned),
        ] {
            prom_type(&mut out, name, "counter");
            prom_sample(&mut out, name, "", value);
        }
        for (name, value) in [
            ("rf_disk_entries", disk.entries),
            ("rf_disk_bytes", disk.bytes),
            ("rf_disk_max_bytes", disk.max_bytes),
        ] {
            prom_type(&mut out, name, "gauge");
            prom_sample(&mut out, name, "", value);
        }
    }

    if let Some(network) = state.network_snapshot() {
        let series = |counters: &rf_core::ReactorCounters| {
            [
                ("rf_reactor_accepted_total", "counter", counters.accepted),
                ("rf_reactor_active", "gauge", counters.active),
                (
                    "rf_reactor_dispatched_total",
                    "counter",
                    counters.dispatched,
                ),
                (
                    "rf_reactor_completions_total",
                    "counter",
                    counters.completions,
                ),
                (
                    "rf_reactor_shed_connections_total",
                    "counter",
                    counters.shed_connections,
                ),
                (
                    "rf_reactor_shed_requests_total",
                    "counter",
                    counters.shed_requests,
                ),
            ]
        };
        for (name, kind, _) in series(&network.totals) {
            prom_type(&mut out, name, kind);
        }
        for (shard, counters) in network.reactors.iter().enumerate() {
            for (name, _, value) in series(counters) {
                prom_sample(&mut out, name, &format!("shard=\"{shard}\""), value);
            }
        }
        for (name, _, value) in series(&network.totals) {
            prom_sample(&mut out, name, "shard=\"all\"", value);
        }
    }

    if let Some(admission) = state.admission_snapshot() {
        for (name, value) in [
            ("rf_admission_pending", admission.pending),
            ("rf_admission_max_pending", admission.max_pending),
            (
                "rf_admission_ewma_service_micros",
                admission.ewma_service_micros,
            ),
            (
                "rf_admission_measured_service_micros",
                admission.measured_service_micros,
            ),
        ] {
            prom_type(&mut out, name, "gauge");
            prom_sample(&mut out, name, "", value);
        }
    }
    if let Some(recorded) = state.with_observability(|obs| obs.trace_ring.recorded()) {
        prom_type(&mut out, "rf_traces_recorded_total", "counter");
        prom_sample(&mut out, "rf_traces_recorded_total", "", recorded);
    }

    Response::prometheus(out)
}

/// `GET /debug/slow` — the newest-first ring of requests that exceeded the
/// `--slow-threshold-ms` budget, as JSON: ids, per-stage timings, cache
/// outcome, truncation, and shed reason.
fn debug_slow(state: &AppState) -> Response {
    let Some((capacity, recorded, traces)) = state.with_observability(|obs| {
        (
            obs.trace_ring.capacity(),
            obs.trace_ring.recorded(),
            obs.trace_ring.snapshot(),
        )
    }) else {
        return Response::json(r#"{"capacity":0,"recorded":0,"traces":[]}"#.to_string());
    };
    let traces: Vec<serde_json::Value> = traces
        .iter()
        .map(|trace| {
            let stages: Vec<serde_json::Value> = rf_obs::Stage::ALL
                .iter()
                .map(|stage| {
                    serde_json::json!({
                        "stage": stage.name(),
                        "micros": trace.stage_micros[stage.index()],
                    })
                })
                .collect();
            serde_json::json!({
                "id": trace.id.to_string(),
                "total_micros": trace.total_micros,
                "stages": stages,
                "cache": trace.cache.name(),
                "truncated": trace.truncated,
                "shed": trace.shed.map(rf_obs::ShedReason::name),
            })
        })
        .collect();
    let body = serde_json::json!({
        "capacity": capacity,
        "recorded": recorded,
        "traces": traces,
    });
    match serde_json::to_string_pretty(&body) {
        Ok(json) => Response::json(json),
        Err(err) => Response::text(StatusCode::InternalServerError, err.to_string()),
    }
}

/// Maps a label-generation error to a response: caller mistakes are 400,
/// internal rendering/scheduling failures are 500.
fn label_error(err: &LabelError) -> Response {
    let status = match err {
        LabelError::Serialization { .. } | LabelError::WidgetPanic { .. } => {
            StatusCode::InternalServerError
        }
        _ => StatusCode::BadRequest,
    };
    Response::text(status, err.to_string())
}

/// `GET /` — landing page with links to the demo datasets.
fn landing_page(catalog: &DatasetCatalog) -> Response {
    let mut items = String::new();
    for entry in catalog.list() {
        items.push_str(&format!(
            "<li><a href=\"/datasets/{slug}/label\">{name}</a> &mdash; {desc} \
             (<a href=\"/datasets/{slug}/label.json\">json</a>, \
             <a href=\"/datasets/{slug}/preview\">preview</a>)</li>",
            slug = entry.slug,
            name = entry.name,
            desc = entry.description
        ));
    }
    Response::html(format!(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>Ranking Facts</title></head>\
         <body><h1>Ranking Facts</h1>\
         <p>A nutritional label for rankings — demonstration datasets:</p>\
         <ul>{items}</ul>\
         <p>POST a CSV to <code>/labels?score_attrs=a,b&amp;weights=0.5,0.5&amp;sensitive=group&amp;k=10</code> \
         to label your own data.</p></body></html>"
    ))
}

/// `GET /datasets` — JSON list of datasets.
fn list_datasets(catalog: &DatasetCatalog) -> Response {
    let list: Vec<serde_json::Value> = catalog
        .list()
        .iter()
        .map(|entry| {
            serde_json::json!({
                "slug": entry.slug,
                "name": entry.name,
                "description": entry.description,
                "rows": entry.table.num_rows(),
                "columns": entry.table.num_columns(),
            })
        })
        .collect();
    Response::json(serde_json::to_string_pretty(&list).unwrap_or_else(|_| "[]".to_string()))
}

/// `GET /datasets/{slug}/preview` — design-view preview as JSON.
fn dataset_preview(catalog: &DatasetCatalog, slug: &str) -> Response {
    let Some(entry) = catalog.get(slug) else {
        return Response::text(StatusCode::NotFound, format!("unknown dataset `{slug}`"));
    };
    match DesignView::build(&entry.table, NormalizationMethod::MinMax, 10, 10) {
        Ok(view) => match serde_json::to_string_pretty(&view) {
            Ok(json) => Response::json(json),
            Err(err) => Response::text(StatusCode::InternalServerError, err.to_string()),
        },
        Err(err) => Response::text(StatusCode::InternalServerError, err.to_string()),
    }
}

/// Upper bound on the `trials` query override.  Every trial perturbs and
/// re-ranks the whole dataset, so an unauthenticated request must not be
/// able to schedule unbounded work on the label hot path.
pub const MAX_MC_TRIALS: usize = 1_024;

/// Applies the Monte-Carlo stability query overrides (`trials`,
/// `data_noise`, `weight_noise`, `mc_seed`, `deadline_ms`, `relaxed_fp`) to a label
/// configuration, so the §2.2 uncertainty detail is tunable per request
/// without recompiling.  The knobs are part of the configuration
/// fingerprint, so each combination is its own cache entry.  `trials` is
/// capped at [`MAX_MC_TRIALS`]; `deadline_ms` caps the estimator's wall
/// clock — past it the label ships the trials that completed, flagged
/// `truncated` in the widget detail.
fn apply_monte_carlo_overrides(
    mut config: LabelConfig,
    request: &Request,
) -> Result<LabelConfig, Box<Response>> {
    if let Some(trials) = request.query_param("trials") {
        match trials.parse::<usize>() {
            Ok(trials) if trials <= MAX_MC_TRIALS => {
                config = config.with_monte_carlo_trials(trials);
            }
            Ok(_) => {
                return Err(Box::new(Response::text(
                    StatusCode::BadRequest,
                    format!("trials capped at {MAX_MC_TRIALS} (each trial re-ranks the dataset)"),
                )))
            }
            Err(_) => {
                return Err(Box::new(Response::text(
                    StatusCode::BadRequest,
                    format!("invalid trials `{trials}`"),
                )))
            }
        }
    }
    fn noise_param(request: &Request, name: &str) -> Result<Option<f64>, Box<Response>> {
        let Some(raw) = request.query_param(name) else {
            return Ok(None);
        };
        match raw.parse::<f64>() {
            Ok(value) if value.is_finite() && value >= 0.0 => Ok(Some(value)),
            _ => Err(Box::new(Response::text(
                StatusCode::BadRequest,
                format!("invalid {name} `{raw}` (need a non-negative finite fraction)"),
            ))),
        }
    }
    let data_noise = noise_param(request, "data_noise")?;
    let weight_noise = noise_param(request, "weight_noise")?;
    if data_noise.is_some() || weight_noise.is_some() {
        let data = data_noise.unwrap_or(config.monte_carlo.data_noise);
        let weight = weight_noise.unwrap_or(config.monte_carlo.weight_noise);
        config = config.with_monte_carlo_noise(data, weight);
    }
    if let Some(seed) = request.query_param("mc_seed") {
        match seed.parse::<u64>() {
            Ok(seed) => config = config.with_monte_carlo_seed(seed),
            Err(_) => {
                return Err(Box::new(Response::text(
                    StatusCode::BadRequest,
                    format!("invalid mc_seed `{seed}`"),
                )))
            }
        }
    }
    if let Some(deadline) = request.query_param("deadline_ms") {
        match deadline.parse::<u64>() {
            Ok(deadline) => {
                config = config.with_monte_carlo_deadline_millis(Some(deadline));
            }
            Err(_) => {
                return Err(Box::new(Response::text(
                    StatusCode::BadRequest,
                    format!("invalid deadline_ms `{deadline}` (need whole milliseconds)"),
                )))
            }
        }
    }
    if let Some(relaxed) = request.query_param("relaxed_fp") {
        match relaxed {
            "true" | "1" | "on" => config = config.with_monte_carlo_relaxed_fp(true),
            "false" | "0" | "off" => config = config.with_monte_carlo_relaxed_fp(false),
            other => {
                return Err(Box::new(Response::text(
                    StatusCode::BadRequest,
                    format!("invalid relaxed_fp `{other}` (need true/false, 1/0, or on/off)"),
                )))
            }
        }
    }
    Ok(config)
}

/// `GET /datasets/{slug}/label[.json]` — the label, via the shared
/// [`LabelService`].
///
/// The query parameter `k` overrides the default top-k; `trials`,
/// `data_noise`, `weight_noise` and `mc_seed` tune the Monte-Carlo stability
/// detail (`trials=0` disables it).  A warm cache hit answers the JSON
/// flavour with the pre-rendered document — no analysis, no
/// re-serialization.
fn dataset_label(state: &AppState, slug: &str, request: &Request, json: bool) -> Response {
    let Some(entry) = state.catalog.get(slug) else {
        return Response::text(StatusCode::NotFound, format!("unknown dataset `{slug}`"));
    };
    let mut config = entry.config.clone();
    if let Some(k) = request.query_param("k") {
        match k.parse::<usize>() {
            Ok(k) => config = config.with_top_k(k),
            Err(_) => {
                return Response::text(StatusCode::BadRequest, format!("invalid k `{k}`"));
            }
        }
    }
    config = match apply_monte_carlo_overrides(config, request) {
        Ok(config) => config,
        Err(response) => return *response,
    };
    // The catalogue already shares its tables via `Arc`, so a cache miss
    // routes to the pipeline without copying the dataset.
    match state.labels.label(&entry.table, &Arc::new(config)) {
        Ok(cached) => {
            if json {
                // Zero-copy: the response streams the cache's rendered
                // document, shared by every concurrent download.
                Response::json_shared(Arc::clone(&cached.json))
            } else {
                Response::html(cached.label.to_html())
            }
        }
        Err(err) => label_error(&err),
    }
}

/// `POST /labels` — generate a label for an uploaded CSV.
///
/// Query parameters:
/// * `score_attrs` — comma-separated scoring attributes (required),
/// * `weights` — comma-separated weights (defaults to equal weights),
/// * `sensitive` — a binary sensitive attribute (optional),
/// * `protected` — the protected value of that attribute (optional; defaults
///   to auditing every value, as the tool does),
/// * `diversity` — comma-separated diversity attributes (optional),
/// * `k` — top-k (default 10).
///
/// Uploads route through the shared [`LabelService`] too: the cache is
/// content-addressed, so re-posting a byte-identical CSV with the same
/// parameters is a warm hit.
fn uploaded_label(state: &AppState, request: &Request) -> Response {
    let (table, _summary) = match load_csv_str(&request.body) {
        Ok(loaded) => loaded,
        Err(err) => return Response::text(StatusCode::BadRequest, format!("CSV error: {err}")),
    };

    let config = match upload_config(&table, request, "uploaded dataset") {
        Ok(config) => config,
        Err(response) => return *response,
    };

    match state.labels.label(&Arc::new(table), &Arc::new(config)) {
        Ok(cached) => {
            let wants_json = request
                .headers
                .get("accept")
                .map(|accept| accept.contains("application/json"))
                .unwrap_or(false);
            if wants_json {
                Response::json_shared(Arc::clone(&cached.json))
            } else {
                Response::html(cached.label.to_html())
            }
        }
        Err(err) => label_error(&err),
    }
}

/// Upper bound on catalogue datasets.  Every entry pins its table in
/// memory for the server's lifetime (the catalogue, unlike the label
/// cache, has no eviction), so the unauthenticated upload endpoint must
/// not be a route to unbounded growth.  Replacing an existing slug is
/// always allowed.
pub const MAX_CATALOG_DATASETS: usize = 64;

/// `POST /datasets/{slug}` — upload a CSV **into the catalogue** (body =
/// CSV, query = the same scoring spec as `POST /labels`, plus optional
/// `name` and `description`).  Replaces any existing dataset under that
/// slug and invalidates the label cache via
/// [`AppState::insert_dataset`], so the old dataset's labels cannot linger.
fn upload_dataset(state: &AppState, slug: &str, request: &Request) -> Response {
    if slug.is_empty()
        || !slug
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Response::text(
            StatusCode::BadRequest,
            format!("invalid dataset slug `{slug}` (use letters, digits, `-`, `_`)"),
        );
    }
    let (table, _summary) = match load_csv_str(&request.body) {
        Ok(loaded) => loaded,
        Err(err) => return Response::text(StatusCode::BadRequest, format!("CSV error: {err}")),
    };
    let name = request.query_param("name").unwrap_or(slug).to_string();
    let config = match upload_config(&table, request, &name) {
        Ok(config) => config,
        Err(response) => return *response,
    };
    // Validate now so a broken upload is rejected instead of parked in the
    // catalogue to fail every later label request.
    if let Err(err) = config.validate(&table) {
        return label_error(&err);
    }
    let entry = DatasetEntry {
        slug: slug.to_string(),
        name,
        description: request
            .query_param("description")
            .unwrap_or("uploaded dataset")
            .to_string(),
        table: Arc::new(table),
        config,
    };
    let summary = serde_json::json!({
        "slug": entry.slug,
        "name": entry.name,
        "rows": entry.table.num_rows(),
        "columns": entry.table.num_columns(),
        "cache_cleared": true,
    });
    if !state.try_insert_dataset(entry, MAX_CATALOG_DATASETS) {
        return Response::text(
            StatusCode::ServiceUnavailable,
            format!(
                "catalogue is full ({MAX_CATALOG_DATASETS} datasets); re-upload an existing slug"
            ),
        );
    }
    Response::json(serde_json::to_string_pretty(&summary).unwrap_or_else(|_| "{}".to_string()))
}

/// Parses the shared upload scoring spec (`score_attrs`, `weights`,
/// `sensitive`, `protected`, `diversity`, `k`) into a [`LabelConfig`].
///
/// Errors come back as ready-made 400 responses (boxed: the success path
/// should not pay for the error path's size).
fn upload_config(
    table: &Table,
    request: &Request,
    dataset_name: &str,
) -> Result<LabelConfig, Box<Response>> {
    let Some(score_attrs) = request.query_param("score_attrs") else {
        return Err(Box::new(Response::text(
            StatusCode::BadRequest,
            "missing `score_attrs` query parameter",
        )));
    };
    let attrs: Vec<&str> = score_attrs.split(',').filter(|s| !s.is_empty()).collect();
    if attrs.is_empty() {
        return Err(Box::new(Response::text(
            StatusCode::BadRequest,
            "no scoring attributes given",
        )));
    }
    let weights: Vec<f64> = match request.query_param("weights") {
        Some(spec) => {
            let parsed: Result<Vec<f64>, _> = spec.split(',').map(str::parse::<f64>).collect();
            match parsed {
                Ok(w) if w.len() == attrs.len() => w,
                Ok(_) => {
                    return Err(Box::new(Response::text(
                        StatusCode::BadRequest,
                        "weights and score_attrs must have the same length",
                    )))
                }
                Err(err) => {
                    return Err(Box::new(Response::text(
                        StatusCode::BadRequest,
                        format!("invalid weights: {err}"),
                    )))
                }
            }
        }
        None => vec![1.0; attrs.len()],
    };

    let scoring =
        match ScoringFunction::from_pairs(attrs.iter().copied().zip(weights.iter().copied())) {
            Ok(s) => s,
            Err(err) => {
                return Err(Box::new(Response::text(
                    StatusCode::BadRequest,
                    err.to_string(),
                )))
            }
        };

    let k = match request.query_param("k").map(str::parse::<usize>) {
        Some(Ok(k)) => k,
        Some(Err(_)) => {
            return Err(Box::new(Response::text(
                StatusCode::BadRequest,
                "invalid k",
            )))
        }
        None => 10,
    };

    let mut config = LabelConfig::new(scoring)
        .with_top_k(k.min(table.num_rows()))
        .with_dataset_name(dataset_name);
    if let Some(sensitive) = request.query_param("sensitive") {
        if let Some(protected) = request.query_param("protected") {
            config = config.with_sensitive_attribute(sensitive, [protected.to_string()]);
        } else {
            // Audit every value of the binary attribute, as the tool does.
            match table.categorical_column(sensitive) {
                Ok(labels) => {
                    let mut values: Vec<String> = Vec::new();
                    for label in labels.into_iter().flatten() {
                        if !values.contains(&label) {
                            values.push(label);
                        }
                    }
                    config = config.with_sensitive_attribute(sensitive, values);
                }
                Err(err) => {
                    return Err(Box::new(Response::text(
                        StatusCode::BadRequest,
                        err.to_string(),
                    )));
                }
            }
        }
        config = config.with_diversity_attribute(sensitive);
    }
    if let Some(diversity) = request.query_param("diversity") {
        for attr in diversity.split(',').filter(|s| !s.is_empty()) {
            config = config.with_diversity_attribute(attr);
        }
    }
    // Uploads accept the same Monte-Carlo stability overrides as the
    // catalogue label endpoints.
    apply_monte_carlo_overrides(config, request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn get(path_and_query: &str) -> Request {
        let raw = format!("GET {path_and_query} HTTP/1.1\r\n\r\n");
        Request::read_from(raw.as_bytes()).unwrap()
    }

    fn demo_catalog() -> AppState {
        AppState::with_demo_datasets()
    }

    #[test]
    fn landing_page_lists_datasets() {
        let catalog = demo_catalog();
        let resp = route(&catalog, &get("/"));
        assert_eq!(resp.status, StatusCode::Ok);
        assert!(resp.body.contains("cs-departments"));
        assert!(resp.body.contains("compas"));
        assert!(resp.body.contains("german-credit"));
    }

    #[test]
    fn datasets_endpoint_returns_json() {
        let catalog = demo_catalog();
        let resp = route(&catalog, &get("/datasets"));
        assert_eq!(resp.status, StatusCode::Ok);
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(value.as_array().unwrap().len(), 3);
    }

    #[test]
    fn preview_endpoint_returns_design_view() {
        let catalog = demo_catalog();
        let resp = route(&catalog, &get("/datasets/cs-departments/preview"));
        assert_eq!(resp.status, StatusCode::Ok);
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        assert!(value.get("numeric_attributes").is_some());
        assert!(value.get("attribute_previews").is_some());
    }

    #[test]
    fn label_endpoint_returns_html_and_json() {
        let catalog = demo_catalog();
        let html = route(&catalog, &get("/datasets/cs-departments/label"));
        assert_eq!(html.status, StatusCode::Ok);
        assert!(html.body.contains("Ranking Facts"));
        assert!(html.content_type.starts_with("text/html"));

        let json = route(&catalog, &get("/datasets/cs-departments/label.json"));
        assert_eq!(json.status, StatusCode::Ok);
        let value: serde_json::Value = serde_json::from_str(&json.body).unwrap();
        assert!(value.get("fairness").is_some());
    }

    #[test]
    fn label_endpoint_honours_k_override() {
        let catalog = demo_catalog();
        let resp = route(&catalog, &get("/datasets/cs-departments/label.json?k=5"));
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(value["top_k_rows"].as_array().unwrap().len(), 5);
        // Invalid k is rejected.
        let bad = route(&catalog, &get("/datasets/cs-departments/label?k=banana"));
        assert_eq!(bad.status, StatusCode::BadRequest);
        // k larger than the dataset is rejected by validation.
        let too_big = route(&catalog, &get("/datasets/cs-departments/label?k=100000"));
        assert_eq!(too_big.status, StatusCode::BadRequest);
    }

    #[test]
    fn repeated_label_requests_hit_the_cache_byte_identically() {
        let state = demo_catalog();
        let cold = route(&state, &get("/datasets/german-credit/label.json?k=7"));
        assert_eq!(cold.status, StatusCode::Ok);
        let warm = route(&state, &get("/datasets/german-credit/label.json?k=7"));
        assert_eq!(cold.body, warm.body, "warm hit must be byte-identical");
        let stats = state.labels.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        // A different k is a different key.
        let _ = route(&state, &get("/datasets/german-credit/label.json?k=8"));
        assert_eq!(state.labels.stats().cache.misses, 2);
    }

    #[test]
    fn stats_endpoint_exposes_cache_counters() {
        let state = demo_catalog();
        let _ = route(&state, &get("/datasets/cs-departments/label.json"));
        let _ = route(&state, &get("/datasets/cs-departments/label.json"));
        let resp = route(&state, &get("/stats"));
        assert_eq!(resp.status, StatusCode::Ok);
        assert_eq!(resp.content_type, "application/json");
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(value["cache"]["hits"], 1);
        assert_eq!(value["cache"]["misses"], 1);
        assert_eq!(value["cache"]["entries"], 1);
        assert!(value["cache"]["bytes"].as_u64().unwrap() > 0);
        assert!(value["preparations"].as_u64().unwrap() >= 1);
    }

    #[test]
    fn stats_endpoint_exposes_scheduler_observability() {
        // The satellite contract: panicked jobs, queue depth, and steal
        // counts are visible over HTTP alongside the cache counters.
        let state = demo_catalog();
        let _ = route(&state, &get("/datasets/cs-departments/label.json"));
        let resp = route(&state, &get("/stats"));
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        let scheduler = &value["scheduler"];
        assert!(scheduler["workers"].as_u64().unwrap() >= 1);
        assert!(scheduler["executed_jobs"].as_u64().unwrap() >= 1);
        assert!(scheduler["panicked_jobs"].as_u64().is_some());
        assert!(scheduler["queue_depth"].as_u64().is_some());
        assert!(scheduler["steals"].as_u64().is_some());
        // The cache side gained the TTL expiry counter.
        assert_eq!(value["cache"]["expired"], 0);
        // And the Monte-Carlo hot-path counters ride along.
        let mc = &value["monte_carlo"];
        assert!(mc["runs"].as_u64().unwrap() >= 1);
        assert!(mc["trials_completed"].as_u64().unwrap() >= 1);
        assert!(mc["truncated"].as_u64().is_some());
    }

    #[test]
    fn stats_endpoint_lists_dataset_shapes() {
        // Satellite: the catalogue's row/column counts are visible on
        // /stats, filled at scrape time like the network/admission planes.
        let state = demo_catalog();
        let resp = route(&state, &get("/stats"));
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        let datasets = value["datasets"].as_array().unwrap();
        assert_eq!(datasets.len(), 3);
        let compas = datasets
            .iter()
            .find(|d| d["slug"] == "compas")
            .expect("compas listed");
        assert_eq!(compas["rows"], 2_000);
        assert!(compas["columns"].as_u64().unwrap() > 0);
        // A registered synthetic scenario shows up on the next scrape.
        state.catalog.register_synth_scenario(1_000);
        let resp = route(&state, &get("/stats"));
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        let datasets = value["datasets"].as_array().unwrap();
        assert!(datasets.iter().any(|d| d["slug"] == "synth-1k"));
    }

    #[test]
    fn relaxed_fp_override_is_parsed_and_fingerprinted() {
        let state = demo_catalog();
        let exact = route(&state, &get("/datasets/cs-departments/label.json"));
        assert_eq!(exact.status, StatusCode::Ok);
        let relaxed = route(
            &state,
            &get("/datasets/cs-departments/label.json?relaxed_fp=true"),
        );
        assert_eq!(relaxed.status, StatusCode::Ok);
        // Different fingerprint → different cache entry: two misses, no hit.
        assert_eq!(state.labels.stats().cache.misses, 2);
        // An explicit `off` matches the default entry (a warm hit).
        let off = route(
            &state,
            &get("/datasets/cs-departments/label.json?relaxed_fp=off"),
        );
        assert_eq!(off.status, StatusCode::Ok);
        assert_eq!(state.labels.stats().cache.hits, 1);
        assert_eq!(off.body, exact.body);
        let bad = route(
            &state,
            &get("/datasets/cs-departments/label.json?relaxed_fp=maybe"),
        );
        assert_eq!(bad.status, StatusCode::BadRequest);
    }

    #[test]
    fn stats_roll_up_reactor_counters_without_torn_reads() {
        let state = demo_catalog();
        // Library use: no server installed its reactors, so the network
        // block is absent rather than a misleading row of zeros.
        let resp = route(&state, &get("/stats"));
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        assert!(value["network"].is_null(), "{}", resp.body);

        // Two shards churning accept/close while /stats scrapes: no scrape
        // may ever observe active > accepted, per shard or in the totals.
        let shards: Vec<Arc<rf_net::ReactorMetrics>> = (0..2)
            .map(|_| Arc::new(rf_net::ReactorMetrics::new()))
            .collect();
        state.install_reactor_metrics(shards.clone());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let churners: Vec<_> = shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    use std::sync::atomic::Ordering;
                    while !stop.load(Ordering::Relaxed) {
                        shard.on_accepted();
                        shard.on_dispatched();
                        shard.on_completion();
                        shard.on_closed();
                    }
                })
            })
            .collect();
        for _ in 0..500 {
            let resp = route(&state, &get("/stats"));
            let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
            let network = &value["network"];
            let reactors = network["reactors"].as_array().expect("reactor array");
            assert_eq!(reactors.len(), 2);
            for shard in reactors {
                assert!(
                    shard["active"].as_u64().unwrap() <= shard["accepted"].as_u64().unwrap(),
                    "torn shard scrape: {shard}"
                );
            }
            let totals = &network["totals"];
            assert!(
                totals["active"].as_u64().unwrap() <= totals["accepted"].as_u64().unwrap(),
                "torn totals scrape: {totals}"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for churner in churners {
            churner.join().expect("churner");
        }
    }

    #[test]
    fn metrics_exposition_is_valid_prometheus_text() {
        let state = demo_catalog();
        let _ = route(&state, &get("/datasets/cs-departments/label.json"));
        let resp = route(&state, &get("/metrics"));
        assert_eq!(resp.status, StatusCode::Ok);
        assert_eq!(
            resp.content_type,
            "text/plain; version=0.0.4; charset=utf-8"
        );
        // At least ten metric families, declared once each.
        let mut families: Vec<&str> = resp
            .body
            .lines()
            .filter_map(|line| line.strip_prefix("# TYPE "))
            .filter_map(|rest| rest.split_whitespace().next())
            .collect();
        let declared = families.len();
        families.sort_unstable();
        families.dedup();
        assert_eq!(families.len(), declared, "each family declared once");
        assert!(declared >= 10, "only {declared} families: {families:?}");
        for required in [
            "rf_stage_duration_microseconds",
            "rf_cache_hits_total",
            "rf_cache_misses_total",
            "rf_label_preparations_total",
            "rf_label_coalesced_total",
            "rf_scheduler_executed_jobs_total",
            "rf_mc_runs_total",
        ] {
            assert!(families.contains(&required), "missing {required}");
        }
        // Service-side and aggregated stage histograms are present even
        // without a running server (no per-shard reactor sets yet).
        assert!(resp.body.contains("stage=\"prepare\",shard=\"service\""));
        assert!(resp.body.contains("stage=\"prepare\",shard=\"all\""));
        assert!(resp.body.contains("le=\"+Inf\""));
        // Every non-comment line is `series value` with a numeric value.
        for line in resp.body.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!series.is_empty(), "{line}");
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
    }

    #[test]
    fn debug_slow_and_admission_report_installed_observability() {
        let state = demo_catalog();
        // Without a running server: an empty ring document, no admission.
        let resp = route(&state, &get("/debug/slow"));
        assert_eq!(resp.status, StatusCode::Ok);
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(value["capacity"], 0);
        assert_eq!(value["traces"].as_array().unwrap().len(), 0);
        let stats = route(&state, &get("/stats"));
        let value: serde_json::Value = serde_json::from_str(&stats.body).unwrap();
        assert!(value["admission"].is_null());

        // Install a ring holding one trace plus an admission probe, as
        // Server::run does.
        let ring = Arc::new(rf_obs::TraceRing::new(8));
        let mut stage_micros = [0u64; rf_obs::STAGE_COUNT];
        stage_micros[rf_obs::Stage::Prepare.index()] = 1_500;
        ring.push(rf_obs::RequestTrace {
            id: rf_obs::RequestId { shard: 2, seq: 7 },
            total_micros: 2_000,
            stage_micros,
            cache: rf_obs::CacheOutcome::Miss,
            truncated: true,
            shed: Some(rf_obs::ShedReason::MaxPending),
        });
        state.install_observability(Observability {
            shard_stages: vec![Arc::new(rf_obs::StageHistograms::new())],
            trace_ring: ring,
            admission: Some(Arc::new(|| rf_core::AdmissionStats {
                max_pending: 64,
                pending: 1,
                ewma_service_micros: 1_000,
                measured_service_micros: 1_200,
            })),
        });
        let resp = route(&state, &get("/debug/slow"));
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(value["capacity"], 8);
        assert_eq!(value["recorded"], 1);
        let trace = &value["traces"][0];
        assert_eq!(trace["id"], "2:7");
        assert_eq!(trace["total_micros"], 2_000);
        assert_eq!(trace["cache"], "miss");
        assert_eq!(trace["truncated"], true);
        assert_eq!(trace["shed"], "max_pending");
        let stages = trace["stages"].as_array().unwrap();
        assert!(stages
            .iter()
            .any(|s| s["stage"] == "prepare" && s["micros"] == 1_500));

        // The probe feeds both /stats and /metrics.
        let stats = route(&state, &get("/stats"));
        let value: serde_json::Value = serde_json::from_str(&stats.body).unwrap();
        assert_eq!(value["admission"]["max_pending"], 64);
        assert_eq!(value["admission"]["pending"], 1);
        assert_eq!(value["admission"]["ewma_service_micros"], 1_000);
        assert_eq!(value["admission"]["measured_service_micros"], 1_200);
        let metrics = route(&state, &get("/metrics"));
        assert!(metrics
            .body
            .contains("rf_admission_measured_service_micros 1200"));
        assert!(metrics.body.contains("rf_traces_recorded_total 1"));
    }

    #[test]
    fn label_json_includes_the_monte_carlo_detail_by_default() {
        let state = demo_catalog();
        let resp = route(&state, &get("/datasets/cs-departments/label.json"));
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        let mc = &value["stability"]["monte_carlo"];
        assert!(mc.is_object(), "stability detail served on the hot path");
        assert_eq!(mc["trials"], 32);
        assert!(mc["expected_kendall_tau"].as_f64().unwrap() <= 1.0);
    }

    #[test]
    fn monte_carlo_query_overrides_are_applied_and_keyed() {
        let state = demo_catalog();
        let resp = route(
            &state,
            &get("/datasets/cs-departments/label.json?trials=5&data_noise=0.2&mc_seed=7"),
        );
        assert_eq!(resp.status, StatusCode::Ok, "body: {}", resp.body);
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(value["stability"]["monte_carlo"]["trials"], 5);
        assert_eq!(value["config"]["monte_carlo"]["data_noise"], 0.2);
        assert_eq!(value["config"]["monte_carlo"]["seed"], 7);
        // trials=0 disables the detail view.
        let off = route(&state, &get("/datasets/cs-departments/label.json?trials=0"));
        let value: serde_json::Value = serde_json::from_str(&off.body).unwrap();
        assert!(value["stability"]["monte_carlo"].is_null());
        // Different knobs are different cache keys: 2 requests, 2 misses.
        assert_eq!(state.labels.stats().cache.misses, 2);
        // And re-requesting the first combination is a warm hit.
        let again = route(
            &state,
            &get("/datasets/cs-departments/label.json?trials=5&data_noise=0.2&mc_seed=7"),
        );
        assert_eq!(again.body.as_str(), resp.body.as_str());
        assert_eq!(state.labels.stats().cache.hits, 1);
        // Bad values are rejected.
        for bad in [
            "/datasets/cs-departments/label.json?trials=lots",
            // Unbounded trials would let one request schedule arbitrary work.
            "/datasets/cs-departments/label.json?trials=4000000000",
            "/datasets/cs-departments/label.json?data_noise=-1",
            "/datasets/cs-departments/label.json?weight_noise=nan",
            "/datasets/cs-departments/label.json?mc_seed=x",
            "/datasets/cs-departments/label.json?deadline_ms=soon",
        ] {
            assert_eq!(route(&state, &get(bad)).status, StatusCode::BadRequest);
        }
    }

    #[test]
    fn zero_deadline_request_returns_a_truncated_label_not_a_hang() {
        // The deadline-budget acceptance: an already-expired budget still
        // answers with a valid label over fewer trials, flagged truncated.
        let state = demo_catalog();
        let resp = route(
            &state,
            &get("/datasets/cs-departments/label.json?trials=512&deadline_ms=0"),
        );
        assert_eq!(resp.status, StatusCode::Ok, "body: {}", resp.body);
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        let mc = &value["stability"]["monte_carlo"];
        assert_eq!(mc["truncated"], true);
        assert_eq!(mc["trials_requested"], 512);
        let trials = mc["trials"].as_u64().unwrap();
        assert!(
            (1..512).contains(&trials),
            "expected a truncated trial count, got {trials}"
        );
        // Truncated labels are never cached — how far the run got reflects
        // transient load, so a busy first request must not pin a degraded
        // label.  Regeneration is still deterministic (wave truncation), so
        // the bodies agree.
        let again = route(
            &state,
            &get("/datasets/cs-departments/label.json?trials=512&deadline_ms=0"),
        );
        assert_eq!(resp.body, again.body);
        assert_eq!(state.labels.stats().cache.entries, 0);
        assert_eq!(state.labels.stats().cache.hits, 0);
        assert_eq!(state.labels.stats().cache.misses, 2);
        // A budget generous enough to finish caches (and warm-hits) as usual.
        let generous = route(
            &state,
            &get("/datasets/cs-departments/label.json?trials=512&deadline_ms=60000"),
        );
        assert_eq!(generous.status, StatusCode::Ok);
        let value: serde_json::Value = serde_json::from_str(&generous.body).unwrap();
        assert_eq!(value["stability"]["monte_carlo"]["truncated"], false);
        assert_eq!(value["stability"]["monte_carlo"]["trials"], 512);
        assert_eq!(state.labels.stats().cache.entries, 1);
        let warm = route(
            &state,
            &get("/datasets/cs-departments/label.json?trials=512&deadline_ms=60000"),
        );
        assert_eq!(generous.body, warm.body);
        assert_eq!(state.labels.stats().cache.hits, 1);
    }

    #[test]
    fn unknown_routes_and_datasets_are_404() {
        let catalog = demo_catalog();
        assert_eq!(route(&catalog, &get("/nope")).status, StatusCode::NotFound);
        assert_eq!(
            route(&catalog, &get("/datasets/nope/label")).status,
            StatusCode::NotFound
        );
    }

    #[test]
    fn upload_endpoint_generates_label() {
        let catalog = demo_catalog();
        let csv = "name,score,grp\na,3,x\nb,2,y\nc,1,x\nd,4,y\ne,5,x\nf,0.5,y\n";
        let request = Request {
            method: Method::Post,
            path: "/labels".to_string(),
            query: HashMap::from([
                ("score_attrs".to_string(), "score".to_string()),
                ("sensitive".to_string(), "grp".to_string()),
                ("k".to_string(), "3".to_string()),
            ]),
            headers: HashMap::from([("accept".to_string(), "application/json".to_string())]),
            body: csv.to_string(),
        };
        let resp = route(&catalog, &request);
        assert_eq!(resp.status, StatusCode::Ok, "body: {}", resp.body);
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(value["config"]["top_k"], 3);
        assert_eq!(value["fairness"]["reports"].as_array().unwrap().len(), 2);
    }

    fn post(path_and_query: &str, body: &str) -> Request {
        let raw = format!(
            "POST {path_and_query} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        Request::read_from(raw.as_bytes()).unwrap()
    }

    #[test]
    fn dataset_upload_into_catalog_replaces_and_invalidates() {
        let state = demo_catalog();
        let csv_v1 = "name,score\na,3\nb,2\nc,1\nd,4\ne,5\n";
        let resp = route(
            &state,
            &post("/datasets/mydata?score_attrs=score&k=3", csv_v1),
        );
        assert_eq!(resp.status, StatusCode::Ok, "body: {}", resp.body);
        let value: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(value["slug"], "mydata");
        assert_eq!(value["rows"], 5);
        assert_eq!(value["cache_cleared"], true);
        assert_eq!(state.catalog.len(), 4);

        // Label the uploaded dataset; the cache now holds it.
        let v1_label = route(&state, &get("/datasets/mydata/label.json"));
        assert_eq!(v1_label.status, StatusCode::Ok, "body: {}", v1_label.body);
        assert!(state.labels.stats().cache.entries >= 1);

        // Re-upload under the same slug with different bytes: the stale
        // catalogue path must not serve the old label — the cache is
        // cleared by the upload hook.
        let csv_v2 = "name,score\na,30\nb,20\nc,10\nd,40\ne,50\nf,60\n";
        let resp = route(
            &state,
            &post("/datasets/mydata?score_attrs=score&k=3", csv_v2),
        );
        assert_eq!(resp.status, StatusCode::Ok, "body: {}", resp.body);
        assert_eq!(state.catalog.len(), 4, "replaced, not added");
        assert_eq!(
            state.labels.stats().cache.entries,
            0,
            "upload must clear the label cache"
        );
        let v2_label = route(&state, &get("/datasets/mydata/label.json"));
        assert_eq!(v2_label.status, StatusCode::Ok);
        assert_ne!(
            v1_label.body, v2_label.body,
            "new bytes must produce a new label"
        );
        let v2_value: serde_json::Value = serde_json::from_str(&v2_label.body).unwrap();
        assert_eq!(v2_value["top_k_rows"][0]["identifier"], "f");
    }

    #[test]
    fn dataset_upload_validates_slug_and_config() {
        let state = demo_catalog();
        let csv = "name,score\na,3\nb,2\nc,1\n";
        // Bad slug.
        let resp = route(&state, &post("/datasets/bad%20slug?score_attrs=score", csv));
        assert_eq!(resp.status, StatusCode::BadRequest);
        // Missing score_attrs.
        let resp = route(&state, &post("/datasets/okslug", csv));
        assert_eq!(resp.status, StatusCode::BadRequest);
        // A config that cannot validate against the table (unknown
        // sensitive attribute) is rejected at upload time, not parked in
        // the catalogue to fail every later label request.
        let resp = route(
            &state,
            &post("/datasets/okslug?score_attrs=score&sensitive=nope", csv),
        );
        assert_eq!(resp.status, StatusCode::BadRequest);
        // Nothing was parked in the catalogue by the failed uploads.
        assert_eq!(state.catalog.len(), 3);
    }

    #[test]
    fn catalogue_uploads_are_bounded() {
        let state = demo_catalog();
        let csv = "name,score\na,3\nb,2\nc,1\n";
        // Fill the catalogue to its cap (3 demo datasets pre-loaded).
        for i in 0..(MAX_CATALOG_DATASETS - 3) {
            let resp = route(
                &state,
                &post(&format!("/datasets/d{i}?score_attrs=score"), csv),
            );
            assert_eq!(resp.status, StatusCode::Ok, "upload {i}: {}", resp.body);
        }
        assert_eq!(state.catalog.len(), MAX_CATALOG_DATASETS);
        // A new slug at the cap is refused…
        let resp = route(&state, &post("/datasets/overflow?score_attrs=score", csv));
        assert_eq!(resp.status, StatusCode::ServiceUnavailable);
        assert_eq!(state.catalog.len(), MAX_CATALOG_DATASETS);
        // …while replacing an existing slug still works.
        let resp = route(&state, &post("/datasets/d0?score_attrs=score", csv));
        assert_eq!(resp.status, StatusCode::Ok, "body: {}", resp.body);
    }

    #[test]
    fn label_json_responses_share_the_cached_document() {
        let state = demo_catalog();
        let resp = route(&state, &get("/datasets/cs-departments/label.json"));
        let crate::http::Body::Shared(shared) = &resp.body else {
            panic!("label.json must stream the cache's shared document");
        };
        let again = route(&state, &get("/datasets/cs-departments/label.json"));
        let crate::http::Body::Shared(shared_again) = &again.body else {
            panic!("warm hit must stream the cache's shared document");
        };
        assert!(
            Arc::ptr_eq(shared, shared_again),
            "cold and warm responses share one allocation"
        );
    }

    /// A unique scratch directory for disk-tier tests, removed on drop.
    struct Scratch(std::path::PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "rf-router-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("scratch dir");
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Demo state over a two-tier cache rooted at `dir`.
    fn disk_state(dir: &std::path::Path) -> AppState {
        let service = LabelService::with_cache_policy(
            rf_core::AnalysisPipeline::sequential(),
            64,
            1 << 22,
            None,
        )
        .with_disk_tier(Arc::new(rf_store::DiskStore::open(dir, 1 << 22).unwrap()));
        AppState::with_service(DatasetCatalog::with_demo_datasets(), service)
    }

    #[test]
    fn restarted_state_over_a_warm_disk_tier_serves_disk_hits() {
        let scratch = Scratch::new("restart");
        let cold_body = {
            let state = disk_state(&scratch.0);
            let cold = route(&state, &get("/datasets/cs-departments/label.json?k=5"));
            assert_eq!(cold.status, StatusCode::Ok);
            // Write-behind: make the fill durable before the "crash".
            state.labels.disk_store().unwrap().flush();
            cold.body.to_string()
        };
        // "Restart": a fresh AppState (empty memory tier) over the same
        // directory answers the same request from disk, byte-identically.
        let state = disk_state(&scratch.0);
        let warm = route(&state, &get("/datasets/cs-departments/label.json?k=5"));
        assert_eq!(warm.status, StatusCode::Ok);
        assert_eq!(warm.body.as_str(), cold_body.as_str());

        let stats = route(&state, &get("/stats"));
        let value: serde_json::Value = serde_json::from_str(&stats.body).unwrap();
        assert_eq!(value["disk"]["disk_hits"], 1, "{}", stats.body);
        assert_eq!(value["disk"]["promotions"], 1);
        assert_eq!(value["cache"]["misses"], 1, "memory tier started cold");
        assert!(value["disk"]["entries"].as_u64().unwrap() >= 1);

        let metrics = route(&state, &get("/metrics"));
        assert!(metrics.body.contains("# TYPE rf_disk_hits_total counter"));
        assert!(
            metrics.body.contains("rf_disk_hits_total 1"),
            "{}",
            metrics.body
        );
        assert!(metrics.body.contains("# TYPE rf_disk_entries gauge"));
        assert!(metrics.body.contains("rf_disk_max_bytes"));

        // Memory-only deployments expose neither the /stats block nor the
        // /metrics families.
        let memory_only = demo_catalog();
        let stats = route(&memory_only, &get("/stats"));
        let value: serde_json::Value = serde_json::from_str(&stats.body).unwrap();
        assert!(value["disk"].is_null(), "{}", stats.body);
        let metrics = route(&memory_only, &get("/metrics"));
        assert!(!metrics.body.contains("rf_disk_"));
    }

    #[test]
    fn dataset_upload_purges_the_disk_tier_too() {
        let scratch = Scratch::new("purge");
        let state = disk_state(&scratch.0);
        let _ = route(&state, &get("/datasets/cs-departments/label.json?k=5"));
        state.labels.disk_store().unwrap().flush();
        let before = state.labels.stats();
        assert_eq!(before.cache.entries, 1);
        assert!(before.disk.unwrap().entries >= 1);

        // The upload's invalidation must reach both tiers — a stale label
        // surviving on disk would resurrect on the next restart.
        let csv = "name,score\na,3\nb,2\nc,1\nd,4\ne,5\n";
        let resp = route(&state, &post("/datasets/mydata?score_attrs=score&k=3", csv));
        assert_eq!(resp.status, StatusCode::Ok, "body: {}", resp.body);
        let after = state.labels.stats();
        assert_eq!(after.cache.entries, 0);
        let disk = after.disk.unwrap();
        assert_eq!(disk.entries, 0, "disk tier must be purged");
        assert_eq!(disk.bytes, 0);

        // Counter-verified: the next request regenerates (a disk miss), it
        // does not resurrect the purged entry.
        let hits_before = disk.disk_hits;
        let misses_before = disk.disk_misses;
        let again = route(&state, &get("/datasets/cs-departments/label.json?k=5"));
        assert_eq!(again.status, StatusCode::Ok);
        let disk = state.labels.stats().disk.unwrap();
        assert_eq!(disk.disk_hits, hits_before, "no hit on a purged tier");
        assert_eq!(disk.disk_misses, misses_before + 1);
    }

    #[test]
    fn upload_endpoint_validates_input() {
        let catalog = demo_catalog();
        // Missing score_attrs.
        let request = Request {
            method: Method::Post,
            path: "/labels".to_string(),
            query: HashMap::new(),
            headers: HashMap::new(),
            body: "a\n1\n2\n".to_string(),
        };
        assert_eq!(route(&catalog, &request).status, StatusCode::BadRequest);
        // Broken CSV.
        let request = Request {
            method: Method::Post,
            path: "/labels".to_string(),
            query: HashMap::from([("score_attrs".to_string(), "a".to_string())]),
            headers: HashMap::new(),
            body: "a,b\n1\n".to_string(),
        };
        assert_eq!(route(&catalog, &request).status, StatusCode::BadRequest);
        // Mismatched weights.
        let request = Request {
            method: Method::Post,
            path: "/labels".to_string(),
            query: HashMap::from([
                ("score_attrs".to_string(), "a".to_string()),
                ("weights".to_string(), "0.5,0.5".to_string()),
            ]),
            headers: HashMap::new(),
            body: "a,b\n1,2\n3,4\n".to_string(),
        };
        assert_eq!(route(&catalog, &request).status, StatusCode::BadRequest);
    }
}
