//! The TCP accept loop over the shared `rf-runtime` worker pool.

use crate::catalog::DatasetCatalog;
use crate::http::{Request, Response, StatusCode};
use crate::router::{route, AppState};
use rf_runtime::ThreadPool;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:8080`.  Use port 0 to let the OS pick
    /// a free port (handy for tests).
    pub bind_address: String,
    /// Number of worker threads handling connections.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind_address: "127.0.0.1:8080".to_string(),
            workers: 4,
        }
    }
}

/// The Ranking Facts demo server.
pub struct Server {
    state: Arc<AppState>,
    listener: TcpListener,
    workers: usize,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and prepares the server: the catalogue is wrapped
    /// in an [`AppState`] whose label cache all connection workers share.
    ///
    /// # Errors
    /// I/O errors from binding the address.
    pub fn bind(catalog: DatasetCatalog, config: &ServerConfig) -> std::io::Result<Self> {
        Self::bind_state(AppState::new(catalog), config)
    }

    /// Binds the listener over an explicit [`AppState`] (e.g. a pre-warmed
    /// or custom-bounded label service).
    ///
    /// # Errors
    /// I/O errors from binding the address.
    pub fn bind_state(state: AppState, config: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.bind_address)?;
        Ok(Server {
            state: Arc::new(state),
            listener,
            workers: config.workers.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the server is actually listening on.
    ///
    /// # Errors
    /// I/O errors from querying the socket.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop the accept loop from another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the accept loop until the shutdown flag is set.  Connections are
    /// dispatched to a dedicated [`rf_runtime::ThreadPool`] — the same pool
    /// abstraction `rf-core`'s `AnalysisPipeline` fans label widgets out on.
    ///
    /// # Errors
    /// Fatal I/O errors from the listener (per-connection errors are logged
    /// to stderr and ignored).
    pub fn run(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let pool = ThreadPool::new(self.workers);

        while !self.shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    // Blocking per-connection I/O inside the worker.
                    let _ = stream.set_nonblocking(false);
                    let state = Arc::clone(&self.state);
                    pool.execute(move || handle_connection(&state, stream));
                }
                Err(ref err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(err) => {
                    eprintln!("accept error: {err}");
                }
            }
        }
        // Dropping the pool drains queued connections and joins the workers.
        drop(pool);
        Ok(())
    }
}

/// Parses one request from the stream, routes it, and writes the response.
fn handle_connection(state: &AppState, stream: TcpStream) {
    let peer = stream.peer_addr().ok();
    let response = match Request::read_from(&stream) {
        Some(request) => route(state, &request),
        None => Response::text(StatusCode::BadRequest, "malformed request"),
    };
    if let Err(err) = response.write_to(&stream) {
        eprintln!("write error to {peer:?}: {err}");
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Duration;

    /// Starts a server on an ephemeral port and returns its address plus the
    /// shutdown handle and join handle.
    fn start_server() -> (
        std::net::SocketAddr,
        Arc<AtomicBool>,
        std::thread::JoinHandle<()>,
    ) {
        let catalog = DatasetCatalog::with_demo_datasets();
        let config = ServerConfig {
            bind_address: "127.0.0.1:0".to_string(),
            workers: 2,
        };
        let server = Server::bind(catalog, &config).expect("bind");
        let addr = server.local_addr().expect("addr");
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || {
            server.run().expect("server run");
        });
        (addr, shutdown, handle)
    }

    fn request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(raw.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn serves_landing_page_and_labels_over_tcp() {
        let (addr, shutdown, handle) = start_server();

        let landing = request(addr, "GET / HTTP/1.1\r\nHost: test\r\n\r\n");
        assert!(landing.starts_with("HTTP/1.1 200 OK"));
        assert!(landing.contains("Ranking Facts"));

        let label = request(
            addr,
            "GET /datasets/cs-departments/label.json?k=5 HTTP/1.1\r\nHost: test\r\n\r\n",
        );
        assert!(label.starts_with("HTTP/1.1 200 OK"));
        let body = label.split("\r\n\r\n").nth(1).unwrap();
        let value: serde_json::Value = serde_json::from_str(body).unwrap();
        assert_eq!(value["top_k_rows"].as_array().unwrap().len(), 5);

        let missing = request(
            addr,
            "GET /datasets/absent/label HTTP/1.1\r\nHost: test\r\n\r\n",
        );
        assert!(missing.starts_with("HTTP/1.1 404"));

        // A repeated label request is a cache hit, visible on /stats.
        let again = request(
            addr,
            "GET /datasets/cs-departments/label.json?k=5 HTTP/1.1\r\nHost: test\r\n\r\n",
        );
        assert_eq!(
            again.split("\r\n\r\n").nth(1).unwrap(),
            label.split("\r\n\r\n").nth(1).unwrap(),
            "warm hit must be byte-identical over the wire"
        );
        let stats = request(addr, "GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
        assert!(stats.starts_with("HTTP/1.1 200 OK"));
        let stats_body = stats.split("\r\n\r\n").nth(1).unwrap();
        let stats_value: serde_json::Value = serde_json::from_str(stats_body).unwrap();
        assert!(stats_value["cache"]["hits"].as_u64().unwrap() >= 1);

        // Parallel requests exercise the worker pool.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    request(addr, "GET /datasets HTTP/1.1\r\nHost: test\r\n\r\n")
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().starts_with("HTTP/1.1 200 OK"));
        }

        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn default_config() {
        let config = ServerConfig::default();
        assert_eq!(config.workers, 4);
        assert!(config.bind_address.contains("8080"));
    }
}
