//! The event-driven server: an `rf-net` reactor in front of the
//! `rf-runtime` worker pool.
//!
//! All socket I/O — accepting, incremental request parsing, buffered
//! response streaming — happens on the reactor thread; the pool only ever
//! sees complete requests, so its workers are busy exactly when label CPU
//! work exists.  Thousands of idle keep-alive connections cost one epoll
//! registration each, not a worker:
//!
//! ```text
//! accept ─► reactor (epoll) ─► ThreadPool::execute_notify ─► route()
//!              ▲                                               │
//!              └────── eventfd wake ◄── Responder::send ◄──────┘
//! ```

use crate::catalog::DatasetCatalog;
use crate::http::{Request, Response, StatusCode};
use crate::router::{route, AppState};
use rf_net::{Dispatch, ParsedRequest, Reactor, ReactorConfig, Responder};
use rf_runtime::ThreadPool;
use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:8080`.  Use port 0 to let the OS pick
    /// a free port (handy for tests).
    pub bind_address: String,
    /// Number of worker threads generating labels.  Connections are handled
    /// by the reactor and are **not** bounded by this — a 2-worker server
    /// happily holds hundreds of open keep-alive connections.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind_address: "127.0.0.1:8080".to_string(),
            workers: 4,
        }
    }
}

/// The server binary's command line, parsed: bind address plus the
/// deployment knobs of the shared label cache.  The cache *policy* (TTL,
/// bounded entries and bytes) has lived in `rf-core` since the cache landed;
/// these flags are what finally let a deployment choose it without
/// recompiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerOptions {
    /// Address to bind (first positional argument; default `127.0.0.1:8080`).
    pub bind_address: String,
    /// Label-generation workers (`--workers N`; default 4): sizes both the
    /// request-dispatch pool and the label pipeline's own scheduler (the
    /// one `/stats` reports), so the flag genuinely bounds label CPU
    /// instead of leaving the pipeline on the process-global pool.
    pub workers: usize,
    /// Per-entry label-cache TTL in seconds (`--cache-ttl-secs N`; default
    /// none — entries never expire by age).
    pub cache_ttl_secs: Option<u64>,
    /// Maximum resident cached labels (`--cache-entries N`).
    pub cache_entries: usize,
    /// Maximum resident cached bytes (`--cache-bytes N`).
    pub cache_bytes: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            bind_address: "127.0.0.1:8080".to_string(),
            workers: 4,
            cache_ttl_secs: None,
            cache_entries: rf_core::service::DEFAULT_CACHE_CAPACITY,
            cache_bytes: rf_core::service::DEFAULT_CACHE_BYTES,
        }
    }
}

impl ServerOptions {
    /// Parses the binary's arguments (everything after `argv[0]`).
    ///
    /// # Errors
    /// A usage message for unknown flags, missing values, or unparsable
    /// numbers.
    pub fn parse<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut options = ServerOptions::default();
        let mut positional = 0usize;
        let mut args = args.into_iter().map(Into::into);
        while let Some(arg) = args.next() {
            let mut numeric = |name: &str| -> Result<u64, String> {
                let value = args
                    .next()
                    .ok_or_else(|| format!("{name} expects a value"))?;
                value
                    .parse::<u64>()
                    .map_err(|_| format!("{name} expects a whole number, got `{value}`"))
            };
            match arg.as_str() {
                "--workers" => options.workers = (numeric("--workers")? as usize).max(1),
                "--cache-ttl-secs" => options.cache_ttl_secs = Some(numeric("--cache-ttl-secs")?),
                "--cache-entries" => {
                    options.cache_entries = (numeric("--cache-entries")? as usize).max(1);
                }
                "--cache-bytes" => {
                    options.cache_bytes = (numeric("--cache-bytes")? as usize).max(1);
                }
                flag if flag.starts_with("--") => {
                    return Err(format!(
                        "unknown flag `{flag}` (available: --workers, --cache-ttl-secs, \
                         --cache-entries, --cache-bytes)"
                    ));
                }
                address => {
                    if positional > 0 {
                        return Err(format!("unexpected extra argument `{address}`"));
                    }
                    options.bind_address = address.to_string();
                    positional += 1;
                }
            }
        }
        Ok(options)
    }

    /// The [`ServerConfig`] slice of the options.
    #[must_use]
    pub fn server_config(&self) -> ServerConfig {
        ServerConfig {
            bind_address: self.bind_address.clone(),
            workers: self.workers,
        }
    }

    /// Builds the label service these options describe: the parallel
    /// pipeline on a dedicated `workers`-sized scheduler, behind a cache
    /// bounded by `cache_entries` / `cache_bytes` whose entries expire
    /// after `cache_ttl_secs` (when set).
    #[must_use]
    pub fn label_service(&self) -> rf_core::LabelService {
        let pool = Arc::new(rf_runtime::ThreadPool::new(self.workers));
        rf_core::LabelService::with_cache_policy(
            rf_core::AnalysisPipeline::with_pool(pool),
            self.cache_entries,
            self.cache_bytes,
            self.cache_ttl_secs.map(std::time::Duration::from_secs),
        )
    }
}

/// The reactor-side request hook: converts parsed requests, schedules the
/// CPU work on the pool, and streams the response back through the
/// completion queue.
struct LabelDispatch {
    state: Arc<AppState>,
    pool: ThreadPool,
}

impl Dispatch for LabelDispatch {
    fn dispatch(&self, parsed: ParsedRequest, responder: Responder) {
        let state = Arc::clone(&self.state);
        let waker = responder.waker();
        // The notify hook fires after the job ends *however* it ends, so the
        // reactor always re-checks its completion queue — even if the route
        // panicked and the responder's drop answered 500 mid-unwind.
        self.pool.execute_notify(
            move || {
                let keep_alive = responder.keep_alive();
                let response = match Request::from_parsed(parsed) {
                    Some(request) => route(&state, &request),
                    None => Response::text(StatusCode::BadRequest, "malformed request"),
                };
                responder.send(response.into_outbound(keep_alive));
            },
            move || waker.wake(),
        );
    }
}

/// The Ranking Facts demo server.
pub struct Server {
    state: Arc<AppState>,
    listener: TcpListener,
    workers: usize,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and prepares the server: the catalogue is wrapped
    /// in an [`AppState`] whose label cache all connection workers share.
    ///
    /// # Errors
    /// I/O errors from binding the address.
    pub fn bind(catalog: DatasetCatalog, config: &ServerConfig) -> std::io::Result<Self> {
        Self::bind_state(AppState::new(catalog), config)
    }

    /// Binds the listener over an explicit [`AppState`] (e.g. a pre-warmed
    /// or custom-bounded label service).
    ///
    /// # Errors
    /// I/O errors from binding the address.
    pub fn bind_state(state: AppState, config: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.bind_address)?;
        Ok(Server {
            state: Arc::new(state),
            listener,
            workers: config.workers.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the server is actually listening on.
    ///
    /// # Errors
    /// I/O errors from querying the socket.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop the accept loop from another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the reactor event loop until the shutdown flag is set.
    ///
    /// The calling thread becomes the reactor thread: it owns the accept
    /// loop and every connection's socket I/O.  Label generation runs on a
    /// dedicated [`rf_runtime::ThreadPool`] of `workers` threads — the same
    /// pool abstraction `rf-core`'s `AnalysisPipeline` fans label widgets
    /// out on — and finished responses come back through the reactor's
    /// eventfd wake channel.
    ///
    /// Per-connection failures (malformed requests, disconnects mid-write,
    /// handler panics) close only that connection; they never reach this
    /// function's error path.
    ///
    /// # Errors
    /// Fatal I/O errors from the listener or the epoll instance.
    pub fn run(&self) -> std::io::Result<()> {
        let dispatch = Arc::new(LabelDispatch {
            state: Arc::clone(&self.state),
            pool: ThreadPool::new(self.workers),
        });
        let reactor = Reactor::new(
            self.listener.try_clone()?,
            dispatch,
            Arc::clone(&self.shutdown),
            ReactorConfig::default(),
        )?;
        reactor.run()
        // Dropping the reactor closes every connection; dropping the
        // dispatch drains the pool and joins its workers.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    /// Starts a server on an ephemeral port and returns its address plus the
    /// shutdown handle and join handle.
    fn start_server() -> (
        std::net::SocketAddr,
        Arc<AtomicBool>,
        std::thread::JoinHandle<()>,
    ) {
        let catalog = DatasetCatalog::with_demo_datasets();
        let config = ServerConfig {
            bind_address: "127.0.0.1:0".to_string(),
            workers: 2,
        };
        let server = Server::bind(catalog, &config).expect("bind");
        let addr = server.local_addr().expect("addr");
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || {
            server.run().expect("server run");
        });
        (addr, shutdown, handle)
    }

    fn request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(raw.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn options_parse_defaults_and_flags() {
        let defaults = ServerOptions::parse(Vec::<String>::new()).unwrap();
        assert_eq!(defaults, ServerOptions::default());
        assert_eq!(defaults.cache_ttl_secs, None, "no TTL unless asked for");

        let parsed = ServerOptions::parse([
            "0.0.0.0:9999",
            "--workers",
            "8",
            "--cache-ttl-secs",
            "300",
            "--cache-entries",
            "64",
            "--cache-bytes",
            "1048576",
        ])
        .unwrap();
        assert_eq!(parsed.bind_address, "0.0.0.0:9999");
        assert_eq!(parsed.workers, 8);
        assert_eq!(parsed.cache_ttl_secs, Some(300));
        assert_eq!(parsed.cache_entries, 64);
        assert_eq!(parsed.cache_bytes, 1_048_576);
        assert_eq!(parsed.server_config().workers, 8);

        // Errors: unknown flags, missing values, junk numbers, extra
        // positionals.
        assert!(ServerOptions::parse(["--nope"]).is_err());
        assert!(ServerOptions::parse(["--cache-ttl-secs"]).is_err());
        assert!(ServerOptions::parse(["--workers", "many"]).is_err());
        assert!(ServerOptions::parse(["a:1", "b:2"]).is_err());
    }

    #[test]
    fn ttl_flag_reaches_the_label_cache_policy() {
        // The open ROADMAP item this satellite closes: the TTL policy has
        // existed in rf-core since PR 4; the flags finally wire it into the
        // deployed binary.
        let options = ServerOptions::parse([
            "--cache-ttl-secs",
            "7",
            "--cache-entries",
            "5",
            "--workers",
            "3",
        ])
        .unwrap();
        let state = AppState::with_service(DatasetCatalog::with_demo_datasets(), {
            options.label_service()
        });
        let stats = state.labels.stats();
        assert_eq!(stats.cache.ttl_millis, Some(7_000));
        // --workers sizes the label pipeline's own scheduler, not just the
        // dispatch pool — /stats must agree with the flag.
        assert_eq!(stats.scheduler.workers, 3);
        // And the no-TTL default stays the no-TTL default.
        let default_state = AppState::new(DatasetCatalog::with_demo_datasets());
        assert_eq!(default_state.labels.stats().cache.ttl_millis, None);
    }

    #[test]
    fn serves_landing_page_and_labels_over_tcp() {
        let (addr, shutdown, handle) = start_server();

        let landing = request(
            addr,
            "GET / HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert!(landing.starts_with("HTTP/1.1 200 OK"));
        assert!(landing.contains("Ranking Facts"));

        let label = request(
            addr,
            "GET /datasets/cs-departments/label.json?k=5 HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert!(label.starts_with("HTTP/1.1 200 OK"));
        let body = label.split("\r\n\r\n").nth(1).unwrap();
        let value: serde_json::Value = serde_json::from_str(body).unwrap();
        assert_eq!(value["top_k_rows"].as_array().unwrap().len(), 5);

        let missing = request(
            addr,
            "GET /datasets/absent/label HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert!(missing.starts_with("HTTP/1.1 404"));

        // A repeated label request is a cache hit, visible on /stats.
        let again = request(
            addr,
            "GET /datasets/cs-departments/label.json?k=5 HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(
            again.split("\r\n\r\n").nth(1).unwrap(),
            label.split("\r\n\r\n").nth(1).unwrap(),
            "warm hit must be byte-identical over the wire"
        );
        let stats = request(
            addr,
            "GET /stats HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert!(stats.starts_with("HTTP/1.1 200 OK"));
        let stats_body = stats.split("\r\n\r\n").nth(1).unwrap();
        let stats_value: serde_json::Value = serde_json::from_str(stats_body).unwrap();
        assert!(stats_value["cache"]["hits"].as_u64().unwrap() >= 1);

        // Parallel requests exercise the worker pool.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    request(
                        addr,
                        "GET /datasets HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
                    )
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().starts_with("HTTP/1.1 200 OK"));
        }

        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    /// Reads exactly one HTTP response from a keep-alive stream.
    fn read_keep_alive_response(stream: &mut TcpStream) -> String {
        let response = rf_net::read_one_response(stream).expect("response");
        format!("{}{}", response.head, response.body_text())
    }

    #[test]
    fn keep_alive_connection_serves_many_requests() {
        let (addr, shutdown, handle) = start_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut bodies = Vec::new();
        for _ in 0..3 {
            stream
                .write_all(
                    b"GET /datasets/cs-departments/label.json?k=5 HTTP/1.1\r\nHost: t\r\n\r\n",
                )
                .expect("write");
            let response = read_keep_alive_response(&mut stream);
            assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
            assert!(response.contains("Connection: keep-alive"), "{response}");
            bodies.push(response.split("\r\n\r\n").nth(1).unwrap().to_string());
        }
        assert_eq!(bodies[0], bodies[1]);
        assert_eq!(bodies[1], bodies[2]);
        // An explicit close is honoured.
        stream
            .write_all(b"GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("write");
        let response = read_keep_alive_response(&mut stream);
        assert!(response.contains("Connection: close"), "{response}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("eof");
        assert!(rest.is_empty(), "server closes after Connection: close");

        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn default_config() {
        let config = ServerConfig::default();
        assert_eq!(config.workers, 4);
        assert!(config.bind_address.contains("8080"));
    }
}
