//! The event-driven server: an `rf-net` reactor in front of the
//! `rf-runtime` worker pool.
//!
//! All socket I/O — accepting, incremental request parsing, buffered
//! response streaming — happens on the reactor thread; the pool only ever
//! sees complete requests, so its workers are busy exactly when label CPU
//! work exists.  Thousands of idle keep-alive connections cost one epoll
//! registration each, not a worker:
//!
//! ```text
//! accept ─► reactor (epoll) ─► ThreadPool::execute_notify ─► route()
//!              ▲                                               │
//!              └────── eventfd wake ◄── Responder::send ◄──────┘
//! ```

use crate::catalog::DatasetCatalog;
use crate::http::{Request, Response, StatusCode};
use crate::router::{route, AppState};
use rf_net::{Dispatch, ParsedRequest, Reactor, ReactorConfig, Responder};
use rf_runtime::ThreadPool;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default per-reactor connection cap (the PR-3 hard-coded value, now a
/// knob).
pub const DEFAULT_MAX_CONNECTIONS: usize = 4096;
/// Default idle timeout in milliseconds.
pub const DEFAULT_IDLE_TIMEOUT_MS: u64 = 60_000;
/// Default request-progress deadline in milliseconds.
pub const DEFAULT_REQUEST_DEADLINE_MS: u64 = 30_000;
/// Default admission-control bound on dispatched-but-unanswered requests.
/// Generous on purpose: a queue this deep means seconds of backlog, and
/// only then does the server prefer a fast `503` over a doomed wait.
pub const DEFAULT_MAX_PENDING: usize = 1_024;
/// Default slow-trace threshold in milliseconds: requests whose end-to-end
/// latency reaches this land in the `/debug/slow` ring.
pub const DEFAULT_SLOW_THRESHOLD_MS: u64 = 500;
/// Default capacity of the slow-trace ring.
pub const DEFAULT_TRACE_RING_ENTRIES: usize = 256;
/// Default size bound for the on-disk label-cache tier (256 MiB).  Only
/// relevant once `--cache-dir` opts into the disk tier at all.
pub const DEFAULT_CACHE_DISK_BYTES: u64 = 256 * 1024 * 1024;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:8080`.  Use port 0 to let the OS pick
    /// a free port (handy for tests).
    pub bind_address: String,
    /// Number of worker threads generating labels.  Connections are handled
    /// by the reactor and are **not** bounded by this — a 2-worker server
    /// happily holds hundreds of open keep-alive connections.
    pub workers: usize,
    /// Number of reactor shards.  `1` (the default) binds one ordinary
    /// listener and runs the event loop on the calling thread — today's
    /// topology, bit for bit.  `N > 1` binds N `SO_REUSEPORT` listeners on
    /// the same address; the kernel balances accepts across them and each
    /// reactor owns its connections' full lifecycle.
    pub reactors: usize,
    /// Per-reactor cap on simultaneously open connections; excess accepts
    /// are answered with a synchronous `503` and closed.
    pub max_connections: usize,
    /// How long a connection may sit without socket activity before it is
    /// closed, in milliseconds.
    pub idle_timeout_ms: u64,
    /// How long a *started* request may take to arrive completely, in
    /// milliseconds (the slow-loris defence).
    pub request_deadline_ms: u64,
    /// Admission control: when this many dispatched requests are still
    /// unanswered, further requests are shed with `503` + `Retry-After`
    /// instead of deepening a queue nobody will live to see served.
    pub max_pending: usize,
    /// Requests whose end-to-end latency reaches this many milliseconds are
    /// traced into the `/debug/slow` ring.  `0` traces every request —
    /// reachable programmatically (tests pin the byte-identical contract
    /// with full tracing on), but rejected by the `--slow-threshold-ms`
    /// flag, where it is a typo'd deployment.
    pub slow_threshold_ms: u64,
    /// Capacity of the slow-trace ring shared by every reactor shard.
    pub trace_ring_entries: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind_address: "127.0.0.1:8080".to_string(),
            workers: 4,
            reactors: 1,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            idle_timeout_ms: DEFAULT_IDLE_TIMEOUT_MS,
            request_deadline_ms: DEFAULT_REQUEST_DEADLINE_MS,
            max_pending: DEFAULT_MAX_PENDING,
            slow_threshold_ms: DEFAULT_SLOW_THRESHOLD_MS,
            trace_ring_entries: DEFAULT_TRACE_RING_ENTRIES,
        }
    }
}

/// The server binary's command line, parsed: bind address plus the
/// deployment knobs of the shared label cache.  The cache *policy* (TTL,
/// bounded entries and bytes) has lived in `rf-core` since the cache landed;
/// these flags are what finally let a deployment choose it without
/// recompiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerOptions {
    /// Address to bind (first positional argument; default `127.0.0.1:8080`).
    pub bind_address: String,
    /// Label-generation workers (`--workers N`; default 4): sizes both the
    /// request-dispatch pool and the label pipeline's own scheduler (the
    /// one `/stats` reports), so the flag genuinely bounds label CPU
    /// instead of leaving the pipeline on the process-global pool.
    pub workers: usize,
    /// Per-entry label-cache TTL in seconds (`--cache-ttl-secs N`; default
    /// none — entries never expire by age).
    pub cache_ttl_secs: Option<u64>,
    /// Maximum resident cached labels (`--cache-entries N`).
    pub cache_entries: usize,
    /// Maximum resident cached bytes (`--cache-bytes N`).
    pub cache_bytes: usize,
    /// Directory for the crash-safe on-disk label-cache tier
    /// (`--cache-dir PATH`; default none — memory-only, exactly the
    /// pre-disk-tier behaviour).  An unusable directory degrades to
    /// memory-only with a startup warning instead of refusing to serve.
    pub cache_dir: Option<String>,
    /// Size bound for the on-disk tier in bytes (`--cache-disk-bytes N`;
    /// default 256 MiB).  Oldest entries are pruned first.
    pub cache_disk_bytes: u64,
    /// Reactor shards (`--reactors N`; default = available cores).  `1`
    /// preserves the single-reactor topology bit for bit.
    pub reactors: usize,
    /// Per-reactor connection cap (`--max-conns N`).
    pub max_conns: usize,
    /// Idle-connection timeout in milliseconds (`--idle-timeout-ms N`).
    pub idle_timeout_ms: u64,
    /// Request-progress deadline in milliseconds
    /// (`--request-deadline-ms N`).
    pub request_deadline_ms: u64,
    /// Admission-control pending-request bound (`--max-pending N`).
    pub max_pending: usize,
    /// Slow-trace threshold in milliseconds (`--slow-threshold-ms N`).
    pub slow_threshold_ms: u64,
    /// Slow-trace ring capacity (`--trace-ring-entries N`).
    pub trace_ring_entries: usize,
    /// Row counts of synthetic scenarios to register at startup
    /// (`--synth-rows N`, repeatable; default none).  Each becomes a
    /// catalogue entry named by `SynthScenarioConfig::slug` (`synth-100k`,
    /// `synth-1m`, ...), so the data plane can be exercised at scale
    /// without shipping a large file.
    pub synth_rows: Vec<usize>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            bind_address: "127.0.0.1:8080".to_string(),
            workers: 4,
            cache_ttl_secs: None,
            cache_entries: rf_core::service::DEFAULT_CACHE_CAPACITY,
            cache_bytes: rf_core::service::DEFAULT_CACHE_BYTES,
            cache_dir: None,
            cache_disk_bytes: DEFAULT_CACHE_DISK_BYTES,
            reactors: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            max_conns: DEFAULT_MAX_CONNECTIONS,
            idle_timeout_ms: DEFAULT_IDLE_TIMEOUT_MS,
            request_deadline_ms: DEFAULT_REQUEST_DEADLINE_MS,
            max_pending: DEFAULT_MAX_PENDING,
            slow_threshold_ms: DEFAULT_SLOW_THRESHOLD_MS,
            trace_ring_entries: DEFAULT_TRACE_RING_ENTRIES,
            synth_rows: Vec::new(),
        }
    }
}

impl ServerOptions {
    /// Parses the binary's arguments (everything after `argv[0]`).
    ///
    /// # Errors
    /// A usage message for unknown flags, missing values, or unparsable
    /// numbers.
    pub fn parse<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut options = ServerOptions::default();
        let mut positional = 0usize;
        let mut args = args.into_iter().map(Into::into);
        while let Some(arg) = args.next() {
            let mut numeric = |name: &str| -> Result<u64, String> {
                let value = args
                    .next()
                    .ok_or_else(|| format!("{name} expects a value"))?;
                value
                    .parse::<u64>()
                    .map_err(|_| format!("{name} expects a whole number, got `{value}`"))
            };
            // The reactor/admission knobs reject zero outright instead of
            // clamping: `--reactors 0` or `--max-conns 0` is a typo'd
            // deployment, not a server that refuses every byte.
            let positive = |name: &str, value: u64| -> Result<u64, String> {
                if value == 0 {
                    Err(format!("{name} must be at least 1"))
                } else {
                    Ok(value)
                }
            };
            match arg.as_str() {
                "--workers" => options.workers = (numeric("--workers")? as usize).max(1),
                "--cache-ttl-secs" => options.cache_ttl_secs = Some(numeric("--cache-ttl-secs")?),
                "--cache-entries" => {
                    options.cache_entries = (numeric("--cache-entries")? as usize).max(1);
                }
                "--cache-bytes" => {
                    options.cache_bytes = (numeric("--cache-bytes")? as usize).max(1);
                }
                "--cache-dir" => {
                    let value = args
                        .next()
                        .ok_or_else(|| "--cache-dir expects a path".to_string())?;
                    options.cache_dir = Some(value);
                }
                "--cache-disk-bytes" => {
                    options.cache_disk_bytes =
                        positive("--cache-disk-bytes", numeric("--cache-disk-bytes")?)?;
                }
                "--reactors" => {
                    options.reactors = positive("--reactors", numeric("--reactors")?)? as usize;
                }
                "--max-conns" => {
                    options.max_conns = positive("--max-conns", numeric("--max-conns")?)? as usize;
                }
                "--idle-timeout-ms" => {
                    options.idle_timeout_ms =
                        positive("--idle-timeout-ms", numeric("--idle-timeout-ms")?)?;
                }
                "--request-deadline-ms" => {
                    options.request_deadline_ms =
                        positive("--request-deadline-ms", numeric("--request-deadline-ms")?)?;
                }
                "--max-pending" => {
                    options.max_pending =
                        positive("--max-pending", numeric("--max-pending")?)? as usize;
                }
                "--slow-threshold-ms" => {
                    options.slow_threshold_ms =
                        positive("--slow-threshold-ms", numeric("--slow-threshold-ms")?)?;
                }
                "--trace-ring-entries" => {
                    options.trace_ring_entries =
                        positive("--trace-ring-entries", numeric("--trace-ring-entries")?)?
                            as usize;
                }
                "--synth-rows" => {
                    options
                        .synth_rows
                        .push(positive("--synth-rows", numeric("--synth-rows")?)? as usize);
                }
                flag if flag.starts_with("--") => {
                    return Err(format!(
                        "unknown flag `{flag}` (available: --workers, --cache-ttl-secs, \
                         --cache-entries, --cache-bytes, --cache-dir, --cache-disk-bytes, \
                         --reactors, --max-conns, --idle-timeout-ms, --request-deadline-ms, \
                         --max-pending, --slow-threshold-ms, --trace-ring-entries, \
                         --synth-rows)"
                    ));
                }
                address => {
                    if positional > 0 {
                        return Err(format!("unexpected extra argument `{address}`"));
                    }
                    options.bind_address = address.to_string();
                    positional += 1;
                }
            }
        }
        Ok(options)
    }

    /// The [`ServerConfig`] slice of the options.
    #[must_use]
    pub fn server_config(&self) -> ServerConfig {
        ServerConfig {
            bind_address: self.bind_address.clone(),
            workers: self.workers,
            reactors: self.reactors,
            max_connections: self.max_conns,
            idle_timeout_ms: self.idle_timeout_ms,
            request_deadline_ms: self.request_deadline_ms,
            max_pending: self.max_pending,
            slow_threshold_ms: self.slow_threshold_ms,
            trace_ring_entries: self.trace_ring_entries,
        }
    }

    /// Builds the label service these options describe: the parallel
    /// pipeline on a dedicated `workers`-sized scheduler, behind a cache
    /// bounded by `cache_entries` / `cache_bytes` whose entries expire
    /// after `cache_ttl_secs` (when set), with the crash-safe on-disk tier
    /// under it when `--cache-dir` names a directory.
    ///
    /// The disk tier fails *soft*: labels are pure functions of
    /// (table, config), so an unusable cache directory costs warm restarts,
    /// never correctness.  On any open error the server logs a warning and
    /// serves memory-only — degraded, not down.
    #[must_use]
    pub fn label_service(&self) -> rf_core::LabelService {
        let pool = Arc::new(rf_runtime::ThreadPool::new(self.workers));
        let service = rf_core::LabelService::with_cache_policy(
            rf_core::AnalysisPipeline::with_pool(pool),
            self.cache_entries,
            self.cache_bytes,
            self.cache_ttl_secs.map(std::time::Duration::from_secs),
        );
        let Some(dir) = &self.cache_dir else {
            return service;
        };
        match rf_store::DiskStore::open(dir, self.cache_disk_bytes) {
            Ok(store) => service.with_disk_tier(Arc::new(store)),
            Err(err) => {
                eprintln!(
                    "warning: cache dir `{dir}` unusable ({err}); \
                     serving memory-only (degraded mode)"
                );
                service
            }
        }
    }
}

/// Admission-control state shared by every reactor shard: a gauge of
/// dispatched-but-unanswered requests and an EWMA of service time, both
/// readable with single atomic loads on the reactor threads.
struct Admission {
    /// Shed when this many requests are already dispatched and unanswered.
    max_pending: usize,
    /// Requests dispatched to the pool whose response has not been sent.
    pending: AtomicUsize,
    /// Exponentially weighted moving average of request service time, in
    /// microseconds (α = 1/8).  Zero until the first request completes.
    avg_service_micros: AtomicU64,
    /// The measured stage histograms the controller prefers over its own
    /// EWMA once they have observations: the prepare+render mean is an
    /// actual per-request CPU cost, where the EWMA also smears cache hits
    /// and non-label routes into the estimate.  `None` keeps the controller
    /// on pure EWMA (unit tests pin its arithmetic deterministically).
    measured: Option<&'static rf_obs::StageHistograms>,
}

impl Admission {
    fn with_measured_source(
        max_pending: usize,
        measured: Option<&'static rf_obs::StageHistograms>,
    ) -> Self {
        Admission {
            max_pending: max_pending.max(1),
            pending: AtomicUsize::new(0),
            avg_service_micros: AtomicU64::new(0),
            measured,
        }
    }

    /// Mean prepare+render time from the measured histograms, in
    /// microseconds — `0` until both stages have observations (or when no
    /// measured source is installed).
    fn measured_service_micros(&self) -> u64 {
        let Some(stages) = self.measured else {
            return 0;
        };
        let prepare = stages.histogram(rf_obs::Stage::Prepare).snapshot();
        let render = stages.histogram(rf_obs::Stage::Render).snapshot();
        if prepare.count() == 0 || render.count() == 0 {
            return 0;
        }
        prepare.mean_micros().saturating_add(render.mean_micros())
    }

    /// The per-request service-time estimate steering admission: the
    /// measured histogram mean once it exists, the EWMA before that.
    fn service_estimate_micros(&self) -> u64 {
        let measured = self.measured_service_micros();
        if measured > 0 {
            measured
        } else {
            self.avg_service_micros.load(Ordering::Relaxed)
        }
    }

    /// The `/stats` view: occupancy plus predicted-vs-measured service time.
    fn stats(&self) -> rf_core::AdmissionStats {
        rf_core::AdmissionStats {
            max_pending: self.max_pending as u64,
            pending: self.pending.load(Ordering::Acquire) as u64,
            ewma_service_micros: self.avg_service_micros.load(Ordering::Relaxed),
            measured_service_micros: self.measured_service_micros(),
        }
    }

    /// Folds one completed request's service time into the EWMA.  The
    /// load/store pair can drop a concurrent sample under a race — fine for
    /// a smoothed estimate that only steers `Retry-After` hints and
    /// deadline headroom.
    fn record_service(&self, elapsed: Duration) {
        let sample = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let old = self.avg_service_micros.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old - old / 8 + sample / 8
        };
        self.avg_service_micros.store(new, Ordering::Relaxed);
    }

    /// The queue wait a newly dispatched request would predictably incur,
    /// given the scheduler backlog: `queued × service_estimate / workers`.
    fn predicted_wait_micros(&self, queued: usize, workers: usize) -> u64 {
        let avg = self.service_estimate_micros();
        (queued as u64).saturating_mul(avg) / workers.max(1) as u64
    }

    /// Whether a request with `deadline_ms` of budget should shed: its
    /// predicted queue wait alone already exceeds the whole budget, so
    /// queueing it burns a worker slot to produce a fully truncated label
    /// nobody asked for.  Strictly greater-than: a zero deadline against an
    /// empty queue is still served (the deadline-budget contract since
    /// PR 5).
    fn deadline_already_spent(&self, deadline_ms: u64, queued: usize, workers: usize) -> bool {
        self.predicted_wait_micros(queued, workers) / 1_000 > deadline_ms
    }

    /// The `Retry-After` hint, in whole seconds, derived from the backlog
    /// the shed request saw.
    fn retry_after_secs(&self, queued: usize, workers: usize) -> u64 {
        (self.predicted_wait_micros(queued, workers) / 1_000_000).clamp(1, 30)
    }
}

/// Decrements the pending gauge when the request's job ends — however it
/// ends, panics included, so a crashed handler can never leak permanent
/// admission pressure.
struct PendingGuard(Arc<Admission>);

impl Drop for PendingGuard {
    fn drop(&mut self) {
        self.0.pending.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Extracts a `deadline_ms` query parameter from a raw request target
/// without allocating — the admission check runs on the reactor thread.
fn deadline_ms_of(target: &str) -> Option<u64> {
    let (_, query) = target.split_once('?')?;
    query
        .split('&')
        .find_map(|pair| pair.strip_prefix("deadline_ms="))
        .and_then(|value| value.parse().ok())
}

/// The reactor-side request hook: converts parsed requests, schedules the
/// CPU work on the pool, and streams the response back through the
/// completion queue.  Shared by every reactor shard, so the admission gauge
/// and the worker pool see the server's whole load.
struct LabelDispatch {
    state: Arc<AppState>,
    pool: ThreadPool,
    admission: Arc<Admission>,
}

impl LabelDispatch {
    fn new(state: Arc<AppState>, workers: usize, max_pending: usize) -> Self {
        let pool = ThreadPool::new(workers);
        // Enqueue→first-poll of every dispatched job, measured inside the
        // runtime — the *true* queue wait the admission EWMA predicts.
        let _ = pool.set_queue_wait_observer(Arc::new(|waited| {
            rf_obs::service_stages().record(rf_obs::Stage::QueueWait, waited);
        }));
        LabelDispatch {
            state,
            pool,
            admission: Arc::new(Admission::with_measured_source(
                max_pending,
                Some(rf_obs::service_stages()),
            )),
        }
    }

    /// Runs on the reactor thread: admit (incrementing the pending gauge)
    /// or refuse with a `Retry-After` hint.  Two triggers shed: the pending
    /// gauge at its bound, and a `deadline_ms` budget the predicted queue
    /// wait has already spent.
    fn admit(&self, target: &str) -> Result<PendingGuard, (rf_obs::ShedReason, u64)> {
        let pending = self.admission.pending.load(Ordering::Acquire);
        let queued = self.pool.queued();
        let workers = self.pool.size();
        if pending >= self.admission.max_pending {
            return Err((
                rf_obs::ShedReason::MaxPending,
                self.admission.retry_after_secs(queued, workers),
            ));
        }
        if let Some(deadline_ms) = deadline_ms_of(target) {
            if self
                .admission
                .deadline_already_spent(deadline_ms, queued, workers)
            {
                return Err((
                    rf_obs::ShedReason::DeadlineSpent,
                    self.admission.retry_after_secs(queued, workers),
                ));
            }
        }
        self.admission.pending.fetch_add(1, Ordering::AcqRel);
        Ok(PendingGuard(Arc::clone(&self.admission)))
    }
}

impl Dispatch for LabelDispatch {
    fn dispatch(&self, parsed: ParsedRequest, responder: Responder) {
        let span = Arc::clone(responder.span());
        let admission_started = Instant::now();
        let decision = self.admit(&parsed.target);
        let admission_elapsed = admission_started.elapsed();
        rf_obs::service_stages().record(rf_obs::Stage::Admission, admission_elapsed);
        span.record(rf_obs::Stage::Admission, admission_elapsed);
        let guard = match decision {
            Ok(guard) => guard,
            Err((reason, retry_after_secs)) => {
                span.set_shed(reason);
                responder.shed(retry_after_secs);
                return;
            }
        };
        let state = Arc::clone(&self.state);
        let admission = Arc::clone(&self.admission);
        let waker = responder.waker();
        let enqueued = Instant::now();
        // The notify hook fires after the job ends *however* it ends, so the
        // reactor always re-checks its completion queue — even if the route
        // panicked and the responder's drop answered 500 mid-unwind.
        self.pool.execute_notify(
            move || {
                // Dropped when the job ends, panic or not.
                let pending = guard;
                // The pool's observer already feeds the shared queue-wait
                // histogram; this attributes the same wait to the request.
                span.record(rf_obs::Stage::QueueWait, enqueued.elapsed());
                // Active for the whole route, so the pipeline's stage
                // timings, cache outcome, and truncation flag land on this
                // request's span.
                let _active = rf_obs::activate(Arc::clone(&span));
                let started = Instant::now();
                let keep_alive = responder.keep_alive();
                let response = match Request::from_parsed(parsed) {
                    Some(request) => route(&state, &request),
                    None => Response::text(StatusCode::BadRequest, "malformed request"),
                };
                admission.record_service(started.elapsed());
                // Release the admission slot *before* handing the response
                // to the completion queue: a client that reads this
                // response and immediately sends another request must never
                // be shed by its own already-answered request.
                drop(pending);
                responder.send(response.into_outbound(keep_alive));
            },
            move || waker.wake(),
        );
    }
}

/// The Ranking Facts demo server.
pub struct Server {
    state: Arc<AppState>,
    /// One listener per reactor shard.  A single shard binds an ordinary
    /// listener; several bind `SO_REUSEPORT` listeners on the same address.
    listeners: Vec<TcpListener>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener(s) and prepares the server: the catalogue is
    /// wrapped in an [`AppState`] whose label cache all connection workers
    /// share.
    ///
    /// # Errors
    /// I/O errors from binding the address.
    pub fn bind(catalog: DatasetCatalog, config: &ServerConfig) -> std::io::Result<Self> {
        Self::bind_state(AppState::new(catalog), config)
    }

    /// Binds the listener(s) over an explicit [`AppState`] (e.g. a
    /// pre-warmed or custom-bounded label service).
    ///
    /// With `config.reactors == 1` this is exactly the single-listener bind
    /// it has always been.  With more, the first `SO_REUSEPORT` listener may
    /// bind port 0; the rest then bind the concrete port the OS picked, so
    /// ephemeral-port tests work unchanged.
    ///
    /// # Errors
    /// I/O errors from binding the address, or an unresolvable address.
    pub fn bind_state(state: AppState, config: &ServerConfig) -> std::io::Result<Self> {
        let reactors = config.reactors.max(1);
        let listeners = if reactors == 1 {
            vec![TcpListener::bind(&config.bind_address)?]
        } else {
            let addr = config
                .bind_address
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("bind address `{}` resolved to nothing", config.bind_address),
                    )
                })?;
            let first = rf_net::listen_reuseport(addr)?;
            let concrete = first.local_addr()?;
            let mut listeners = vec![first];
            for _ in 1..reactors {
                listeners.push(rf_net::listen_reuseport(concrete)?);
            }
            listeners
        };
        Ok(Server {
            state: Arc::new(state),
            listeners,
            config: config.clone(),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the server is actually listening on (all shards share
    /// it).
    ///
    /// # Errors
    /// I/O errors from querying the socket.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listeners[0].local_addr()
    }

    /// A handle that can stop every reactor from another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the reactor event loop(s) until the shutdown flag is set.
    ///
    /// The calling thread becomes reactor shard 0; shards 1..N run on
    /// spawned `rf-reactor-{i}` threads.  Each shard owns its listener, its
    /// epoll set, its eventfd completion channel, and the full lifecycle of
    /// every connection the kernel hands it — shards never touch each
    /// other's sockets.  They share one [`LabelDispatch`]: one label
    /// worker pool, one admission gauge, one cache.  Label generation runs
    /// on a dedicated [`rf_runtime::ThreadPool`] of `workers` threads and
    /// each response returns through its own reactor's wake channel.
    ///
    /// Per-connection failures (malformed requests, disconnects mid-write,
    /// handler panics) close only that connection; they never reach this
    /// function's error path.
    ///
    /// # Errors
    /// Fatal I/O errors from a listener or an epoll instance.  Any shard's
    /// fatal error flips the shutdown flag so the others wind down too.
    pub fn run(&self) -> std::io::Result<()> {
        let dispatch = Arc::new(LabelDispatch::new(
            Arc::clone(&self.state),
            self.config.workers.max(1),
            self.config.max_pending,
        ));
        let reactor_config = ReactorConfig {
            max_connections: self.config.max_connections,
            idle_timeout: Duration::from_millis(self.config.idle_timeout_ms),
            request_deadline: Duration::from_millis(self.config.request_deadline_ms),
        };
        // Build every reactor before running any, so the metrics registry
        // is complete by the time the first request can reach `/stats`.
        // Each shard owns its stage histograms (parse/write are per-shard
        // work); the slow-trace ring is shared so `/debug/slow` sees the
        // whole server in one place.
        let trace_ring = Arc::new(rf_obs::TraceRing::new(self.config.trace_ring_entries));
        let slow_threshold = Duration::from_millis(self.config.slow_threshold_ms);
        let mut reactors = Vec::with_capacity(self.listeners.len());
        let mut shard_stages = Vec::with_capacity(self.listeners.len());
        for (shard, listener) in self.listeners.iter().enumerate() {
            let mut reactor = Reactor::new(
                listener.try_clone()?,
                Arc::clone(&dispatch),
                Arc::clone(&self.shutdown),
                reactor_config.clone(),
            )?;
            let stages = Arc::new(rf_obs::StageHistograms::new());
            reactor.set_observability(rf_net::ReactorObservability {
                shard: u32::try_from(shard).unwrap_or(u32::MAX),
                stages: Arc::clone(&stages),
                ring: Arc::clone(&trace_ring),
                slow_threshold,
            });
            shard_stages.push(stages);
            reactors.push(reactor);
        }
        self.state
            .install_reactor_metrics(reactors.iter().map(Reactor::metrics).collect());
        let admission = Arc::clone(&dispatch.admission);
        self.state
            .install_observability(crate::router::Observability {
                shard_stages,
                trace_ring,
                admission: Some(Arc::new(move || admission.stats())),
            });

        let mut shards = reactors.into_iter();
        let shard_zero = shards.next().expect("at least one reactor");
        let mut joins = Vec::new();
        for (index, reactor) in shards.enumerate() {
            joins.push(
                std::thread::Builder::new()
                    .name(format!("rf-reactor-{}", index + 1))
                    .spawn(move || reactor.run())?,
            );
        }
        let result = shard_zero.run();
        // Shard 0 exiting — shutdown flag or fatal error — takes the other
        // shards down with it; they check the flag every poll interval.
        self.shutdown.store(true, Ordering::Relaxed);
        let mut failure = result.err();
        for join in joins {
            match join.join() {
                Ok(Ok(())) => {}
                Ok(Err(err)) => {
                    if failure.is_none() {
                        failure = Some(err);
                    }
                }
                Err(_) => {
                    if failure.is_none() {
                        failure = Some(std::io::Error::other("reactor thread panicked"));
                    }
                }
            }
        }
        match failure {
            Some(err) => Err(err),
            None => Ok(()),
        }
        // Dropping the reactors closes every connection; dropping the
        // dispatch drains the pool and joins its workers.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    /// Starts a server on an ephemeral port and returns its address plus the
    /// shutdown handle and join handle.
    fn start_server() -> (
        std::net::SocketAddr,
        Arc<AtomicBool>,
        std::thread::JoinHandle<()>,
    ) {
        let catalog = DatasetCatalog::with_demo_datasets();
        let config = ServerConfig {
            bind_address: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerConfig::default()
        };
        let server = Server::bind(catalog, &config).expect("bind");
        let addr = server.local_addr().expect("addr");
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || {
            server.run().expect("server run");
        });
        (addr, shutdown, handle)
    }

    fn request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(raw.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn options_parse_defaults_and_flags() {
        let defaults = ServerOptions::parse(Vec::<String>::new()).unwrap();
        assert_eq!(defaults, ServerOptions::default());
        assert_eq!(defaults.cache_ttl_secs, None, "no TTL unless asked for");

        let parsed = ServerOptions::parse([
            "0.0.0.0:9999",
            "--workers",
            "8",
            "--cache-ttl-secs",
            "300",
            "--cache-entries",
            "64",
            "--cache-bytes",
            "1048576",
            "--reactors",
            "4",
            "--max-conns",
            "512",
            "--idle-timeout-ms",
            "15000",
            "--request-deadline-ms",
            "5000",
            "--max-pending",
            "32",
            "--slow-threshold-ms",
            "250",
            "--trace-ring-entries",
            "64",
        ])
        .unwrap();
        assert_eq!(parsed.bind_address, "0.0.0.0:9999");
        assert_eq!(parsed.workers, 8);
        assert_eq!(parsed.cache_ttl_secs, Some(300));
        assert_eq!(parsed.cache_entries, 64);
        assert_eq!(parsed.cache_bytes, 1_048_576);
        assert_eq!(parsed.reactors, 4);
        assert_eq!(parsed.max_conns, 512);
        assert_eq!(parsed.idle_timeout_ms, 15_000);
        assert_eq!(parsed.request_deadline_ms, 5_000);
        assert_eq!(parsed.max_pending, 32);
        assert_eq!(parsed.slow_threshold_ms, 250);
        assert_eq!(parsed.trace_ring_entries, 64);
        let config = parsed.server_config();
        assert_eq!(config.workers, 8);
        assert_eq!(config.reactors, 4);
        assert_eq!(config.max_connections, 512);
        assert_eq!(config.idle_timeout_ms, 15_000);
        assert_eq!(config.request_deadline_ms, 5_000);
        assert_eq!(config.max_pending, 32);
        assert_eq!(config.slow_threshold_ms, 250);
        assert_eq!(config.trace_ring_entries, 64);

        // Errors: unknown flags, missing values, junk numbers, extra
        // positionals.
        assert!(ServerOptions::parse(["--nope"]).is_err());
        assert!(ServerOptions::parse(["--cache-ttl-secs"]).is_err());
        assert!(ServerOptions::parse(["--workers", "many"]).is_err());
        assert!(ServerOptions::parse(["a:1", "b:2"]).is_err());
        // The reactor/admission knobs reject zero instead of clamping.
        for zeroed in [
            ["--reactors", "0"],
            ["--max-conns", "0"],
            ["--idle-timeout-ms", "0"],
            ["--request-deadline-ms", "0"],
            ["--max-pending", "0"],
            ["--slow-threshold-ms", "0"],
            ["--trace-ring-entries", "0"],
        ] {
            let err = ServerOptions::parse(zeroed).unwrap_err();
            assert!(err.contains("at least 1"), "{err}");
        }
        assert!(ServerOptions::parse(["--max-conns", "none"]).is_err());
        assert!(ServerOptions::parse(["--idle-timeout-ms"]).is_err());
    }

    #[test]
    fn cache_dir_flags_parse_and_degrade_softly() {
        // Defaults: no disk tier, 256 MiB bound once one is named.
        let defaults = ServerOptions::default();
        assert_eq!(defaults.cache_dir, None);
        assert_eq!(defaults.cache_disk_bytes, DEFAULT_CACHE_DISK_BYTES);
        assert!(defaults.label_service().disk_store().is_none());

        let parsed = ServerOptions::parse([
            "--cache-dir",
            "/tmp/rf-cache",
            "--cache-disk-bytes",
            "1048576",
        ])
        .unwrap();
        assert_eq!(parsed.cache_dir.as_deref(), Some("/tmp/rf-cache"));
        assert_eq!(parsed.cache_disk_bytes, 1_048_576);
        assert!(ServerOptions::parse(["--cache-dir"]).is_err());
        assert!(ServerOptions::parse(["--cache-disk-bytes", "0"]).is_err());
        assert!(ServerOptions::parse(["--cache-disk-bytes", "lots"]).is_err());

        // A usable directory attaches the disk tier…
        let dir = std::env::temp_dir().join(format!("rf-server-flags-{}", std::process::id()));
        let mut options = ServerOptions {
            cache_dir: Some(dir.to_string_lossy().into_owned()),
            workers: 1,
            ..ServerOptions::default()
        };
        let service = options.label_service();
        assert!(service.disk_store().is_some());
        assert_eq!(
            service.stats().disk.unwrap().max_bytes,
            DEFAULT_CACHE_DISK_BYTES
        );
        drop(service);
        let _ = std::fs::remove_dir_all(&dir);

        // …an unusable one degrades to memory-only instead of refusing to
        // serve: labels are recomputable, warm restarts are not worth an
        // outage.
        let file = std::env::temp_dir().join(format!("rf-server-plain-{}", std::process::id()));
        std::fs::write(&file, b"not a directory").unwrap();
        options.cache_dir = Some(file.join("cache").to_string_lossy().into_owned());
        let degraded = options.label_service();
        assert!(
            degraded.disk_store().is_none(),
            "degraded mode is memory-only"
        );
        assert!(degraded.stats().disk.is_none());
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn synth_rows_flag_is_repeatable() {
        assert!(ServerOptions::default().synth_rows.is_empty());
        let parsed =
            ServerOptions::parse(["--synth-rows", "100000", "--synth-rows", "2000"]).unwrap();
        assert_eq!(parsed.synth_rows, vec![100_000, 2_000]);
        assert!(ServerOptions::parse(["--synth-rows", "0"]).is_err());
        assert!(ServerOptions::parse(["--synth-rows"]).is_err());
    }

    #[test]
    fn ttl_flag_reaches_the_label_cache_policy() {
        // The open ROADMAP item this satellite closes: the TTL policy has
        // existed in rf-core since PR 4; the flags finally wire it into the
        // deployed binary.
        let options = ServerOptions::parse([
            "--cache-ttl-secs",
            "7",
            "--cache-entries",
            "5",
            "--workers",
            "3",
        ])
        .unwrap();
        let state = AppState::with_service(DatasetCatalog::with_demo_datasets(), {
            options.label_service()
        });
        let stats = state.labels.stats();
        assert_eq!(stats.cache.ttl_millis, Some(7_000));
        // --workers sizes the label pipeline's own scheduler, not just the
        // dispatch pool — /stats must agree with the flag.
        assert_eq!(stats.scheduler.workers, 3);
        // And the no-TTL default stays the no-TTL default.
        let default_state = AppState::new(DatasetCatalog::with_demo_datasets());
        assert_eq!(default_state.labels.stats().cache.ttl_millis, None);
    }

    #[test]
    fn serves_landing_page_and_labels_over_tcp() {
        let (addr, shutdown, handle) = start_server();

        let landing = request(
            addr,
            "GET / HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert!(landing.starts_with("HTTP/1.1 200 OK"));
        assert!(landing.contains("Ranking Facts"));

        let label = request(
            addr,
            "GET /datasets/cs-departments/label.json?k=5 HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert!(label.starts_with("HTTP/1.1 200 OK"));
        let body = label.split("\r\n\r\n").nth(1).unwrap();
        let value: serde_json::Value = serde_json::from_str(body).unwrap();
        assert_eq!(value["top_k_rows"].as_array().unwrap().len(), 5);

        let missing = request(
            addr,
            "GET /datasets/absent/label HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert!(missing.starts_with("HTTP/1.1 404"));

        // A repeated label request is a cache hit, visible on /stats.
        let again = request(
            addr,
            "GET /datasets/cs-departments/label.json?k=5 HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(
            again.split("\r\n\r\n").nth(1).unwrap(),
            label.split("\r\n\r\n").nth(1).unwrap(),
            "warm hit must be byte-identical over the wire"
        );
        let stats = request(
            addr,
            "GET /stats HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
        );
        assert!(stats.starts_with("HTTP/1.1 200 OK"));
        let stats_body = stats.split("\r\n\r\n").nth(1).unwrap();
        let stats_value: serde_json::Value = serde_json::from_str(stats_body).unwrap();
        assert!(stats_value["cache"]["hits"].as_u64().unwrap() >= 1);

        // Parallel requests exercise the worker pool.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    request(
                        addr,
                        "GET /datasets HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
                    )
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().starts_with("HTTP/1.1 200 OK"));
        }

        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    /// Reads exactly one HTTP response from a keep-alive stream.
    fn read_keep_alive_response(stream: &mut TcpStream) -> String {
        let response = rf_net::read_one_response(stream).expect("response");
        format!("{}{}", response.head, response.body_text())
    }

    #[test]
    fn keep_alive_connection_serves_many_requests() {
        let (addr, shutdown, handle) = start_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut bodies = Vec::new();
        for _ in 0..3 {
            stream
                .write_all(
                    b"GET /datasets/cs-departments/label.json?k=5 HTTP/1.1\r\nHost: t\r\n\r\n",
                )
                .expect("write");
            let response = read_keep_alive_response(&mut stream);
            assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
            assert!(response.contains("Connection: keep-alive"), "{response}");
            bodies.push(response.split("\r\n\r\n").nth(1).unwrap().to_string());
        }
        assert_eq!(bodies[0], bodies[1]);
        assert_eq!(bodies[1], bodies[2]);
        // An explicit close is honoured.
        stream
            .write_all(b"GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("write");
        let response = read_keep_alive_response(&mut stream);
        assert!(response.contains("Connection: close"), "{response}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("eof");
        assert!(rest.is_empty(), "server closes after Connection: close");

        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn default_config() {
        let config = ServerConfig::default();
        assert_eq!(config.workers, 4);
        assert!(config.bind_address.contains("8080"));
        // One reactor preserves the pre-sharding topology bit for bit, and
        // the reactor knobs default to the previously hard-coded constants.
        assert_eq!(config.reactors, 1);
        assert_eq!(config.max_connections, 4096);
        assert_eq!(config.idle_timeout_ms, 60_000);
        assert_eq!(config.request_deadline_ms, 30_000);
        assert_eq!(config.max_pending, 1_024);
        assert_eq!(config.slow_threshold_ms, 500);
        assert_eq!(config.trace_ring_entries, 256);
        // The deployed binary defaults its shard count to the host's cores.
        assert!(ServerOptions::default().reactors >= 1);
    }

    #[test]
    fn admission_predicates() {
        // No measured source: the EWMA arithmetic is pinned deterministically
        // (the process-global stage histograms would leak other tests' label
        // work into these assertions).
        let admission = Admission::with_measured_source(4, None);
        // Cold start: no service-time estimate, nothing sheds on deadline.
        assert!(!admission.deadline_already_spent(0, 100, 2));
        assert_eq!(admission.retry_after_secs(100, 2), 1, "hint floor is 1s");
        // With a 10ms average and 100 queued jobs over 2 workers, the
        // predicted wait is 500ms: a 200ms budget is already spent, a 600ms
        // budget is not.
        admission.record_service(Duration::from_millis(10));
        assert_eq!(admission.avg_service_micros.load(Ordering::Relaxed), 10_000);
        assert!(admission.deadline_already_spent(200, 100, 2));
        assert!(!admission.deadline_already_spent(600, 100, 2));
        // An empty queue never sheds, even at deadline_ms=0 — the truncated
        // -label contract from the deadline-budget PR.
        assert!(!admission.deadline_already_spent(0, 0, 2));
        // The EWMA folds new samples in at α = 1/8.
        admission.record_service(Duration::from_millis(90));
        let avg = admission.avg_service_micros.load(Ordering::Relaxed);
        assert_eq!(avg, 10_000 - 10_000 / 8 + 90_000 / 8);
        // Retry-After scales with the backlog but stays in [1, 30].
        assert!(admission.retry_after_secs(10_000, 1) == 30);

        // The deadline_ms extractor reads the raw target.
        assert_eq!(
            deadline_ms_of("/datasets/x/label.json?deadline_ms=250"),
            Some(250)
        );
        assert_eq!(
            deadline_ms_of("/datasets/x/label.json?k=5&deadline_ms=0"),
            Some(0)
        );
        assert_eq!(deadline_ms_of("/datasets/x/label.json?k=5"), None);
        assert_eq!(deadline_ms_of("/stats"), None);
        assert_eq!(deadline_ms_of("/x?deadline_ms=soon"), None);
    }

    #[test]
    fn admission_prefers_measured_service_time_once_it_exists() {
        // A private histogram set, not the process-global one — sibling
        // tests generate labels concurrently and would pollute the means.
        let stages: &'static rf_obs::StageHistograms =
            Box::leak(Box::new(rf_obs::StageHistograms::new()));
        let admission = Admission::with_measured_source(4, Some(stages));
        // Nothing measured yet: the EWMA steers.
        admission.record_service(Duration::from_millis(10));
        assert_eq!(admission.service_estimate_micros(), 10_000);
        assert_eq!(admission.stats().measured_service_micros, 0);
        // One stage alone is not a full request cost — still EWMA.
        stages.record(rf_obs::Stage::Prepare, Duration::from_millis(2));
        assert_eq!(admission.measured_service_micros(), 0);
        assert_eq!(admission.service_estimate_micros(), 10_000);
        // Both stages measured: their mean sum takes over, and the predicted
        // wait (hence deadline shedding) follows it.
        stages.record(rf_obs::Stage::Render, Duration::from_millis(1));
        assert_eq!(admission.measured_service_micros(), 3_000);
        assert_eq!(admission.service_estimate_micros(), 3_000);
        assert_eq!(admission.predicted_wait_micros(100, 2), 150_000);
        let stats = admission.stats();
        assert_eq!(stats.ewma_service_micros, 10_000);
        assert_eq!(stats.measured_service_micros, 3_000);
        assert_eq!(stats.max_pending, 4);
        assert_eq!(stats.pending, 0);
    }

    #[test]
    fn request_ids_metrics_and_slow_traces_are_served_over_tcp() {
        // slow_threshold_ms = 0 traces every request (reachable through the
        // config; the CLI flag rejects 0 as a typo'd deployment).
        let catalog = DatasetCatalog::with_demo_datasets();
        let config = ServerConfig {
            bind_address: "127.0.0.1:0".to_string(),
            workers: 2,
            slow_threshold_ms: 0,
            trace_ring_entries: 16,
            ..ServerConfig::default()
        };
        let server = Server::bind(catalog, &config).expect("bind");
        let addr = server.local_addr().expect("addr");
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || {
            server.run().expect("server run");
        });

        let label = request(
            addr,
            "GET /datasets/cs-departments/label.json?k=5 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(label.starts_with("HTTP/1.1 200 OK"), "{label}");
        assert!(label.contains("X-Request-Id: 0:"), "{label}");

        let metrics = request(
            addr,
            "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(
            metrics.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
            "{metrics}"
        );
        assert!(metrics.contains("# TYPE rf_stage_duration_microseconds histogram"));
        // The per-shard parse histogram saw the label request, the service
        // side saw its prepare, and the reactor/admission families report.
        assert!(metrics.contains("stage=\"parse\",shard=\"0\""), "{metrics}");
        assert!(metrics.contains("stage=\"prepare\",shard=\"service\""));
        assert!(metrics.contains("stage=\"write\",shard=\"all\""));
        assert!(metrics.contains("rf_reactor_dispatched_total{shard=\"all\"}"));
        assert!(metrics.contains("rf_admission_max_pending"));

        let slow = request(
            addr,
            "GET /debug/slow HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(slow.starts_with("HTTP/1.1 200 OK"), "{slow}");
        let body = slow.split("\r\n\r\n").nth(1).unwrap();
        let value: serde_json::Value = serde_json::from_str(body).unwrap();
        assert_eq!(value["capacity"], 16);
        let traces = value["traces"].as_array().expect("traces array");
        assert!(!traces.is_empty(), "threshold 0 traces every request");
        let label_trace = traces
            .iter()
            .find(|trace| trace["cache"] == "miss")
            .expect("the label request was traced with its cache outcome");
        let stages = label_trace["stages"].as_array().unwrap();
        let stage_micros = |name: &str| {
            stages
                .iter()
                .find(|s| s["stage"] == name)
                .and_then(|s| s["micros"].as_u64())
                .unwrap()
        };
        assert!(stage_micros("prepare") > 0, "prepare time attributed");
        assert!(stage_micros("render") > 0, "render time attributed");

        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
