//! Request/response types over the `rf-net` HTTP machinery.
//!
//! Parsing itself lives in [`rf_net::HttpParser`] — the same incremental
//! state machine the reactor feeds nonblocking reads into — so there is
//! exactly one parser in the system; this module interprets a parsed
//! request for routing (method enum, split query parameters, UTF-8 body)
//! and builds responses, including keep-alive heads and `Arc`-shared JSON
//! bodies that stream straight out of the label cache.

use rf_net::{OutboundResponse, ParseEvent, ParsedRequest, ResponseBody};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::Arc;

/// Supported HTTP methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST.
    Post,
}

impl Method {
    /// Parses a method token.
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

/// Minimal HTTP status codes used by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// 200 OK.
    Ok,
    /// 400 Bad Request.
    BadRequest,
    /// 404 Not Found.
    NotFound,
    /// 405 Method Not Allowed.
    MethodNotAllowed,
    /// 500 Internal Server Error.
    InternalServerError,
    /// 503 Service Unavailable (a resource bound was hit).
    ServiceUnavailable,
}

impl StatusCode {
    /// Numeric code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::BadRequest => 400,
            StatusCode::NotFound => 404,
            StatusCode::MethodNotAllowed => 405,
            StatusCode::InternalServerError => 500,
            StatusCode::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    #[must_use]
    pub fn reason(self) -> &'static str {
        match self {
            StatusCode::Ok => "OK",
            StatusCode::BadRequest => "Bad Request",
            StatusCode::NotFound => "Not Found",
            StatusCode::MethodNotAllowed => "Method Not Allowed",
            StatusCode::InternalServerError => "Internal Server Error",
            StatusCode::ServiceUnavailable => "Service Unavailable",
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path component of the request target (no query string).
    pub path: String,
    /// Parsed query parameters.
    pub query: HashMap<String, String>,
    /// Request headers (names lower-cased).
    pub headers: HashMap<String, String>,
    /// Request body (empty when absent).
    pub body: String,
}

impl Request {
    /// Interprets a request parsed by the reactor's [`rf_net::HttpParser`]
    /// for routing.
    ///
    /// Returns `None` when the request cannot be routed (unsupported method,
    /// non-UTF-8 body) — the caller responds 400.
    #[must_use]
    pub fn from_parsed(parsed: ParsedRequest) -> Option<Request> {
        let method = Method::parse(&parsed.method)?;
        let (path, query) = split_target(&parsed.target);
        let body = String::from_utf8(parsed.body).ok()?;
        Some(Request {
            method,
            path,
            query,
            headers: parsed.headers,
            body,
        })
    }

    /// Reads and parses one request from a blocking stream (tests and
    /// simple clients; the server itself feeds the parser from nonblocking
    /// reads inside the reactor).
    ///
    /// Returns `None` for malformed requests (the caller responds 400).
    pub fn read_from<R: Read>(mut stream: R) -> Option<Request> {
        let mut parser = rf_net::HttpParser::new();
        let mut chunk = [0u8; 8192];
        loop {
            let n = stream.read(&mut chunk).ok()?;
            if n == 0 {
                return None; // EOF before a complete request.
            }
            match parser.feed(&chunk[..n]).ok()? {
                ParseEvent::Request(parsed) => return Request::from_parsed(parsed),
                ParseEvent::NeedMore => {}
            }
        }
    }

    /// A query parameter by name.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }
}

/// Splits a request target into its path and parsed query parameters.
fn split_target(target: &str) -> (String, HashMap<String, String>) {
    match target.split_once('?') {
        Some((path, query)) => (path.to_string(), parse_query(query)),
        None => (target.to_string(), HashMap::new()),
    }
}

/// Parses `a=1&b=two` into a map, percent-decoding values.
fn parse_query(query: &str) -> HashMap<String, String> {
    query
        .split('&')
        .filter(|piece| !piece.is_empty())
        .filter_map(|piece| {
            let (name, value) = piece.split_once('=')?;
            Some((percent_decode(name), percent_decode(value)))
        })
        .collect()
}

/// Minimal percent-decoding (`%XX` and `+` for space).
fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                match u8::from_str_radix(hex, 16) {
                    Ok(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(bytes[i]);
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response body: owned text, or a document `Arc`-shared with the label
/// cache so N concurrent downloads of the same label stream from one
/// allocation instead of N copies.
///
/// Dereferences to `str`, so handler code (and tests) treat it as the
/// string it is.
#[derive(Debug, Clone)]
pub enum Body {
    /// Text owned by this response.
    Owned(String),
    /// Text shared with the cache (e.g. a pre-rendered label JSON).
    Shared(Arc<String>),
}

impl Body {
    /// The body text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        match self {
            Body::Owned(text) => text,
            Body::Shared(text) => text,
        }
    }
}

impl std::ops::Deref for Body {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl std::fmt::Display for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

/// An HTTP response ready to be written to a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Content type header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Body,
}

impl Response {
    /// 200 response with an HTML body.
    #[must_use]
    pub fn html(body: impl Into<String>) -> Self {
        Response {
            status: StatusCode::Ok,
            content_type: "text/html; charset=utf-8",
            body: Body::Owned(body.into()),
        }
    }

    /// 200 response with a JSON body.
    #[must_use]
    pub fn json(body: impl Into<String>) -> Self {
        Response {
            status: StatusCode::Ok,
            content_type: "application/json",
            body: Body::Owned(body.into()),
        }
    }

    /// 200 response whose JSON body is shared with the label cache —
    /// the zero-copy warm-hit path.
    #[must_use]
    pub fn json_shared(body: Arc<String>) -> Self {
        Response {
            status: StatusCode::Ok,
            content_type: "application/json",
            body: Body::Shared(body),
        }
    }

    /// 200 response in the Prometheus text exposition format (version
    /// 0.0.4), served by `GET /metrics`.
    #[must_use]
    pub fn prometheus(body: impl Into<String>) -> Self {
        Response {
            status: StatusCode::Ok,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: Body::Owned(body.into()),
        }
    }

    /// Plain-text response with an arbitrary status.
    #[must_use]
    pub fn text(status: StatusCode, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: Body::Owned(body.into()),
        }
    }

    /// Serializes the status line and headers (including the terminating
    /// blank line) for the given connection disposition.
    #[must_use]
    pub fn head_bytes(&self, keep_alive: bool) -> Vec<u8> {
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status.code(),
            self.status.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        )
        .into_bytes()
    }

    /// Converts into the reactor's streaming form: pre-rendered head bytes
    /// plus a body chunk (shared bodies stay shared — no copy).
    #[must_use]
    pub fn into_outbound(self, keep_alive: bool) -> OutboundResponse {
        let head = self.head_bytes(keep_alive);
        let body = match self.body {
            Body::Owned(text) => ResponseBody::Owned(text.into_bytes()),
            Body::Shared(text) => ResponseBody::Shared(text),
        };
        OutboundResponse {
            head,
            body,
            keep_alive,
        }
    }

    /// Serializes the response (status line, headers, body) as a
    /// connection-closing exchange.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.head_bytes(false);
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    /// Writes the response to a blocking stream (tests and simple clients).
    ///
    /// # Errors
    /// I/O errors from the stream.
    pub fn write_to<W: Write>(&self, mut stream: W) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_request_with_query() {
        let raw = "GET /datasets/cs/label?k=10&name=CS+departments HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = Request::read_from(raw.as_bytes()).unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/datasets/cs/label");
        assert_eq!(req.query_param("k"), Some("10"));
        assert_eq!(req.query_param("name"), Some("CS departments"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_request_with_body() {
        let body = "a,b\n1,2\n";
        let raw = format!(
            "POST /labels HTTP/1.1\r\nContent-Length: {}\r\nContent-Type: text/csv\r\n\r\n{}",
            body.len(),
            body
        );
        let req = Request::read_from(raw.as_bytes()).unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path, "/labels");
        assert_eq!(req.body, body);
        assert_eq!(
            req.headers.get("content-type").map(String::as_str),
            Some("text/csv")
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(Request::read_from("".as_bytes()).is_none());
        assert!(Request::read_from("BREW /coffee HTTP/1.1\r\n\r\n".as_bytes()).is_none());
        assert!(Request::read_from("GET\r\n\r\n".as_bytes()).is_none());
        // Oversized content length.
        let raw = "POST /labels HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(Request::read_from(raw.as_bytes()).is_none());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("caf%C3%A9"), "café");
    }

    #[test]
    fn response_serialization() {
        let resp = Response::json("{\"ok\":true}");
        let bytes = resp.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json"));
        assert!(text.contains("Content-Length: 11"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn keep_alive_heads_and_shared_bodies() {
        let doc = Arc::new("{\"cached\":true}".to_string());
        let resp = Response::json_shared(Arc::clone(&doc));
        assert_eq!(&*resp.body, "{\"cached\":true}");

        let keep = String::from_utf8(resp.head_bytes(true)).unwrap();
        assert!(keep.contains("Connection: keep-alive"));
        assert!(keep.contains("Content-Length: 15"));
        let close = String::from_utf8(resp.head_bytes(false)).unwrap();
        assert!(close.contains("Connection: close"));

        // The outbound form shares the allocation, not a copy.
        let outbound = resp.into_outbound(true);
        assert!(outbound.keep_alive);
        match outbound.body {
            rf_net::ResponseBody::Shared(shared) => assert!(Arc::ptr_eq(&shared, &doc)),
            rf_net::ResponseBody::Owned(_) => panic!("shared body must stay shared"),
        }
    }

    #[test]
    fn from_parsed_rejects_unroutable_requests() {
        let mut parser = rf_net::HttpParser::new();
        let ParseEvent::Request(parsed) = parser
            .feed(b"BREW /coffee HTTP/1.1\r\n\r\n")
            .expect("well-formed")
        else {
            panic!("complete request");
        };
        assert!(Request::from_parsed(parsed).is_none(), "unknown method");

        let mut parser = rf_net::HttpParser::new();
        let ParseEvent::Request(parsed) = parser
            .feed(b"POST /labels HTTP/1.1\r\nContent-Length: 2\r\n\r\n\xff\xfe")
            .expect("well-formed")
        else {
            panic!("complete request");
        };
        assert!(Request::from_parsed(parsed).is_none(), "non-UTF-8 body");
    }

    #[test]
    fn status_codes() {
        assert_eq!(StatusCode::NotFound.code(), 404);
        assert_eq!(StatusCode::NotFound.reason(), "Not Found");
        assert_eq!(StatusCode::InternalServerError.code(), 500);
        let resp = Response::text(StatusCode::BadRequest, "nope");
        assert!(String::from_utf8(resp.to_bytes())
            .unwrap()
            .contains("400 Bad Request"));
    }
}
