//! A small HTTP/1.1 request parser and response builder.
//!
//! Only the subset of HTTP that the demo flow needs is implemented: request
//! line, headers, optional body sized by `Content-Length`, and plain
//! (non-chunked, non-keep-alive) responses.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Supported HTTP methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST.
    Post,
}

impl Method {
    /// Parses a method token.
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

/// Minimal HTTP status codes used by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// 200 OK.
    Ok,
    /// 400 Bad Request.
    BadRequest,
    /// 404 Not Found.
    NotFound,
    /// 405 Method Not Allowed.
    MethodNotAllowed,
    /// 500 Internal Server Error.
    InternalServerError,
}

impl StatusCode {
    /// Numeric code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::BadRequest => 400,
            StatusCode::NotFound => 404,
            StatusCode::MethodNotAllowed => 405,
            StatusCode::InternalServerError => 500,
        }
    }

    /// Reason phrase.
    #[must_use]
    pub fn reason(self) -> &'static str {
        match self {
            StatusCode::Ok => "OK",
            StatusCode::BadRequest => "Bad Request",
            StatusCode::NotFound => "Not Found",
            StatusCode::MethodNotAllowed => "Method Not Allowed",
            StatusCode::InternalServerError => "Internal Server Error",
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path component of the request target (no query string).
    pub path: String,
    /// Parsed query parameters.
    pub query: HashMap<String, String>,
    /// Request headers (names lower-cased).
    pub headers: HashMap<String, String>,
    /// Request body (empty when absent).
    pub body: String,
}

impl Request {
    /// Reads and parses one request from a stream.
    ///
    /// Returns `None` for malformed requests (the caller responds 400).
    pub fn read_from<R: Read>(stream: R) -> Option<Request> {
        let mut reader = BufReader::new(stream);
        let mut request_line = String::new();
        reader.read_line(&mut request_line).ok()?;
        let mut parts = request_line.split_whitespace();
        let method = Method::parse(parts.next()?)?;
        let target = parts.next()?;
        let _version = parts.next()?;

        let (path, query) = split_target(target);

        let mut headers = HashMap::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).ok()?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
        }

        let body = match headers.get("content-length") {
            Some(len) => {
                let len: usize = len.parse().ok()?;
                // Guard against abusive uploads: the demo accepts CSVs up to 8 MiB.
                if len > 8 * 1024 * 1024 {
                    return None;
                }
                let mut buf = vec![0u8; len];
                reader.read_exact(&mut buf).ok()?;
                String::from_utf8(buf).ok()?
            }
            None => String::new(),
        };

        Some(Request {
            method,
            path,
            query,
            headers,
            body,
        })
    }

    /// A query parameter by name.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }
}

/// Splits a request target into its path and parsed query parameters.
fn split_target(target: &str) -> (String, HashMap<String, String>) {
    match target.split_once('?') {
        Some((path, query)) => (path.to_string(), parse_query(query)),
        None => (target.to_string(), HashMap::new()),
    }
}

/// Parses `a=1&b=two` into a map, percent-decoding values.
fn parse_query(query: &str) -> HashMap<String, String> {
    query
        .split('&')
        .filter(|piece| !piece.is_empty())
        .filter_map(|piece| {
            let (name, value) = piece.split_once('=')?;
            Some((percent_decode(name), percent_decode(value)))
        })
        .collect()
}

/// Minimal percent-decoding (`%XX` and `+` for space).
fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                match u8::from_str_radix(hex, 16) {
                    Ok(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(bytes[i]);
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP response ready to be written to a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Content type header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// 200 response with an HTML body.
    #[must_use]
    pub fn html(body: impl Into<String>) -> Self {
        Response {
            status: StatusCode::Ok,
            content_type: "text/html; charset=utf-8",
            body: body.into(),
        }
    }

    /// 200 response with a JSON body.
    #[must_use]
    pub fn json(body: impl Into<String>) -> Self {
        Response {
            status: StatusCode::Ok,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// Plain-text response with an arbitrary status.
    #[must_use]
    pub fn text(status: StatusCode, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// Serializes the response (status line, headers, body).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status.code(),
            self.status.reason(),
            self.content_type,
            self.body.len()
        );
        let mut out = head.into_bytes();
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    /// Writes the response to a stream.
    pub fn write_to<W: Write>(&self, mut stream: W) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_request_with_query() {
        let raw = "GET /datasets/cs/label?k=10&name=CS+departments HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = Request::read_from(raw.as_bytes()).unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/datasets/cs/label");
        assert_eq!(req.query_param("k"), Some("10"));
        assert_eq!(req.query_param("name"), Some("CS departments"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_request_with_body() {
        let body = "a,b\n1,2\n";
        let raw = format!(
            "POST /labels HTTP/1.1\r\nContent-Length: {}\r\nContent-Type: text/csv\r\n\r\n{}",
            body.len(),
            body
        );
        let req = Request::read_from(raw.as_bytes()).unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path, "/labels");
        assert_eq!(req.body, body);
        assert_eq!(
            req.headers.get("content-type").map(String::as_str),
            Some("text/csv")
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(Request::read_from("".as_bytes()).is_none());
        assert!(Request::read_from("BREW /coffee HTTP/1.1\r\n\r\n".as_bytes()).is_none());
        assert!(Request::read_from("GET\r\n\r\n".as_bytes()).is_none());
        // Oversized content length.
        let raw = "POST /labels HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(Request::read_from(raw.as_bytes()).is_none());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("caf%C3%A9"), "café");
    }

    #[test]
    fn response_serialization() {
        let resp = Response::json("{\"ok\":true}");
        let bytes = resp.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json"));
        assert!(text.contains("Content-Length: 11"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn status_codes() {
        assert_eq!(StatusCode::NotFound.code(), 404);
        assert_eq!(StatusCode::NotFound.reason(), "Not Found");
        assert_eq!(StatusCode::InternalServerError.code(), 500);
        let resp = Response::text(StatusCode::BadRequest, "nope");
        assert!(String::from_utf8(resp.to_bytes())
            .unwrap()
            .contains("400 Bad Request"));
    }
}
