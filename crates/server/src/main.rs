//! The `ranking-facts-server` binary: serves the demo flow of the paper over
//! HTTP with the three pre-loaded synthetic datasets.
//!
//! ```sh
//! cargo run -p rf-server --bin ranking-facts-server -- 127.0.0.1:8080 \
//!     --workers 4 --reactors 4 --max-conns 4096 --max-pending 1024 \
//!     --cache-ttl-secs 300 --cache-entries 128 --cache-bytes 67108864
//! ```

use rf_server::{AppState, DatasetCatalog, Server, ServerOptions};

fn main() {
    let options = match ServerOptions::parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: ranking-facts-server [ADDRESS] [--workers N] [--reactors N] \
                 [--max-conns N] [--idle-timeout-ms N] [--request-deadline-ms N] \
                 [--max-pending N] [--cache-ttl-secs N] [--cache-entries N] \
                 [--cache-bytes N] [--slow-threshold-ms N] [--trace-ring-entries N] \
                 [--synth-rows N]..."
            );
            std::process::exit(2);
        }
    };

    println!("Loading demonstration datasets (synthetic CS departments, COMPAS, German credit)…");
    let catalog = DatasetCatalog::with_demo_datasets();
    for &rows in &options.synth_rows {
        println!("Generating synthetic scenario with {rows} rows…");
        let slug = catalog.register_synth_scenario(rows);
        println!("Registered /datasets/{slug}");
    }
    let state = AppState::with_service(catalog, options.label_service());
    match options.cache_ttl_secs {
        Some(secs) => println!(
            "Label cache: {} entries / {} bytes, TTL {secs}s",
            options.cache_entries, options.cache_bytes
        ),
        None => println!(
            "Label cache: {} entries / {} bytes, no TTL",
            options.cache_entries, options.cache_bytes
        ),
    }

    let config = options.server_config();
    let server = match Server::bind_state(state, &config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("cannot bind {}: {err}", config.bind_address);
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!(
            "Ranking Facts is listening on http://{addr}/ \
             ({} reactor shard(s), {} label workers)",
            config.reactors.max(1),
            config.workers
        ),
        Err(err) => eprintln!("cannot determine local address: {err}"),
    }
    if let Err(err) = server.run() {
        eprintln!("server error: {err}");
        std::process::exit(1);
    }
}
