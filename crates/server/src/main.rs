//! The `ranking-facts-server` binary: serves the demo flow of the paper over
//! HTTP with the three pre-loaded synthetic datasets.
//!
//! ```sh
//! cargo run -p rf-server --bin ranking-facts-server -- 127.0.0.1:8080
//! ```

use rf_server::{DatasetCatalog, Server, ServerConfig};

fn main() {
    let bind_address = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:8080".to_string());
    let config = ServerConfig {
        bind_address,
        workers: 4,
    };

    println!("Loading demonstration datasets (synthetic CS departments, COMPAS, German credit)…");
    let catalog = DatasetCatalog::with_demo_datasets();

    let server = match Server::bind(catalog, &config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("cannot bind {}: {err}", config.bind_address);
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("Ranking Facts is listening on http://{addr}/"),
        Err(err) => eprintln!("cannot determine local address: {err}"),
    }
    if let Err(err) = server.run() {
        eprintln!("server error: {err}");
        std::process::exit(1);
    }
}
