//! Property tests for the log2 latency histogram: merge equals recording the
//! union, bucket counts are monotone under concurrent recording, and derived
//! quantiles bracket the true order statistic.

use proptest::prelude::*;
use rf_obs::{HistogramSnapshot, LatencyHistogram, BUCKET_COUNT};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) is exactly the histogram of the union of both sample sets.
    #[test]
    fn merge_equals_union_recording(
        left in prop::collection::vec(0u64..=1_000_000_000, 0..64),
        right in prop::collection::vec(0u64..=1_000_000_000, 0..64),
    ) {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let union = LatencyHistogram::new();
        for &micros in &left {
            a.record_micros(micros);
            union.record_micros(micros);
        }
        for &micros in &right {
            b.record_micros(micros);
            union.record_micros(micros);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        prop_assert_eq!(merged, union.snapshot());
    }

    /// The derived quantile brackets the true order statistic: it is an upper
    /// bound, and (log2 buckets) at most twice the true value.
    #[test]
    fn quantile_brackets_true_value(
        samples in prop::collection::vec(0u64..=100_000_000, 1..128),
        q_permille in 0u64..=1000,
    ) {
        let hist = LatencyHistogram::new();
        for &micros in &samples {
            hist.record_micros(micros);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let q = q_permille as f64 / 1000.0;
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let derived = hist.snapshot().quantile_micros(q);
        prop_assert!(
            derived >= truth,
            "quantile {} must be an upper bound: derived {} < true {}",
            q, derived, truth
        );
        let ceiling = truth.saturating_mul(2).max(1);
        prop_assert!(
            derived <= ceiling,
            "quantile {} too loose: derived {} > 2x true {}",
            q, derived, truth
        );
    }

    /// Under concurrent recording from N threads, every bucket observed by a
    /// sampling reader only ever grows, and the final counts are exact.
    #[test]
    fn buckets_monotone_under_concurrent_recording(
        threads in 2usize..=4,
        per_thread in 1usize..=400,
    ) {
        let hist = Arc::new(LatencyHistogram::new());
        let stop = Arc::new(AtomicBool::new(false));

        let reader = {
            let hist = Arc::clone(&hist);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut previous = hist.snapshot();
                let mut monotone = true;
                while !stop.load(Ordering::Relaxed) {
                    let current = hist.snapshot();
                    for index in 0..BUCKET_COUNT {
                        if current.buckets[index] < previous.buckets[index] {
                            monotone = false;
                        }
                    }
                    if current.sum_micros < previous.sum_micros
                        || current.max_micros < previous.max_micros
                    {
                        monotone = false;
                    }
                    previous = current;
                    std::thread::yield_now();
                }
                monotone
            })
        };

        let writers: Vec<_> = (0..threads)
            .map(|t| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        hist.record_micros((t * per_thread + i) as u64);
                    }
                })
            })
            .collect();
        for writer in writers {
            writer.join().expect("writer thread");
        }
        stop.store(true, Ordering::Relaxed);
        let monotone = reader.join().expect("reader thread");
        prop_assert!(monotone, "a sampled bucket, sum, or max decreased");
        prop_assert_eq!(hist.snapshot().count(), (threads * per_thread) as u64);
    }
}

#[test]
fn merge_identity_is_empty_snapshot() {
    let hist = LatencyHistogram::new();
    hist.record_micros(42);
    let snap = hist.snapshot();
    assert_eq!(snap.merge(&HistogramSnapshot::empty()), snap);
}
