//! Lock-free log2-bucketed latency histograms.
//!
//! A [`LatencyHistogram`] is a fixed array of 64 `AtomicU64` bucket counters
//! indexed by the bit length of the observed duration in microseconds:
//! bucket 0 holds exact zeros, bucket `i` (for `i >= 1`) holds observations
//! in `[2^(i-1), 2^i - 1]` µs.  Recording is three relaxed atomic adds (bucket,
//! sum, max) — no locks, no allocation — so it is safe on the reactor and
//! worker hot paths.  Readers take a [`HistogramSnapshot`] (a plain copy of
//! the counters) and derive quantiles from the cumulative bucket counts; the
//! derived quantile is the *upper bound* of the bucket holding the rank, so it
//! always brackets the true value from above within a factor of two.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets: one per possible bit length of a `u64` microsecond
/// count, plus bucket 0 for exact zeros.
pub const BUCKET_COUNT: usize = 64;

/// A mergeable, lock-free latency histogram with log2 bucket boundaries.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.  `const` so histograms can live in
    /// `static`s without lazy initialization.
    #[must_use]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; BUCKET_COUNT],
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// The bucket index for an observation of `micros` microseconds: its bit
    /// length, clamped to the last bucket.
    #[must_use]
    pub fn bucket_index(micros: u64) -> usize {
        ((u64::BITS - micros.leading_zeros()) as usize).min(BUCKET_COUNT - 1)
    }

    /// The inclusive upper bound (in µs) of bucket `index`.
    ///
    /// Bucket 0 holds only zeros; the final bucket is unbounded and reports
    /// `u64::MAX`.
    #[must_use]
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= BUCKET_COUNT - 1 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        self.record_micros(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one observation expressed in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the counters.
    ///
    /// Buckets are loaded individually (relaxed), so a snapshot taken during
    /// concurrent recording may split a logically-single observation across
    /// reads — but every individual counter is monotone, so two successive
    /// snapshots never show a decrease.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKET_COUNT];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`LatencyHistogram`]'s counters, safe to merge and to
/// derive quantiles from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub buckets: [u64; BUCKET_COUNT],
    /// Sum of all recorded microsecond values.
    pub sum_micros: u64,
    /// Largest recorded microsecond value.
    pub max_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (zero observations).
    #[must_use]
    pub const fn empty() -> Self {
        Self {
            buckets: [0; BUCKET_COUNT],
            sum_micros: 0,
            max_micros: 0,
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().copied().fold(0u64, u64::saturating_add)
    }

    /// Mean observation in microseconds (0 when empty).
    #[must_use]
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros.checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in microseconds: the upper bound of
    /// the bucket containing the `ceil(q · count)`-th smallest observation.
    ///
    /// Returns 0 for an empty snapshot.  The result always brackets the true
    /// order statistic: `true <= quantile(q) < 2 · true` (exact for zeros and
    /// for the unbounded last bucket, which reports the recorded max).
    #[must_use]
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        // ceil(q * count), clamped into 1..=count.
        let rank = ((clamped * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(bucket);
            if cumulative >= rank {
                if index == BUCKET_COUNT - 1 {
                    // The last bucket is unbounded; the max is the tightest
                    // upper bound we know.
                    return self.max_micros;
                }
                return Self::upper_bound(index);
            }
        }
        self.max_micros
    }

    /// Median (p50) in microseconds.
    #[must_use]
    pub fn p50_micros(&self) -> u64 {
        self.quantile_micros(0.50)
    }

    /// 90th percentile in microseconds.
    #[must_use]
    pub fn p90_micros(&self) -> u64 {
        self.quantile_micros(0.90)
    }

    /// 99th percentile in microseconds.
    #[must_use]
    pub fn p99_micros(&self) -> u64 {
        self.quantile_micros(0.99)
    }

    /// The inclusive upper bound (in µs) of bucket `index` (see
    /// [`LatencyHistogram::bucket_upper_bound`]).
    #[must_use]
    pub fn upper_bound(index: usize) -> u64 {
        LatencyHistogram::bucket_upper_bound(index)
    }

    /// Merges two snapshots: bucket-wise sums, summed totals, max of maxes.
    /// Equivalent to having recorded the union of both observation sets into
    /// one histogram.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let mut buckets = [0u64; BUCKET_COUNT];
        for (index, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[index].saturating_add(other.buckets[index]);
        }
        Self {
            buckets,
            sum_micros: self.sum_micros.saturating_add(other.sum_micros),
            max_micros: self.max_micros.max(other.max_micros),
        }
    }

    /// Subtracts an earlier snapshot of the *same* histogram, yielding the
    /// observations recorded in between.  Buckets saturate at zero, so a
    /// mismatched pair degrades to an undercount instead of wrapping.
    #[must_use]
    pub fn since(&self, earlier: &Self) -> Self {
        let mut buckets = [0u64; BUCKET_COUNT];
        for (index, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[index].saturating_sub(earlier.buckets[index]);
        }
        Self {
            buckets,
            sum_micros: self.sum_micros.saturating_sub(earlier.sum_micros),
            max_micros: self.max_micros,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(1023), 10);
        assert_eq!(LatencyHistogram::bucket_index(1024), 11);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn upper_bounds_cover_their_buckets() {
        for micros in [0u64, 1, 2, 3, 7, 8, 100, 1 << 20, u64::MAX / 2] {
            let index = LatencyHistogram::bucket_index(micros);
            assert!(micros <= LatencyHistogram::bucket_upper_bound(index));
            if index > 0 {
                assert!(micros > LatencyHistogram::bucket_upper_bound(index - 1));
            }
        }
    }

    #[test]
    fn record_and_quantiles() {
        let hist = LatencyHistogram::new();
        for micros in [10u64, 20, 30, 40, 1000] {
            hist.record_micros(micros);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.sum_micros, 1100);
        assert_eq!(snap.max_micros, 1000);
        assert_eq!(snap.mean_micros(), 220);
        // p50 rank is 3 → value 30 → bucket [16,31] → upper bound 31.
        assert_eq!(snap.p50_micros(), 31);
        // p99 rank is 5 → value 1000 → bucket [512,1023] → upper bound 1023.
        assert_eq!(snap.p99_micros(), 1023);
        assert!(snap.p50_micros() <= snap.p90_micros());
        assert!(snap.p90_micros() <= snap.p99_micros());
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.mean_micros(), 0);
        assert_eq!(snap.quantile_micros(0.5), 0);
        assert_eq!(snap, HistogramSnapshot::empty());
    }

    #[test]
    fn merge_matches_union_recording() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let union = LatencyHistogram::new();
        for micros in [1u64, 5, 9, 120] {
            a.record_micros(micros);
            union.record_micros(micros);
        }
        for micros in [0u64, 7, 7, 4096] {
            b.record_micros(micros);
            union.record_micros(micros);
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), union.snapshot());
    }

    #[test]
    fn since_recovers_interval_counts() {
        let hist = LatencyHistogram::new();
        hist.record_micros(10);
        let before = hist.snapshot();
        hist.record_micros(100);
        hist.record_micros(200);
        let delta = hist.snapshot().since(&before);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum_micros, 300);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        hist.record_micros(t * 1000 + i);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("recorder thread");
        }
        assert_eq!(hist.snapshot().count(), 4000);
    }
}
