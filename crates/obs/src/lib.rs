//! Zero-dependency observability primitives for the Ranking Facts stack.
//!
//! The paper's thesis — opaque rankings deserve nutritional labels — applies
//! to the server itself: a request should carry a label of its own lifecycle.
//! This crate provides the three pieces every layer shares:
//!
//! * [`LatencyHistogram`] — lock-free log2-bucketed latency histograms
//!   (`[AtomicU64; 64]`, mergeable snapshots, p50/p90/p99/max derivation),
//!   grouped per [`Stage`] in a [`StageHistograms`] set.
//! * [`RequestSpan`] / [`RequestTrace`] — per-request span vectors with a
//!   `shard:seq` [`RequestId`], finished into immutable traces; slow traces
//!   land in a bounded [`TraceRing`].
//! * A thread-local *active span* ([`activate`] / [`with_active`]) so code
//!   deep in the pipeline can attribute stage timings to the current request
//!   without plumbing request state through every call.
//!
//! The crate is a leaf: no dependencies, no `unsafe`, nothing but `std`
//! atomics — so `rf-net`, `rf-runtime`, `rf-core`, and `rf-server` can all
//! depend on it without coupling to each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod trace;

pub use histogram::{HistogramSnapshot, LatencyHistogram, BUCKET_COUNT};
pub use trace::{
    activate, current, with_active, CacheOutcome, RequestId, RequestSpan, RequestTrace, ShedReason,
    SpanGuard, TraceRing,
};

use std::time::Duration;

/// Number of instrumented request lifecycle stages.
pub const STAGE_COUNT: usize = 9;

/// The instrumented stages of a request's lifecycle, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// First request byte → complete parsed request (reactor thread).
    Parse,
    /// Admission-control decision (pending gauge + deadline predicate).
    Admission,
    /// Dispatch enqueue → first poll on a worker (true queue wait).
    QueueWait,
    /// Label-cache probe, including single-flight join/lead resolution.
    CacheLookup,
    /// On-disk tier probe on a memory miss: read, framing validation, and
    /// (on a hit) promotion into the in-memory cache.
    CacheDisk,
    /// `AnalysisPipeline::prepare` (ranking, groups, normalized scoring).
    Prepare,
    /// `AnalysisPipeline::render` (widget fan-out, label assembly).
    Render,
    /// Monte-Carlo stability trials inside render (batched estimator).
    McTrials,
    /// Response enqueue → socket flush (reactor thread).
    Write,
}

impl Stage {
    /// All stages in pipeline order (index order).
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Parse,
        Stage::Admission,
        Stage::QueueWait,
        Stage::CacheLookup,
        Stage::CacheDisk,
        Stage::Prepare,
        Stage::Render,
        Stage::McTrials,
        Stage::Write,
    ];

    /// The stage's fixed array index.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Admission => 1,
            Stage::QueueWait => 2,
            Stage::CacheLookup => 3,
            Stage::CacheDisk => 4,
            Stage::Prepare => 5,
            Stage::Render => 6,
            Stage::McTrials => 7,
            Stage::Write => 8,
        }
    }

    /// Stable snake_case name used as the `stage` label in `/metrics` and as
    /// keys in `/debug/slow` traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::CacheLookup => "cache_lookup",
            Stage::CacheDisk => "cache_disk",
            Stage::Prepare => "prepare",
            Stage::Render => "render",
            Stage::McTrials => "mc_trials",
            Stage::Write => "write",
        }
    }
}

/// One [`LatencyHistogram`] per [`Stage`] — the unit the reactor shards and
/// the shared service side each own.
#[derive(Debug)]
pub struct StageHistograms {
    stages: [LatencyHistogram; STAGE_COUNT],
}

impl Default for StageHistograms {
    fn default() -> Self {
        Self::new()
    }
}

impl StageHistograms {
    /// Creates an empty histogram set (`const`, so it can back a `static`).
    #[must_use]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: LatencyHistogram = LatencyHistogram::new();
        Self {
            stages: [EMPTY; STAGE_COUNT],
        }
    }

    /// Records one observation for `stage`.
    pub fn record(&self, stage: Stage, elapsed: Duration) {
        self.stages[stage.index()].record(elapsed);
    }

    /// Records one observation for `stage`, expressed in microseconds.
    pub fn record_micros(&self, stage: Stage, micros: u64) {
        self.stages[stage.index()].record_micros(micros);
    }

    /// The underlying histogram for `stage`.
    #[must_use]
    pub fn histogram(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage.index()]
    }

    /// Point-in-time copies of every stage's counters.
    #[must_use]
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            stages: Stage::ALL.map(|stage| self.stages[stage.index()].snapshot()),
        }
    }
}

/// An owned snapshot of a full [`StageHistograms`] set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Per-stage snapshots, indexed by [`Stage::index`].
    pub stages: [HistogramSnapshot; STAGE_COUNT],
}

impl Default for StageSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl StageSnapshot {
    /// A snapshot with zero observations in every stage.
    #[must_use]
    pub const fn empty() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: HistogramSnapshot = HistogramSnapshot::empty();
        Self {
            stages: [EMPTY; STAGE_COUNT],
        }
    }

    /// The snapshot for `stage`.
    #[must_use]
    pub fn get(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage.index()]
    }

    /// Stage-wise merge (see [`HistogramSnapshot::merge`]).
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            stages: Stage::ALL
                .map(|stage| self.stages[stage.index()].merge(&other.stages[stage.index()])),
        }
    }
}

static SERVICE_STAGES: StageHistograms = StageHistograms::new();

/// The process-wide histogram set for the *service-side* stages (`admission`,
/// `queue_wait`, `cache_lookup`, `prepare`, `render`, `mc_trials`), shared by
/// every reactor shard because the worker pool is shared.  Network-side
/// stages (`parse`, `write`) are recorded into per-shard sets owned by each
/// reactor instead.
#[must_use]
pub fn service_stages() -> &'static StageHistograms {
    &SERVICE_STAGES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_match_all_order() {
        for (position, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), position);
        }
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT);
    }

    #[test]
    fn stage_histograms_record_per_stage() {
        let stages = StageHistograms::new();
        stages.record(Stage::Prepare, Duration::from_micros(100));
        stages.record(Stage::Prepare, Duration::from_micros(200));
        stages.record(Stage::Write, Duration::from_micros(5));
        let snap = stages.snapshot();
        assert_eq!(snap.get(Stage::Prepare).count(), 2);
        assert_eq!(snap.get(Stage::Write).count(), 1);
        assert_eq!(snap.get(Stage::Parse).count(), 0);
    }

    #[test]
    fn stage_snapshot_merge_is_stagewise() {
        let a = StageHistograms::new();
        let b = StageHistograms::new();
        a.record(Stage::Render, Duration::from_micros(10));
        b.record(Stage::Render, Duration::from_micros(20));
        b.record(Stage::Parse, Duration::from_micros(1));
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.get(Stage::Render).count(), 2);
        assert_eq!(merged.get(Stage::Parse).count(), 1);
    }

    #[test]
    fn service_stages_is_shared() {
        let before = service_stages().snapshot().get(Stage::Admission).count();
        service_stages().record(Stage::Admission, Duration::from_micros(1));
        let after = service_stages().snapshot().get(Stage::Admission).count();
        assert!(after > before);
    }
}
