//! Request identities, per-request span recording, and the bounded
//! slow-trace ring.
//!
//! Every dispatched request gets a [`RequestId`] (`shard:seq`, echoed back as
//! `X-Request-Id`) and an atomic [`RequestSpan`] that travels with the
//! request: the reactor records `parse`/`write` on its thread, admission and
//! the worker-side stages are recorded from wherever they run (all slots are
//! atomics, so `&RequestSpan` is enough).  Worker code that is far from the
//! request plumbing (the cache, the pipeline, the Monte-Carlo estimator)
//! attributes its stage timings through a thread-local *active span*
//! installed by the dispatch job ([`activate`] / [`with_active`]).
//!
//! When the response flushes, the span is finished into an immutable
//! [`RequestTrace`]; traces whose total latency exceeds the configured slow
//! threshold land in a bounded [`TraceRing`] (fixed slot array, atomic write
//! cursor, per-slot pointer swap) served at `GET /debug/slow`.

use crate::{Stage, STAGE_COUNT};
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A request identity: the reactor shard that accepted it and a per-shard
/// sequence number.  Rendered as `shard:seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId {
    /// The accepting reactor shard.
    pub shard: u32,
    /// Monotone per-shard sequence number (starts at 1).
    pub seq: u64,
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.shard, self.seq)
    }
}

/// How the label cache resolved a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache interaction recorded (non-label routes).
    Unknown,
    /// Served from the warm cache.
    Hit,
    /// Generated fresh (this request led the computation).
    Miss,
    /// Waited on an identical in-flight computation (single-flight join).
    Coalesced,
}

impl CacheOutcome {
    /// Stable lowercase name used in traces and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Unknown => "unknown",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }

    fn from_u8(value: u8) -> Self {
        match value {
            1 => CacheOutcome::Hit,
            2 => CacheOutcome::Miss,
            3 => CacheOutcome::Coalesced,
            _ => CacheOutcome::Unknown,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            CacheOutcome::Unknown => 0,
            CacheOutcome::Hit => 1,
            CacheOutcome::Miss => 2,
            CacheOutcome::Coalesced => 3,
        }
    }
}

/// Why admission control shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The pending-dispatch gauge hit `--max-pending`.
    MaxPending,
    /// The request's `deadline_ms` budget was already spent by the predicted
    /// queue wait.
    DeadlineSpent,
}

impl ShedReason {
    /// Stable lowercase name used in traces and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::MaxPending => "max_pending",
            ShedReason::DeadlineSpent => "deadline_spent",
        }
    }

    fn from_u8(value: u8) -> Option<Self> {
        match value {
            1 => Some(ShedReason::MaxPending),
            2 => Some(ShedReason::DeadlineSpent),
            _ => None,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            ShedReason::MaxPending => 1,
            ShedReason::DeadlineSpent => 2,
        }
    }
}

/// A live per-request span.  All slots are atomics so any thread holding an
/// `Arc<RequestSpan>` (reactor, dispatch, worker) can record into it without
/// locks; stage slots *accumulate*, so repeated records (e.g. Monte-Carlo
/// batches) sum up.
#[derive(Debug)]
pub struct RequestSpan {
    id: RequestId,
    started: Instant,
    stage_micros: [AtomicU64; STAGE_COUNT],
    cache: AtomicU8,
    truncated: AtomicBool,
    shed: AtomicU8,
}

impl RequestSpan {
    /// Starts a span now.
    #[must_use]
    pub fn begin(id: RequestId) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            id,
            started: Instant::now(),
            stage_micros: [ZERO; STAGE_COUNT],
            cache: AtomicU8::new(0),
            truncated: AtomicBool::new(false),
            shed: AtomicU8::new(0),
        }
    }

    /// The request's identity.
    #[must_use]
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Adds `elapsed` to the span's slot for `stage`.
    pub fn record(&self, stage: Stage, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.stage_micros[stage.index()].fetch_add(micros, Ordering::Relaxed);
    }

    /// Reads the accumulated microseconds for `stage`.
    #[must_use]
    pub fn stage_micros(&self, stage: Stage) -> u64 {
        self.stage_micros[stage.index()].load(Ordering::Relaxed)
    }

    /// Records how the label cache resolved this request.
    pub fn set_cache(&self, outcome: CacheOutcome) {
        self.cache.store(outcome.as_u8(), Ordering::Relaxed);
    }

    /// Marks the label as deadline-truncated.
    pub fn set_truncated(&self, truncated: bool) {
        self.truncated.store(truncated, Ordering::Relaxed);
    }

    /// Records that admission control shed this request.
    pub fn set_shed(&self, reason: ShedReason) {
        self.shed.store(reason.as_u8(), Ordering::Relaxed);
    }

    /// Finishes the span into an immutable trace; total latency is measured
    /// from `begin` to this call.
    #[must_use]
    pub fn finish(&self) -> RequestTrace {
        let mut stage_micros = [0u64; STAGE_COUNT];
        for (slot, stage) in stage_micros.iter_mut().zip(self.stage_micros.iter()) {
            *slot = stage.load(Ordering::Relaxed);
        }
        RequestTrace {
            id: self.id,
            total_micros: u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX),
            stage_micros,
            cache: CacheOutcome::from_u8(self.cache.load(Ordering::Relaxed)),
            truncated: self.truncated.load(Ordering::Relaxed),
            shed: ShedReason::from_u8(self.shed.load(Ordering::Relaxed)),
        }
    }
}

/// A completed, immutable request trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// The request's identity (`shard:seq`).
    pub id: RequestId,
    /// End-to-end latency from dispatch to response flush, in µs.
    pub total_micros: u64,
    /// Accumulated per-stage microseconds, indexed by [`Stage::index`].
    pub stage_micros: [u64; STAGE_COUNT],
    /// How the label cache resolved the request.
    pub cache: CacheOutcome,
    /// Whether the label was deadline-truncated.
    pub truncated: bool,
    /// Shed reason, when admission control rejected the request.
    pub shed: Option<ShedReason>,
}

/// A bounded ring of completed slow traces.
///
/// Writers claim a slot with one atomic `fetch_add` on the cursor and swap an
/// `Arc` into it; the per-slot mutex guards only that pointer swap (never the
/// trace contents), so pushes from many reactor threads do not contend unless
/// they collide on the very same slot.  The ring keeps the most recent
/// `capacity` traces; older entries are overwritten.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<Arc<RequestTrace>>>>,
    cursor: AtomicUsize,
    recorded: AtomicU64,
}

impl TraceRing {
    /// Creates a ring holding up to `capacity` traces (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// The fixed slot count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever pushed (a monotone counter, exported in `/metrics`).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Pushes a trace, overwriting the oldest entry once full.
    pub fn push(&self, trace: RequestTrace) {
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let entry = Arc::new(trace);
        let mut guard = match self.slots[slot].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = Some(entry);
        drop(guard);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies out the current contents, newest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Arc<RequestTrace>> {
        let len = self.slots.len();
        let cursor = self.cursor.load(Ordering::Relaxed);
        let mut traces = Vec::with_capacity(len);
        // Walk backwards from the most recently written slot.
        for back in 1..=len {
            let slot = (cursor + len - back) % len;
            let guard = match self.slots[slot].lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            if let Some(trace) = guard.as_ref() {
                traces.push(Arc::clone(trace));
            }
        }
        traces
    }
}

thread_local! {
    static ACTIVE_SPAN: RefCell<Option<Arc<RequestSpan>>> = const { RefCell::new(None) };
}

/// Restores the previously active span when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    previous: Option<Arc<RequestSpan>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        ACTIVE_SPAN.with(|active| {
            *active.borrow_mut() = self.previous.take();
        });
    }
}

/// Installs `span` as this thread's active span for the lifetime of the
/// returned guard.  Code deep in the pipeline attributes stage timings to the
/// current request via [`with_active`] without any request plumbing.
#[must_use]
pub fn activate(span: Arc<RequestSpan>) -> SpanGuard {
    let previous = ACTIVE_SPAN.with(|active| active.borrow_mut().replace(span));
    SpanGuard { previous }
}

/// This thread's active span, if any — for propagating the span across a
/// fan-out: capture it on the spawning thread, [`activate`] the clone inside
/// each spawned task.
#[must_use]
pub fn current() -> Option<Arc<RequestSpan>> {
    ACTIVE_SPAN.with(|active| active.borrow().clone())
}

/// Runs `f` against this thread's active span, if one is installed.
pub fn with_active<F: FnOnce(&RequestSpan)>(f: F) {
    ACTIVE_SPAN.with(|active| {
        if let Some(span) = active.borrow().as_ref() {
            f(span);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_id_display() {
        let id = RequestId { shard: 3, seq: 41 };
        assert_eq!(id.to_string(), "3:41");
    }

    #[test]
    fn span_accumulates_and_finishes() {
        let span = RequestSpan::begin(RequestId { shard: 0, seq: 1 });
        span.record(Stage::McTrials, Duration::from_micros(10));
        span.record(Stage::McTrials, Duration::from_micros(5));
        span.record(Stage::Parse, Duration::from_micros(2));
        span.set_cache(CacheOutcome::Miss);
        span.set_truncated(true);
        let trace = span.finish();
        assert_eq!(trace.stage_micros[Stage::McTrials.index()], 15);
        assert_eq!(trace.stage_micros[Stage::Parse.index()], 2);
        assert_eq!(trace.cache, CacheOutcome::Miss);
        assert!(trace.truncated);
        assert_eq!(trace.shed, None);
    }

    #[test]
    fn shed_reason_round_trips() {
        let span = RequestSpan::begin(RequestId { shard: 1, seq: 2 });
        span.set_shed(ShedReason::MaxPending);
        assert_eq!(span.finish().shed, Some(ShedReason::MaxPending));
    }

    #[test]
    fn ring_keeps_newest_and_wraps() {
        let ring = TraceRing::new(3);
        for seq in 1..=5u64 {
            let span = RequestSpan::begin(RequestId { shard: 0, seq });
            ring.push(span.finish());
        }
        assert_eq!(ring.recorded(), 5);
        let traces = ring.snapshot();
        let seqs: Vec<u64> = traces.iter().map(|t| t.id.seq).collect();
        assert_eq!(seqs, vec![5, 4, 3]);
    }

    #[test]
    fn ring_capacity_is_at_least_one() {
        let ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        let span = RequestSpan::begin(RequestId { shard: 0, seq: 9 });
        ring.push(span.finish());
        assert_eq!(ring.snapshot().len(), 1);
    }

    #[test]
    fn active_span_guard_nests_and_restores() {
        let outer = Arc::new(RequestSpan::begin(RequestId { shard: 0, seq: 1 }));
        let inner = Arc::new(RequestSpan::begin(RequestId { shard: 0, seq: 2 }));
        let outer_guard = activate(Arc::clone(&outer));
        {
            let _inner_guard = activate(Arc::clone(&inner));
            with_active(|span| span.record(Stage::Prepare, Duration::from_micros(7)));
        }
        with_active(|span| span.record(Stage::Render, Duration::from_micros(3)));
        drop(outer_guard);
        let mut untouched = true;
        with_active(|_| untouched = false);
        assert!(untouched, "no span should remain active");
        assert_eq!(inner.stage_micros(Stage::Prepare), 7);
        assert_eq!(inner.stage_micros(Stage::Render), 0);
        assert_eq!(outer.stage_micros(Stage::Render), 3);
        assert_eq!(outer.stage_micros(Stage::Prepare), 0);
    }
}
