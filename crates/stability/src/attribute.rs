//! Per-attribute stability.
//!
//! "Alternatively, stability can be computed with respect to each scoring
//! attribute" (paper §2.2).  For every scoring attribute this module fits the
//! same rank-versus-value line as the headline estimator, but to the
//! attribute's own (min-max normalized) values in rank order.  An attribute
//! whose values barely change across adjacent ranks contributes instability:
//! small measurement noise in that attribute can swap items.

use crate::error::{StabilityError, StabilityResult};
use crate::slope::{StabilityVerdict, DEFAULT_SLOPE_THRESHOLD};
use rf_ranking::{Ranking, ScoringFunction};
use rf_stats::LinearFit;
use rf_table::{NormalizationMethod, Normalizer, Table};

/// Stability of one scoring attribute.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttributeStability {
    /// Attribute name.
    pub attribute: String,
    /// Weight of the attribute in the scoring function.
    pub weight: f64,
    /// Slope magnitude of the attribute's normalized values against
    /// normalized rank, over the whole ranking.
    pub slope_magnitude: f64,
    /// R² of that fit (how linear the attribute's decay over ranks is).
    pub r_squared: f64,
    /// Verdict at the shared threshold.
    pub verdict: StabilityVerdict,
}

/// Computes per-attribute stability for every attribute of `scoring` on the
/// ranking it induced over `table`.
///
/// # Errors
/// Propagates table/normalization errors; requires at least two ranked items.
pub fn attribute_stability(
    table: &Table,
    scoring: &ScoringFunction,
    ranking: &Ranking,
) -> StabilityResult<Vec<AttributeStability>> {
    attribute_stability_with_threshold(table, scoring, ranking, DEFAULT_SLOPE_THRESHOLD)
}

/// Computes per-attribute stability with an explicit threshold.
///
/// # Errors
/// Propagates table/normalization errors; requires at least two ranked items
/// and a positive finite threshold.
pub fn attribute_stability_with_threshold(
    table: &Table,
    scoring: &ScoringFunction,
    ranking: &Ranking,
    threshold: f64,
) -> StabilityResult<Vec<AttributeStability>> {
    let matrix = normalized_values_in_rank_order(table, scoring, ranking)?;
    attribute_stability_from_normalized(scoring, &matrix, threshold)
}

/// The min-max-normalized values of every scoring attribute, reordered by
/// rank (missing values become `NaN`) — the shared intermediate of
/// per-attribute stability.
///
/// `rf-core`'s analysis context computes this matrix exactly once per label
/// and hands it to [`attribute_stability_from_normalized`], so the widget
/// fan-out never re-fits the normalizer.
///
/// # Errors
/// Propagates table/normalization errors; requires at least two ranked items.
pub fn normalized_values_in_rank_order(
    table: &Table,
    scoring: &ScoringFunction,
    ranking: &Ranking,
) -> StabilityResult<Vec<(String, Vec<f64>)>> {
    if ranking.len() < 2 {
        return Err(StabilityError::TooFewItems {
            available: ranking.len(),
            required: 2,
        });
    }
    let names: Vec<&str> = scoring.attribute_names();
    // Min-max normalization puts every attribute on the same [0, 1] scale so
    // that slope magnitudes are comparable across attributes, regardless of
    // the normalization the scoring function itself used.
    let normalizer = Normalizer::fit(table, &names, NormalizationMethod::MinMax)?;
    let order = ranking.order();
    let mut matrix = Vec::with_capacity(names.len());
    for weight in scoring.weights() {
        let options = table.numeric_column_options(&weight.attribute)?;
        let values_in_rank_order: Vec<f64> = order
            .iter()
            .map(|&row| {
                options[row]
                    .map(|v| {
                        normalizer
                            .transform_value(&weight.attribute, v)
                            .expect("fitted column")
                    })
                    .unwrap_or(f64::NAN)
            })
            .collect();
        matrix.push((weight.attribute.clone(), values_in_rank_order));
    }
    Ok(matrix)
}

/// Fits the per-attribute stability lines to a precomputed normalized matrix
/// (see [`normalized_values_in_rank_order`]).
///
/// # Errors
/// Requires a positive finite threshold and at least two finite values per
/// attribute.
pub fn attribute_stability_from_normalized(
    scoring: &ScoringFunction,
    matrix: &[(String, Vec<f64>)],
    threshold: f64,
) -> StabilityResult<Vec<AttributeStability>> {
    if !(threshold.is_finite() && threshold > 0.0) {
        return Err(StabilityError::InvalidParameter {
            parameter: "threshold",
            message: format!("threshold must be positive and finite, got {threshold}"),
        });
    }
    // The x axis (normalized rank grid) is shared by every attribute's fit.
    let rows = matrix.first().map_or(0, |(_, values)| values.len());
    let x: Vec<f64> = (0..rows).map(|i| i as f64 / (rows - 1) as f64).collect();

    let mut out = Vec::with_capacity(matrix.len());
    for ((attribute, values_in_rank_order), weight) in matrix.iter().zip(scoring.weights()) {
        debug_assert_eq!(attribute, &weight.attribute, "matrix follows recipe order");
        debug_assert_eq!(values_in_rank_order.len(), rows, "uniform matrix columns");
        // Missing values would poison the fit; replace them with the slice
        // mean so a sparse attribute degrades gracefully instead of erroring.
        let finite: Vec<f64> = values_in_rank_order
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        if finite.len() < 2 {
            return Err(StabilityError::TooFewItems {
                available: finite.len(),
                required: 2,
            });
        }
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        let cleaned: Vec<f64> = values_in_rank_order
            .iter()
            .map(|v| if v.is_finite() { *v } else { mean })
            .collect();
        let (slope_magnitude, r_squared) = match LinearFit::fit(&x, &cleaned) {
            Ok(fit) => (fit.slope.abs(), fit.r_squared),
            Err(rf_stats::StatsError::ZeroVariance { .. }) => (0.0, 1.0),
            Err(err) => return Err(StabilityError::Stats(err)),
        };
        out.push(AttributeStability {
            attribute: attribute.clone(),
            weight: weight.weight,
            slope_magnitude,
            r_squared,
            verdict: StabilityVerdict::from_slope(slope_magnitude, threshold),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    fn table() -> Table {
        // PubCount strongly separates items and drives the ranking; GRE varies
        // but is uncorrelated with the ranked outcome (the situation the paper
        // walks through in its demonstration scenario).
        let pub_count: Vec<f64> = (0..20).map(|i| 100.0 - 4.0 * i as f64).collect();
        let gre: Vec<f64> = (0..20).map(|i| 150.0 + (i % 2) as f64 * 10.0).collect();
        Table::from_columns(vec![
            ("PubCount", Column::from_f64(pub_count)),
            ("GRE", Column::from_f64(gre)),
        ])
        .unwrap()
    }

    #[test]
    fn discriminating_attribute_is_stable_weak_attribute_is_not() {
        let t = table();
        let scoring = ScoringFunction::from_pairs([("PubCount", 0.8), ("GRE", 0.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let stats = attribute_stability(&t, &scoring, &ranking).unwrap();
        assert_eq!(stats.len(), 2);
        let pubs = stats.iter().find(|s| s.attribute == "PubCount").unwrap();
        let gre = stats.iter().find(|s| s.attribute == "GRE").unwrap();
        assert_eq!(pubs.verdict, StabilityVerdict::Stable);
        assert!(pubs.slope_magnitude > 0.9);
        // GRE's values are uncorrelated with rank, so its fitted slope is tiny.
        assert_eq!(gre.verdict, StabilityVerdict::Unstable);
        assert!(gre.slope_magnitude < 0.25);
        // Weights are carried through for the detailed widget.
        assert_eq!(pubs.weight, 0.8);
        assert_eq!(gre.weight, 0.0);
    }

    #[test]
    fn constant_attribute_reports_zero_slope() {
        let t = Table::from_columns(vec![
            ("a", Column::from_f64((0..10).map(f64::from).collect())),
            ("b", Column::from_f64(vec![5.0; 10])),
        ])
        .unwrap();
        let scoring = ScoringFunction::with_normalization(
            vec![
                rf_ranking::AttributeWeight::new("a", 1.0),
                rf_ranking::AttributeWeight::new("b", 1.0),
            ],
            NormalizationMethod::None,
        )
        .unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        // Normalizer for per-attribute stability uses min-max, which rejects
        // constant columns — the error should surface, not panic.
        let result = attribute_stability(&t, &scoring, &ranking);
        assert!(result.is_err());
    }

    #[test]
    fn missing_values_are_imputed_not_fatal() {
        let t = Table::from_columns(vec![(
            "a",
            Column::Float(vec![
                Some(10.0),
                Some(8.0),
                None,
                Some(4.0),
                Some(2.0),
                Some(0.0),
            ]),
        )])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("a", 1.0)])
            .unwrap()
            .with_missing_policy(rf_ranking::score::MissingValuePolicy::MeanImpute);
        let ranking = scoring.rank_table(&t).unwrap();
        let stats = attribute_stability(&t, &scoring, &ranking).unwrap();
        assert_eq!(stats.len(), 1);
        assert!(stats[0].slope_magnitude > 0.5);
    }

    #[test]
    fn threshold_and_size_validation() {
        let t = table();
        let scoring = ScoringFunction::from_pairs([("PubCount", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        assert!(attribute_stability_with_threshold(&t, &scoring, &ranking, 0.0).is_err());
        let tiny = Ranking::from_scores(&[1.0]).unwrap();
        assert!(attribute_stability(&t, &scoring, &tiny).is_err());
    }

    #[test]
    fn unknown_attribute_errors() {
        let t = table();
        let scoring = ScoringFunction::from_pairs([("Ghost", 1.0)]).unwrap();
        let ranking = Ranking::from_order(&(0..20).collect::<Vec<_>>()).unwrap();
        assert!(attribute_stability(&t, &scoring, &ranking).is_err());
    }
}
