//! # rf-stability
//!
//! Stability analysis for score-based rankings, reproducing the Stability
//! widget of *"A Nutritional Label for Rankings"* (SIGMOD 2018).
//!
//! "An unstable ranking is one where slight changes to the data (e.g., due to
//! uncertainty and noise), or to the methodology (e.g., by slightly adjusting
//! the weights in a score-based ranker) could lead to a significant change in
//! the output.  This widget reports a stability score, as a single number
//! that indicates the extent of the change required for the ranking to
//! change." (paper §2.2)
//!
//! Three estimators are provided, mirroring the alternatives the paper lists:
//!
//! * [`slope`] — the headline estimator of Figure 2: the magnitude of the
//!   slope of a least-squares line fit to the score distribution at the
//!   top-k and over-all, compared against a threshold (0.25 in the paper).
//! * [`attribute`] — "stability can be computed with respect to each scoring
//!   attribute": the same slope statistic applied to each attribute's
//!   normalized values in rank order.
//! * [`monte_carlo`] — "or it can be assessed using a model of uncertainty in
//!   the data": repeated re-ranking under data noise and weight jitter,
//!   summarized by the expected Kendall tau and expected top-k overlap.
//!   Each trial draws from its own derived ChaCha stream (`seed ⊕ trial`),
//!   so the per-trial parallel schedule
//!   ([`MonteCarloStability::evaluate_on`], one `rf-runtime` scheduler task
//!   per trial) is byte-identical to the sequential reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod error;
pub mod monte_carlo;
pub mod slope;

pub use attribute::{
    attribute_stability, attribute_stability_from_normalized, attribute_stability_with_threshold,
    normalized_values_in_rank_order, AttributeStability,
};
pub use error::{StabilityError, StabilityResult};
pub use monte_carlo::{
    batches_per_worker_for_rows, trial_rng, MonteCarloStability, MonteCarloSummary, TrialOutcome,
    DEFAULT_BATCHES_PER_WORKER,
};
pub use slope::{score_distribution_slope, SlopeStability, StabilityVerdict};
