//! Monte-Carlo stability under data noise and weight jitter.
//!
//! "...or it can be assessed using a model of uncertainty in the data"
//! (paper §2.2).  The estimator re-scores and re-ranks the dataset many times
//! under small random perturbations — Gaussian noise on the scoring
//! attributes, multiplicative jitter on the weights — and summarizes how much
//! the ranking moves: expected Kendall tau against the original ranking and
//! expected overlap of the top-k set.
//!
//! ## Per-trial random streams
//!
//! Every trial draws from its **own** deterministically derived ChaCha
//! stream: trial `i` seeds `ChaCha8Rng` from `seed ⊕ i` (the `u64` is then
//! expanded through SplitMix64 by `seed_from_u64`, which decorrelates
//! adjacent seeds).  Trials therefore commute — the estimate is a pure
//! function of `(inputs, seed, trials)`, independent of execution order — so
//! any parallel schedule (one task per trial in
//! [`MonteCarloStability::evaluate_on`], or `ceil(trials / (workers × f))`
//! trials per task in [`MonteCarloStability::evaluate_batched`]) is
//! **byte-identical** to the sequential reference
//! [`MonteCarloStability::evaluate`] at any worker count and batch size.
//!
//! ## The columnar hot path
//!
//! All schedules run their trials on [`rf_ranking::TrialKernel`]: the inputs
//! are fitted **once** into flat `f64` column buffers, and each trial
//! perturbs, scores, and argsorts inside a reusable
//! [`rf_ranking::TrialScratch`] — no per-trial `Table`, no column clones, no
//! allocations once the scratch is warm.
//! [`MonteCarloStability::evaluate_materialized`] keeps the historical
//! perturb-a-table path as the reference the parity tests (and the
//! `monte_carlo` bench ablation) compare against.
//!
//! ## Deadline budget
//!
//! [`MonteCarloStability::evaluate_batched`] accepts a wall-clock deadline:
//! batches launch in waves, and once the deadline has passed no further wave
//! is launched (the first wave always runs, so the summary always reflects at
//! least one batch of trials).  A truncated run reports the trials that
//! completed — a deterministic prefix `0..completed`, each on its usual
//! derived stream — and sets [`MonteCarloSummary::truncated`].

use crate::error::{StabilityError, StabilityResult};
use crate::slope::StabilityVerdict;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rf_ranking::{
    kendall_tau_rankings, perturb_weights, Ranking, ScoringFunction, TablePerturber, TrialKernel,
    TrialScratch,
};
use rf_runtime::{Scheduler, ScratchPool};
use rf_table::Table;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default number of batches per worker in
/// [`MonteCarloStability::evaluate_batched`]: each scheduler task runs
/// `ceil(trials / (workers × f))` trials, so every worker sees about `f`
/// tasks — enough slack for work stealing to even out uneven batches, few
/// enough that per-task overhead stays negligible.  It also bounds how much
/// work a deadline wave commits to before the budget is re-checked (about
/// `1/f` of the remaining trials).
pub const DEFAULT_BATCHES_PER_WORKER: usize = 4;

/// Row-adaptive batches-per-worker factor for
/// [`MonteCarloStability::evaluate_batched`].
///
/// A batch's cost scales with `rows × trials-per-batch`, so on large tables
/// the default factor commits minutes of work per deadline check.  Raising
/// the factor with the row count shrinks each batch, which re-checks the
/// deadline budget more often and gives work stealing finer grains —
/// without changing the result: trial streams are schedule-independent, so
/// any factor is byte-identical.  Small tables keep the default factor and
/// its per-task overhead profile.
#[must_use]
pub fn batches_per_worker_for_rows(rows: usize) -> usize {
    if rows >= 1_000_000 {
        DEFAULT_BATCHES_PER_WORKER * 8
    } else if rows >= 100_000 {
        DEFAULT_BATCHES_PER_WORKER * 4
    } else if rows >= 10_000 {
        DEFAULT_BATCHES_PER_WORKER * 2
    } else {
        DEFAULT_BATCHES_PER_WORKER
    }
}

/// Configuration of the Monte-Carlo stability estimator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonteCarloStability {
    /// Number of perturbed re-rankings.
    pub trials: usize,
    /// Gaussian noise on data values, as a fraction of each column's standard
    /// deviation.
    pub data_noise: f64,
    /// Multiplicative jitter on scoring weights.
    pub weight_noise: f64,
    /// Top-k slice whose overlap is tracked.
    pub k: usize,
    /// Expected-Kendall-tau threshold below which the ranking is called
    /// unstable.
    pub tau_threshold: f64,
    /// RNG seed (the estimator is deterministic for a fixed seed).
    pub seed: u64,
    /// Whether the trial kernel may reassociate float operations (see
    /// [`rf_ranking::TrialKernel::with_relaxed_fp`]).  Default `false`:
    /// byte-identical to the materialized reference.
    #[serde(default)]
    pub relaxed_fp: bool,
}

impl Default for MonteCarloStability {
    fn default() -> Self {
        MonteCarloStability {
            trials: 100,
            data_noise: 0.05,
            weight_noise: 0.05,
            k: 10,
            tau_threshold: 0.9,
            seed: 42,
            relaxed_fp: false,
        }
    }
}

/// Summary of a Monte-Carlo stability run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonteCarloSummary {
    /// Number of perturbed re-rankings actually performed.
    pub trials: usize,
    /// Number of trials the configuration asked for (`== trials` unless the
    /// run was truncated by a deadline).
    #[serde(default)]
    pub trials_requested: usize,
    /// Whether the run stopped early because its wall-clock deadline passed.
    /// The performed trials are the deterministic prefix `0..trials`, each on
    /// its usual derived stream.
    #[serde(default)]
    pub truncated: bool,
    /// Mean Kendall tau between the original and perturbed rankings.
    pub expected_kendall_tau: f64,
    /// Minimum Kendall tau observed over the trials (worst case).
    pub worst_kendall_tau: f64,
    /// Mean Jaccard overlap of the top-k sets (1.0 = identical top-k).
    pub expected_top_k_overlap: f64,
    /// Fraction of trials in which the rank-1 item changed.
    pub top_item_change_rate: f64,
    /// Verdict at the configured tau threshold.
    pub verdict: StabilityVerdict,
}

impl MonteCarloStability {
    /// Creates the estimator with default settings (100 trials, 5% noise).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of trials.
    ///
    /// # Errors
    /// Requires at least one trial.
    pub fn with_trials(mut self, trials: usize) -> StabilityResult<Self> {
        if trials == 0 {
            return Err(StabilityError::InvalidParameter {
                parameter: "trials",
                message: "at least one trial is required".to_string(),
            });
        }
        self.trials = trials;
        Ok(self)
    }

    /// Sets the noise magnitudes (data, weight), both as fractions.
    ///
    /// # Errors
    /// Requires non-negative finite fractions.
    pub fn with_noise(mut self, data_noise: f64, weight_noise: f64) -> StabilityResult<Self> {
        for (name, value) in [("data_noise", data_noise), ("weight_noise", weight_noise)] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(StabilityError::InvalidParameter {
                    parameter: if name == "data_noise" {
                        "data_noise"
                    } else {
                        "weight_noise"
                    },
                    message: format!("noise fraction must be non-negative and finite, got {value}"),
                });
            }
        }
        self.data_noise = data_noise;
        self.weight_noise = weight_noise;
        Ok(self)
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the audited top-k size.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Enables (or disables) relaxed float mode on the trial kernel.
    #[must_use]
    pub fn with_relaxed_fp(mut self, relaxed: bool) -> Self {
        self.relaxed_fp = relaxed;
        self
    }

    /// Runs the estimator **sequentially** on the columnar kernel — the
    /// reference schedule: trials `0..trials` execute in order on the calling
    /// thread, sharing one scratch, each drawing from its own derived stream
    /// ([`trial_rng`]).
    ///
    /// # Errors
    /// Propagates scoring errors; requires a ranking of at least two items.
    pub fn evaluate(
        &self,
        table: &Table,
        scoring: &ScoringFunction,
        ranking: &Ranking,
    ) -> StabilityResult<MonteCarloSummary> {
        let plan = self.plan(table, scoring, ranking)?;
        let mut scratch = plan.kernel.scratch();
        let mut outcomes = Vec::with_capacity(self.trials);
        for trial in 0..self.trials {
            outcomes.push(plan.run_trial(trial, &mut scratch)?);
        }
        Ok(self.summarize(&outcomes))
    }

    /// Runs the estimator by **materializing a perturbed table per trial** —
    /// the historical evaluation plan, kept as the reference the columnar
    /// kernel is compared against (parity proptests, bench ablation).  Slow:
    /// every trial clones column data and re-fits from a fresh [`Table`].
    ///
    /// Byte-identical to [`evaluate`](Self::evaluate) for every input.
    ///
    /// # Errors
    /// Same as [`evaluate`](Self::evaluate).
    pub fn evaluate_materialized(
        &self,
        table: &Table,
        scoring: &ScoringFunction,
        ranking: &Ranking,
    ) -> StabilityResult<MonteCarloSummary> {
        self.validate(ranking)?;
        let k = self.k.clamp(1, ranking.len());
        let perturber = if self.data_noise > 0.0 {
            let scoring_attributes: Vec<&str> = scoring.attribute_names();
            Some(TablePerturber::fit(
                table,
                &scoring_attributes,
                self.data_noise,
            )?)
        } else {
            None
        };
        let plan = MaterializedPlan {
            table,
            scoring,
            ranking,
            perturber,
            original_top_k: ranking.top_k_indices(k),
            original_top_item: ranking.items()[0].index,
            k,
            weight_noise: self.weight_noise,
            seed: self.seed,
        };
        let mut outcomes = Vec::with_capacity(self.trials);
        for trial in 0..self.trials {
            outcomes.push(plan.run_trial(trial)?);
        }
        Ok(self.summarize(&outcomes))
    }

    /// Runs the estimator with **one scheduler task per trial**, merging the
    /// per-trial outcomes in trial order.
    ///
    /// Because each trial owns its derived stream, the summary is
    /// byte-identical to [`evaluate`](Self::evaluate) at any worker count —
    /// asserted by `tests/integration_stability_mc.rs` across the three demo
    /// scenarios and by proptest over random seeds, trial counts, and worker
    /// counts.  Safe to call from inside a task already running on
    /// `scheduler`: the blocking wait *helps* run the trial tasks instead of
    /// parking.
    ///
    /// One task per trial is the finest-grained schedule; the label hot path
    /// uses [`evaluate_batched`](Self::evaluate_batched), which amortizes the
    /// per-task overhead over a batch of trials.
    ///
    /// # Errors
    /// The first failing trial's error in trial order, or
    /// [`StabilityError::TrialPanic`] naming the first panicked trial.
    pub fn evaluate_on(
        &self,
        scheduler: &Scheduler,
        table: &Arc<Table>,
        scoring: &ScoringFunction,
        ranking: &Ranking,
    ) -> StabilityResult<MonteCarloSummary> {
        let plan = Arc::new(self.plan(table, scoring, ranking)?);
        let scratches: Arc<ScratchPool<TrialScratch>> = Arc::new(ScratchPool::new());
        let jobs: Vec<_> = (0..self.trials)
            .map(|trial| {
                let plan = Arc::clone(&plan);
                let scratches = Arc::clone(&scratches);
                move || {
                    let mut scratch = scratches.take_or_else(|| plan.kernel.scratch());
                    let outcome = plan.run_trial(trial, &mut scratch);
                    scratches.put(scratch);
                    outcome
                }
            })
            .collect();
        let slots = scheduler.run_all(jobs);
        let mut outcomes = Vec::with_capacity(self.trials);
        for (trial, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok(outcome)) => outcomes.push(outcome),
                Some(Err(err)) => return Err(err),
                None => return Err(StabilityError::TrialPanic { trial }),
            }
        }
        Ok(self.summarize(&outcomes))
    }

    /// Runs the estimator in **adaptive batches** with an optional wall-clock
    /// deadline — the label hot path's schedule.
    ///
    /// Trials are grouped into contiguous batches of
    /// `ceil(trials / (workers × f))` with `f =`
    /// [`batches_per_worker_for_rows`] — the default factor on small tables,
    /// raised with the row count so large tables re-check the deadline
    /// budget often enough; each scheduler task runs one batch,
    /// reusing a pooled [`TrialScratch`] across the batch (and across waves),
    /// so per-task overhead and allocations amortize over the whole batch.
    /// Trial `i` still draws from its own `seed ⊕ i` stream, so the summary
    /// is byte-identical to [`evaluate`](Self::evaluate) at **any** batch
    /// size and worker count.
    ///
    /// Batches launch one wave (of up to `workers` batches) at a time.  When
    /// `deadline` is set and has passed, no further wave launches: the run
    /// reports the deterministic prefix of trials that completed, with
    /// [`MonteCarloSummary::truncated`] set.  The first wave always runs, so
    /// even a zero deadline yields a valid summary over at least one batch
    /// per worker — never a hang, never an empty estimate.
    ///
    /// # Errors
    /// The first failing trial's error in trial order, or
    /// [`StabilityError::TrialPanic`] naming the first trial of a panicked
    /// batch.
    pub fn evaluate_batched(
        &self,
        scheduler: &Scheduler,
        table: &Arc<Table>,
        scoring: &ScoringFunction,
        ranking: &Ranking,
        deadline: Option<Duration>,
    ) -> StabilityResult<MonteCarloSummary> {
        self.evaluate_batched_with(
            scheduler,
            table,
            scoring,
            ranking,
            deadline,
            batches_per_worker_for_rows(table.num_rows()),
        )
    }

    /// [`evaluate_batched`](Self::evaluate_batched) with an explicit
    /// batches-per-worker factor `f` (the bench sweeps it; `0` is treated
    /// as `1`).
    ///
    /// # Errors
    /// Same as [`evaluate_batched`](Self::evaluate_batched).
    pub fn evaluate_batched_with(
        &self,
        scheduler: &Scheduler,
        table: &Arc<Table>,
        scoring: &ScoringFunction,
        ranking: &Ranking,
        deadline: Option<Duration>,
        batches_per_worker: usize,
    ) -> StabilityResult<MonteCarloSummary> {
        let plan = Arc::new(self.plan(table, scoring, ranking)?);
        let scratches: Arc<ScratchPool<TrialScratch>> = Arc::new(ScratchPool::new());
        let workers = scheduler.size().max(1);
        let factor = batches_per_worker.max(1);
        let batch = self.trials.div_ceil(workers * factor).max(1);
        let deadline_at = deadline.map(|budget| Instant::now() + budget);

        let mut outcomes: Vec<TrialOutcome> = Vec::with_capacity(self.trials);
        let mut next = 0usize;
        while next < self.trials {
            // The deadline gates *launching*, never running: wave 0 always
            // goes out, and a launched wave always completes.
            if next > 0 {
                if let Some(at) = deadline_at {
                    if Instant::now() >= at {
                        break;
                    }
                }
            }
            // Without a deadline there is nothing to re-check between waves,
            // so all batches go out in one submission — the full `workers × f`
            // task surplus is live at once and stealing can rebalance uneven
            // batches.  With a deadline, each wave is one batch per worker so
            // the budget is re-checked about `f` times per run.
            let wave_end = if deadline_at.is_none() {
                self.trials
            } else {
                (next + batch * workers).min(self.trials)
            };
            let ranges: Vec<std::ops::Range<usize>> = (next..wave_end)
                .step_by(batch)
                .map(|start| start..(start + batch).min(wave_end))
                .collect();
            let jobs: Vec<_> = ranges
                .iter()
                .cloned()
                .map(|range| {
                    let plan = Arc::clone(&plan);
                    let scratches = Arc::clone(&scratches);
                    move || {
                        let mut scratch = scratches.take_or_else(|| plan.kernel.scratch());
                        let mut batch_outcomes = Vec::with_capacity(range.len());
                        for trial in range {
                            match plan.run_trial(trial, &mut scratch) {
                                Ok(outcome) => batch_outcomes.push(outcome),
                                Err(err) => {
                                    scratches.put(scratch);
                                    return Err(err);
                                }
                            }
                        }
                        scratches.put(scratch);
                        Ok(batch_outcomes)
                    }
                })
                .collect();
            for (slot, range) in scheduler.run_all(jobs).into_iter().zip(ranges) {
                match slot {
                    Some(Ok(batch_outcomes)) => outcomes.extend(batch_outcomes),
                    Some(Err(err)) => return Err(err),
                    None => {
                        return Err(StabilityError::TrialPanic { trial: range.start });
                    }
                }
            }
            next = wave_end;
        }
        Ok(self.summarize(&outcomes))
    }

    /// Shared input validation: the ranking must have at least two items and
    /// the configuration at least one trial.
    fn validate(&self, ranking: &Ranking) -> StabilityResult<()> {
        if ranking.len() < 2 {
            return Err(StabilityError::TooFewItems {
                available: ranking.len(),
                required: 2,
            });
        }
        if self.trials == 0 {
            return Err(StabilityError::InvalidParameter {
                parameter: "trials",
                message: "at least one trial is required".to_string(),
            });
        }
        Ok(())
    }

    /// Validates the inputs and fits everything the trials share: the
    /// columnar [`TrialKernel`] (column buffers and noise scales computed
    /// once) plus the original ranking's order, top-k set, and clamped `k`.
    fn plan(
        &self,
        table: &Table,
        scoring: &ScoringFunction,
        ranking: &Ranking,
    ) -> StabilityResult<TrialPlan> {
        self.validate(ranking)?;
        let k = self.k.clamp(1, ranking.len());
        let kernel = TrialKernel::fit(table, scoring, self.data_noise, self.weight_noise)?
            .with_relaxed_fp(self.relaxed_fp);
        let original_top_k: HashSet<usize> = ranking.top_k_indices(k).into_iter().collect();
        let original_order = ranking.order();
        let original_top_item = original_order[0];
        Ok(TrialPlan {
            kernel,
            original_order,
            original_top_k,
            original_top_item,
            k,
            seed: self.seed,
        })
    }

    /// Folds per-trial outcomes (in trial order) into the summary.  Pure and
    /// order-sensitive only through float summation, which all schedules
    /// perform identically because outcomes arrive indexed by trial.
    fn summarize(&self, outcomes: &[TrialOutcome]) -> MonteCarloSummary {
        let count = outcomes.len() as f64;
        let expected_tau = outcomes.iter().map(|o| o.kendall_tau).sum::<f64>() / count;
        let worst_tau = outcomes
            .iter()
            .map(|o| o.kendall_tau)
            .fold(f64::INFINITY, f64::min);
        let expected_overlap = outcomes.iter().map(|o| o.top_k_overlap).sum::<f64>() / count;
        let top_changes = outcomes.iter().filter(|o| o.top_item_changed).count();
        let verdict = if expected_tau >= self.tau_threshold {
            StabilityVerdict::Stable
        } else {
            StabilityVerdict::Unstable
        };
        MonteCarloSummary {
            trials: outcomes.len(),
            trials_requested: self.trials,
            truncated: outcomes.len() < self.trials,
            expected_kendall_tau: expected_tau,
            worst_kendall_tau: worst_tau,
            expected_top_k_overlap: expected_overlap,
            top_item_change_rate: top_changes as f64 / count,
            verdict,
        }
    }
}

/// The RNG of one trial: an independent ChaCha stream derived as
/// `seed ⊕ trial` (then expanded through SplitMix64 by `seed_from_u64`).
/// Public so tests and benches can pin the derivation.
#[must_use]
pub fn trial_rng(seed: u64, trial: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ trial as u64)
}

/// What one perturbed re-ranking observed, relative to the original ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Kendall tau between the original and the perturbed ranking.
    pub kendall_tau: f64,
    /// Jaccard overlap of the original and perturbed top-k sets.
    pub top_k_overlap: f64,
    /// Whether the rank-1 item changed.
    pub top_item_changed: bool,
}

/// Everything the trials share, fitted once per evaluation and immutable
/// afterwards — safe to reference from concurrently running trial tasks.
#[derive(Debug)]
struct TrialPlan {
    /// The columnar trial kernel: column buffers, noise scales, weights.
    kernel: TrialKernel,
    /// The original ranking's row indices, best first.
    original_order: Vec<usize>,
    /// The original top-k as a set, for overlap counting.
    original_top_k: HashSet<usize>,
    original_top_item: usize,
    k: usize,
    seed: u64,
}

impl TrialPlan {
    /// Runs trial `trial` on its own derived stream inside `scratch`:
    /// perturb the data, jitter the weights, re-rank, compare.  Pure in
    /// `(plan, trial)` — the scratch only carries reusable buffers.
    fn run_trial(&self, trial: usize, scratch: &mut TrialScratch) -> StabilityResult<TrialOutcome> {
        let mut rng = trial_rng(self.seed, trial);
        self.kernel.rank_trial(&mut rng, scratch)?;
        let rows = self.kernel.rows();
        // The reference degrades a ranking-size mismatch to tau = 0.0
        // (`kendall_tau_rankings(..).unwrap_or(0.0)`); sizes match on every
        // sane call, but the quirk is part of the byte-identity contract.
        let kendall_tau = if self.original_order.len() == rows {
            scratch.kendall_tau_against(&self.original_order)
        } else {
            0.0
        };
        let perturbed_top_len = self.k.min(rows);
        let intersection = scratch.order()[..perturbed_top_len]
            .iter()
            .filter(|index| self.original_top_k.contains(index))
            .count();
        let union = self.original_top_k.len() + perturbed_top_len - intersection;
        Ok(TrialOutcome {
            kendall_tau,
            top_k_overlap: intersection as f64 / union as f64,
            top_item_changed: scratch.order()[0] != self.original_top_item,
        })
    }
}

/// The historical per-trial plan: materialize a perturbed [`Table`], re-fit
/// the scoring function, build a fresh [`Ranking`].  Reference only.
#[derive(Debug)]
struct MaterializedPlan<'a> {
    table: &'a Table,
    scoring: &'a ScoringFunction,
    ranking: &'a Ranking,
    /// Fitted perturbation model; `None` when `data_noise == 0`.
    perturber: Option<TablePerturber>,
    original_top_k: Vec<usize>,
    original_top_item: usize,
    k: usize,
    weight_noise: f64,
    seed: u64,
}

impl MaterializedPlan<'_> {
    /// Runs trial `trial` the materialized way: perturb the data, jitter the
    /// weights, re-rank, compare.  Pure in `(plan, trial)`.
    fn run_trial(&self, trial: usize) -> StabilityResult<TrialOutcome> {
        let mut rng = trial_rng(self.seed, trial);
        // Draw order matches the historical estimator: data noise first,
        // then weight jitter.
        let perturbed_table = match &self.perturber {
            Some(perturber) => Some(perturber.perturb(&mut rng)?),
            None => None,
        };
        let scoring = if self.weight_noise > 0.0 {
            perturb_weights(self.scoring, self.weight_noise, &mut rng)?
        } else {
            self.scoring.clone()
        };
        let table: &Table = perturbed_table.as_ref().unwrap_or(self.table);
        let perturbed_ranking = scoring.rank_table(table)?;
        Ok(TrialOutcome {
            kendall_tau: kendall_tau_rankings(self.ranking, &perturbed_ranking).unwrap_or(0.0),
            top_k_overlap: jaccard(
                &self.original_top_k,
                &perturbed_ranking.top_k_indices(self.k),
            ),
            top_item_changed: perturbed_ranking.order()[0] != self.original_top_item,
        })
    }
}

/// Jaccard similarity of two index sets.
fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let set_a: HashSet<usize> = a.iter().copied().collect();
    let set_b: HashSet<usize> = b.iter().copied().collect();
    let intersection = set_a.intersection(&set_b).count() as f64;
    let union = set_a.union(&set_b).count() as f64;
    intersection / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    /// Table whose scores are widely spread: robust to small noise.
    fn spread_table(n: usize) -> Table {
        Table::from_columns(vec![(
            "x",
            Column::from_f64((0..n).map(|i| i as f64 * 10.0).collect()),
        )])
        .unwrap()
    }

    /// Table whose scores are nearly tied: fragile under noise.
    fn clustered_table(n: usize) -> Table {
        Table::from_columns(vec![(
            "x",
            Column::from_f64((0..n).map(|i| 100.0 + 1e-4 * i as f64).collect()),
        )])
        .unwrap()
    }

    #[test]
    fn spread_scores_are_stable_under_noise() {
        let t = spread_table(30);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(50)
            .unwrap()
            .with_noise(0.01, 0.01)
            .unwrap()
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert_eq!(summary.verdict, StabilityVerdict::Stable);
        assert!(summary.expected_kendall_tau > 0.95);
        assert!(summary.expected_top_k_overlap > 0.9);
        assert!(summary.top_item_change_rate < 0.1);
        assert_eq!(summary.trials_requested, 50);
        assert!(!summary.truncated);
    }

    #[test]
    fn clustered_scores_are_unstable_under_noise() {
        let t = clustered_table(30);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(50)
            .unwrap()
            .with_noise(5.0, 0.0)
            .unwrap()
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert_eq!(summary.verdict, StabilityVerdict::Unstable);
        assert!(summary.expected_kendall_tau < 0.5);
        assert!(summary.expected_top_k_overlap < 0.9);
    }

    #[test]
    fn zero_noise_reproduces_original_ranking() {
        let t = spread_table(20);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(5)
            .unwrap()
            .with_noise(0.0, 0.0)
            .unwrap()
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert!((summary.expected_kendall_tau - 1.0).abs() < 1e-12);
        assert!((summary.expected_top_k_overlap - 1.0).abs() < 1e-12);
        assert_eq!(summary.top_item_change_rate, 0.0);
        assert_eq!(summary.worst_kendall_tau, 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t = spread_table(25);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(20)
            .unwrap()
            .with_seed(7);
        let s1 = estimator.evaluate(&t, &scoring, &ranking).unwrap();
        let s2 = estimator.evaluate(&t, &scoring, &ranking).unwrap();
        assert_eq!(s1, s2);
        // A different seed generally gives a (slightly) different estimate.
        let s3 = MonteCarloStability::new()
            .with_trials(20)
            .unwrap()
            .with_seed(8)
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert_eq!(s3.trials, 20);
    }

    #[test]
    fn parameter_validation() {
        assert!(MonteCarloStability::new().with_trials(0).is_err());
        assert!(MonteCarloStability::new().with_noise(-0.1, 0.0).is_err());
        assert!(MonteCarloStability::new()
            .with_noise(0.1, f64::NAN)
            .is_err());
        let t = spread_table(5);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let tiny = Ranking::from_scores(&[1.0]).unwrap();
        assert!(MonteCarloStability::new()
            .evaluate(&t, &scoring, &tiny)
            .is_err());
        assert!(MonteCarloStability::new()
            .evaluate_materialized(&t, &scoring, &tiny)
            .is_err());
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn columnar_kernel_matches_the_materialized_reference() {
        // The tentpole contract: the allocation-free kernel path is
        // byte-identical to the historical perturb-a-table path.
        let t = Table::from_columns(vec![
            (
                "label",
                Column::from_strings((0..35).map(|i| format!("r{i}")).collect::<Vec<_>>()),
            ),
            (
                "x",
                Column::from_f64((0..35).map(|i| (i as f64 * 2.1).sin() * 40.0).collect()),
            ),
            (
                "y",
                Column::from_f64((0..35).map(|i| 70.0 - i as f64).collect()),
            ),
        ])
        .unwrap();
        let scoring = ScoringFunction::from_pairs([("y", 0.6), ("x", 0.4)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        for &(data_noise, weight_noise) in &[(0.0, 0.0), (0.1, 0.0), (0.0, 0.15), (0.2, 0.2)] {
            for seed in [0u64, 42, 12345] {
                let estimator = MonteCarloStability::new()
                    .with_trials(19)
                    .unwrap()
                    .with_noise(data_noise, weight_noise)
                    .unwrap()
                    .with_seed(seed)
                    .with_k(7);
                let columnar = estimator.evaluate(&t, &scoring, &ranking).unwrap();
                let materialized = estimator
                    .evaluate_materialized(&t, &scoring, &ranking)
                    .unwrap();
                assert_eq!(
                    columnar, materialized,
                    "noise ({data_noise}, {weight_noise}), seed {seed}"
                );
            }
        }
    }

    #[test]
    fn parallel_trials_match_the_sequential_reference_at_any_worker_count() {
        let t = Arc::new(spread_table(40));
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(17)
            .unwrap()
            .with_noise(0.2, 0.1)
            .unwrap()
            .with_seed(99);
        let sequential = estimator.evaluate(&t, &scoring, &ranking).unwrap();
        for workers in [1usize, 2, 5] {
            let scheduler = Scheduler::new(workers);
            let parallel = estimator
                .evaluate_on(&scheduler, &t, &scoring, &ranking)
                .unwrap();
            assert_eq!(sequential, parallel, "{workers} workers");
        }
    }

    #[test]
    fn batched_trials_match_the_sequential_reference_at_any_batch_size() {
        let t = Arc::new(spread_table(40));
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(23)
            .unwrap()
            .with_noise(0.2, 0.1)
            .unwrap()
            .with_seed(7);
        let sequential = estimator.evaluate(&t, &scoring, &ranking).unwrap();
        for workers in [1usize, 2, 4] {
            let scheduler = Scheduler::new(workers);
            for factor in [1usize, 2, 4, 8, 100] {
                let batched = estimator
                    .evaluate_batched_with(&scheduler, &t, &scoring, &ranking, None, factor)
                    .unwrap();
                assert_eq!(sequential, batched, "{workers} workers, factor {factor}");
            }
        }
    }

    #[test]
    fn batching_schedules_fewer_tasks_than_trials() {
        let t = Arc::new(spread_table(30));
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let scheduler = Scheduler::new(2);
        let before = scheduler.executed_jobs();
        MonteCarloStability::new()
            .with_trials(64)
            .unwrap()
            .evaluate_batched(&scheduler, &t, &scoring, &ranking, None)
            .unwrap();
        // 64 trials / (2 workers × 4 batches) = 8 trials per task → 8 tasks.
        assert_eq!(scheduler.executed_jobs() - before, 8);
    }

    #[test]
    fn zero_deadline_truncates_to_the_first_wave_deterministically() {
        let t = Arc::new(spread_table(30));
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(64)
            .unwrap()
            .with_noise(0.3, 0.1)
            .unwrap();
        let scheduler = Scheduler::new(2);
        let truncated = estimator
            .evaluate_batched(&scheduler, &t, &scoring, &ranking, Some(Duration::ZERO))
            .unwrap();
        // batch = 64 / (2 × 4) = 8; one wave = 2 batches = 16 trials.
        assert!(truncated.truncated);
        assert_eq!(truncated.trials, 16);
        assert_eq!(truncated.trials_requested, 64);
        // The completed prefix is deterministic: it matches a 16-trial run
        // of the same estimator outcome-for-outcome.
        let prefix = MonteCarloStability {
            trials: 16,
            ..estimator.clone()
        }
        .evaluate(&t, &scoring, &ranking)
        .unwrap();
        assert_eq!(truncated.expected_kendall_tau, prefix.expected_kendall_tau);
        assert_eq!(truncated.worst_kendall_tau, prefix.worst_kendall_tau);
        assert_eq!(
            truncated.expected_top_k_overlap,
            prefix.expected_top_k_overlap
        );
        assert_eq!(truncated.top_item_change_rate, prefix.top_item_change_rate);
        // And re-running the truncated evaluation reproduces itself.
        let again = estimator
            .evaluate_batched(&scheduler, &t, &scoring, &ranking, Some(Duration::ZERO))
            .unwrap();
        assert_eq!(truncated, again);
    }

    #[test]
    fn generous_deadline_completes_every_trial() {
        let t = Arc::new(spread_table(20));
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let scheduler = Scheduler::new(2);
        let summary = MonteCarloStability::new()
            .with_trials(12)
            .unwrap()
            .evaluate_batched(
                &scheduler,
                &t,
                &scoring,
                &ranking,
                Some(Duration::from_secs(3600)),
            )
            .unwrap();
        assert!(!summary.truncated);
        assert_eq!(summary.trials, 12);
        assert_eq!(summary.trials_requested, 12);
    }

    #[test]
    fn evaluate_on_runs_exactly_one_task_per_trial() {
        let t = Arc::new(spread_table(20));
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let scheduler = Scheduler::new(3);
        let before = scheduler.executed_jobs();
        MonteCarloStability::new()
            .with_trials(13)
            .unwrap()
            .evaluate_on(&scheduler, &t, &scoring, &ranking)
            .unwrap();
        assert_eq!(scheduler.executed_jobs() - before, 13);
    }

    #[test]
    fn trial_streams_are_independent_and_deterministic() {
        use rand::RngCore;
        let mut a = trial_rng(42, 3);
        let mut a_again = trial_rng(42, 3);
        let mut b = trial_rng(42, 4);
        let mut matched = 0;
        for _ in 0..64 {
            let word = a.next_u64();
            assert_eq!(word, a_again.next_u64());
            if word == b.next_u64() {
                matched += 1;
            }
        }
        assert!(matched < 4, "adjacent trial streams must decorrelate");
    }

    #[test]
    fn batches_per_worker_scales_with_rows() {
        assert_eq!(batches_per_worker_for_rows(0), DEFAULT_BATCHES_PER_WORKER);
        assert_eq!(
            batches_per_worker_for_rows(9_999),
            DEFAULT_BATCHES_PER_WORKER
        );
        assert_eq!(
            batches_per_worker_for_rows(10_000),
            DEFAULT_BATCHES_PER_WORKER * 2
        );
        assert_eq!(
            batches_per_worker_for_rows(100_000),
            DEFAULT_BATCHES_PER_WORKER * 4
        );
        assert_eq!(
            batches_per_worker_for_rows(1_000_000),
            DEFAULT_BATCHES_PER_WORKER * 8
        );
    }

    #[test]
    fn large_tables_schedule_finer_batches() {
        // 10k rows double the batches-per-worker factor: 64 trials /
        // (2 workers × 8) = 4 trials per task → 16 tasks (vs 8 on a small
        // table) — and the summary stays byte-identical to the sequential
        // reference, because trial streams are schedule-independent.
        let t = Arc::new(spread_table(10_000));
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(64)
            .unwrap()
            .with_noise(0.05, 0.05)
            .unwrap();
        let scheduler = Scheduler::new(2);
        let before = scheduler.executed_jobs();
        let batched = estimator
            .evaluate_batched(&scheduler, &t, &scoring, &ranking, None)
            .unwrap();
        assert_eq!(scheduler.executed_jobs() - before, 16);
        let sequential = estimator.evaluate(&t, &scoring, &ranking).unwrap();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn relaxed_fp_summary_matches_exact_on_well_separated_data() {
        // Widely spread scores: the relaxed kernel's ~1e-14 score
        // perturbation cannot reorder anything, so the whole summary is
        // identical.
        let t = spread_table(500);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(16)
            .unwrap()
            .with_noise(0.01, 0.01)
            .unwrap();
        let exact = estimator.evaluate(&t, &scoring, &ranking).unwrap();
        let relaxed = estimator
            .clone()
            .with_relaxed_fp(true)
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert_eq!(exact, relaxed);
    }

    #[test]
    fn relaxed_fp_rides_along_serde_with_a_default() {
        // Configs serialized before the flag existed deserialize with it
        // off.
        let json = r#"{"trials":8,"data_noise":0.1,"weight_noise":0.1,"k":5,"tau_threshold":0.9,"seed":1}"#;
        let estimator: MonteCarloStability = serde_json::from_str(json).unwrap();
        assert!(!estimator.relaxed_fp);
        let round: MonteCarloStability =
            serde_json::from_str(&serde_json::to_string(&estimator.with_relaxed_fp(true)).unwrap())
                .unwrap();
        assert!(round.relaxed_fp);
    }

    #[test]
    fn k_is_clamped_to_ranking_size() {
        let t = spread_table(5);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(3)
            .unwrap()
            .with_k(100)
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert!(summary.expected_top_k_overlap > 0.0);
    }
}
