//! Monte-Carlo stability under data noise and weight jitter.
//!
//! "...or it can be assessed using a model of uncertainty in the data"
//! (paper §2.2).  The estimator re-scores and re-ranks the dataset many times
//! under small random perturbations — Gaussian noise on the scoring
//! attributes, multiplicative jitter on the weights — and summarizes how much
//! the ranking moves: expected Kendall tau against the original ranking and
//! expected overlap of the top-k set.

use crate::error::{StabilityError, StabilityResult};
use crate::slope::StabilityVerdict;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rf_ranking::{
    kendall_tau_rankings, perturb_table_gaussian, perturb_weights, Ranking, ScoringFunction,
};
use rf_table::Table;

/// Configuration of the Monte-Carlo stability estimator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonteCarloStability {
    /// Number of perturbed re-rankings.
    pub trials: usize,
    /// Gaussian noise on data values, as a fraction of each column's standard
    /// deviation.
    pub data_noise: f64,
    /// Multiplicative jitter on scoring weights.
    pub weight_noise: f64,
    /// Top-k slice whose overlap is tracked.
    pub k: usize,
    /// Expected-Kendall-tau threshold below which the ranking is called
    /// unstable.
    pub tau_threshold: f64,
    /// RNG seed (the estimator is deterministic for a fixed seed).
    pub seed: u64,
}

impl Default for MonteCarloStability {
    fn default() -> Self {
        MonteCarloStability {
            trials: 100,
            data_noise: 0.05,
            weight_noise: 0.05,
            k: 10,
            tau_threshold: 0.9,
            seed: 42,
        }
    }
}

/// Summary of a Monte-Carlo stability run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonteCarloSummary {
    /// Number of perturbed re-rankings actually performed.
    pub trials: usize,
    /// Mean Kendall tau between the original and perturbed rankings.
    pub expected_kendall_tau: f64,
    /// Minimum Kendall tau observed over the trials (worst case).
    pub worst_kendall_tau: f64,
    /// Mean Jaccard overlap of the top-k sets (1.0 = identical top-k).
    pub expected_top_k_overlap: f64,
    /// Fraction of trials in which the rank-1 item changed.
    pub top_item_change_rate: f64,
    /// Verdict at the configured tau threshold.
    pub verdict: StabilityVerdict,
}

impl MonteCarloStability {
    /// Creates the estimator with default settings (100 trials, 5% noise).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of trials.
    ///
    /// # Errors
    /// Requires at least one trial.
    pub fn with_trials(mut self, trials: usize) -> StabilityResult<Self> {
        if trials == 0 {
            return Err(StabilityError::InvalidParameter {
                parameter: "trials",
                message: "at least one trial is required".to_string(),
            });
        }
        self.trials = trials;
        Ok(self)
    }

    /// Sets the noise magnitudes (data, weight), both as fractions.
    ///
    /// # Errors
    /// Requires non-negative finite fractions.
    pub fn with_noise(mut self, data_noise: f64, weight_noise: f64) -> StabilityResult<Self> {
        for (name, value) in [("data_noise", data_noise), ("weight_noise", weight_noise)] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(StabilityError::InvalidParameter {
                    parameter: if name == "data_noise" {
                        "data_noise"
                    } else {
                        "weight_noise"
                    },
                    message: format!("noise fraction must be non-negative and finite, got {value}"),
                });
            }
        }
        self.data_noise = data_noise;
        self.weight_noise = weight_noise;
        Ok(self)
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the audited top-k size.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Runs the estimator: repeatedly perturbs `table` and `scoring`, re-ranks,
    /// and compares against the original `ranking`.
    ///
    /// # Errors
    /// Propagates scoring errors; requires a ranking of at least two items.
    pub fn evaluate(
        &self,
        table: &Table,
        scoring: &ScoringFunction,
        ranking: &Ranking,
    ) -> StabilityResult<MonteCarloSummary> {
        if ranking.len() < 2 {
            return Err(StabilityError::TooFewItems {
                available: ranking.len(),
                required: 2,
            });
        }
        if self.trials == 0 {
            return Err(StabilityError::InvalidParameter {
                parameter: "trials",
                message: "at least one trial is required".to_string(),
            });
        }
        let k = self.k.clamp(1, ranking.len());
        let scoring_attributes: Vec<&str> = scoring.attribute_names();
        let original_top_k: Vec<usize> = ranking.top_k_indices(k);
        let original_top_item = ranking.order()[0];

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut taus = Vec::with_capacity(self.trials);
        let mut overlaps = Vec::with_capacity(self.trials);
        let mut top_changes = 0usize;

        for _ in 0..self.trials {
            let perturbed_table = if self.data_noise > 0.0 {
                perturb_table_gaussian(table, &scoring_attributes, self.data_noise, &mut rng)?
            } else {
                table.clone()
            };
            let perturbed_scoring = if self.weight_noise > 0.0 {
                perturb_weights(scoring, self.weight_noise, &mut rng)?
            } else {
                scoring.clone()
            };
            let perturbed_ranking = perturbed_scoring.rank_table(&perturbed_table)?;

            let tau = kendall_tau_rankings(ranking, &perturbed_ranking).unwrap_or(0.0);
            taus.push(tau);
            overlaps.push(jaccard(
                &original_top_k,
                &perturbed_ranking.top_k_indices(k),
            ));
            if perturbed_ranking.order()[0] != original_top_item {
                top_changes += 1;
            }
        }

        let expected_tau = taus.iter().sum::<f64>() / taus.len() as f64;
        let worst_tau = taus.iter().copied().fold(f64::INFINITY, f64::min);
        let expected_overlap = overlaps.iter().sum::<f64>() / overlaps.len() as f64;
        let verdict = if expected_tau >= self.tau_threshold {
            StabilityVerdict::Stable
        } else {
            StabilityVerdict::Unstable
        };

        Ok(MonteCarloSummary {
            trials: self.trials,
            expected_kendall_tau: expected_tau,
            worst_kendall_tau: worst_tau,
            expected_top_k_overlap: expected_overlap,
            top_item_change_rate: top_changes as f64 / self.trials as f64,
            verdict,
        })
    }
}

/// Jaccard similarity of two index sets.
fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let set_a: std::collections::HashSet<usize> = a.iter().copied().collect();
    let set_b: std::collections::HashSet<usize> = b.iter().copied().collect();
    let intersection = set_a.intersection(&set_b).count() as f64;
    let union = set_a.union(&set_b).count() as f64;
    intersection / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    /// Table whose scores are widely spread: robust to small noise.
    fn spread_table(n: usize) -> Table {
        Table::from_columns(vec![(
            "x",
            Column::from_f64((0..n).map(|i| i as f64 * 10.0).collect()),
        )])
        .unwrap()
    }

    /// Table whose scores are nearly tied: fragile under noise.
    fn clustered_table(n: usize) -> Table {
        Table::from_columns(vec![(
            "x",
            Column::from_f64((0..n).map(|i| 100.0 + 1e-4 * i as f64).collect()),
        )])
        .unwrap()
    }

    #[test]
    fn spread_scores_are_stable_under_noise() {
        let t = spread_table(30);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(50)
            .unwrap()
            .with_noise(0.01, 0.01)
            .unwrap()
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert_eq!(summary.verdict, StabilityVerdict::Stable);
        assert!(summary.expected_kendall_tau > 0.95);
        assert!(summary.expected_top_k_overlap > 0.9);
        assert!(summary.top_item_change_rate < 0.1);
    }

    #[test]
    fn clustered_scores_are_unstable_under_noise() {
        let t = clustered_table(30);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(50)
            .unwrap()
            .with_noise(5.0, 0.0)
            .unwrap()
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert_eq!(summary.verdict, StabilityVerdict::Unstable);
        assert!(summary.expected_kendall_tau < 0.5);
        assert!(summary.expected_top_k_overlap < 0.9);
    }

    #[test]
    fn zero_noise_reproduces_original_ranking() {
        let t = spread_table(20);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(5)
            .unwrap()
            .with_noise(0.0, 0.0)
            .unwrap()
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert!((summary.expected_kendall_tau - 1.0).abs() < 1e-12);
        assert!((summary.expected_top_k_overlap - 1.0).abs() < 1e-12);
        assert_eq!(summary.top_item_change_rate, 0.0);
        assert_eq!(summary.worst_kendall_tau, 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t = spread_table(25);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(20)
            .unwrap()
            .with_seed(7);
        let s1 = estimator.evaluate(&t, &scoring, &ranking).unwrap();
        let s2 = estimator.evaluate(&t, &scoring, &ranking).unwrap();
        assert_eq!(s1, s2);
        // A different seed generally gives a (slightly) different estimate.
        let s3 = MonteCarloStability::new()
            .with_trials(20)
            .unwrap()
            .with_seed(8)
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert_eq!(s3.trials, 20);
    }

    #[test]
    fn parameter_validation() {
        assert!(MonteCarloStability::new().with_trials(0).is_err());
        assert!(MonteCarloStability::new().with_noise(-0.1, 0.0).is_err());
        assert!(MonteCarloStability::new()
            .with_noise(0.1, f64::NAN)
            .is_err());
        let t = spread_table(5);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let tiny = Ranking::from_scores(&[1.0]).unwrap();
        assert!(MonteCarloStability::new()
            .evaluate(&t, &scoring, &tiny)
            .is_err());
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn k_is_clamped_to_ranking_size() {
        let t = spread_table(5);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(3)
            .unwrap()
            .with_k(100)
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert!(summary.expected_top_k_overlap > 0.0);
    }
}
