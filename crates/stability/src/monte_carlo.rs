//! Monte-Carlo stability under data noise and weight jitter.
//!
//! "...or it can be assessed using a model of uncertainty in the data"
//! (paper §2.2).  The estimator re-scores and re-ranks the dataset many times
//! under small random perturbations — Gaussian noise on the scoring
//! attributes, multiplicative jitter on the weights — and summarizes how much
//! the ranking moves: expected Kendall tau against the original ranking and
//! expected overlap of the top-k set.
//!
//! ## Per-trial random streams
//!
//! Every trial draws from its **own** deterministically derived ChaCha
//! stream: trial `i` seeds `ChaCha8Rng` from `seed ⊕ i` (the `u64` is then
//! expanded through SplitMix64 by `seed_from_u64`, which decorrelates
//! adjacent seeds).  Trials therefore commute — the estimate is a pure
//! function of `(inputs, seed, trials)`, independent of execution order — so
//! the parallel fan-out of [`MonteCarloStability::evaluate_on`] (one
//! scheduler task per trial) is **byte-identical** to the sequential
//! reference [`MonteCarloStability::evaluate`] at any worker count.

use crate::error::{StabilityError, StabilityResult};
use crate::slope::StabilityVerdict;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rf_ranking::{kendall_tau_rankings, perturb_weights, Ranking, ScoringFunction, TablePerturber};
use rf_runtime::Scheduler;
use rf_table::Table;
use std::sync::Arc;

/// Configuration of the Monte-Carlo stability estimator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonteCarloStability {
    /// Number of perturbed re-rankings.
    pub trials: usize,
    /// Gaussian noise on data values, as a fraction of each column's standard
    /// deviation.
    pub data_noise: f64,
    /// Multiplicative jitter on scoring weights.
    pub weight_noise: f64,
    /// Top-k slice whose overlap is tracked.
    pub k: usize,
    /// Expected-Kendall-tau threshold below which the ranking is called
    /// unstable.
    pub tau_threshold: f64,
    /// RNG seed (the estimator is deterministic for a fixed seed).
    pub seed: u64,
}

impl Default for MonteCarloStability {
    fn default() -> Self {
        MonteCarloStability {
            trials: 100,
            data_noise: 0.05,
            weight_noise: 0.05,
            k: 10,
            tau_threshold: 0.9,
            seed: 42,
        }
    }
}

/// Summary of a Monte-Carlo stability run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonteCarloSummary {
    /// Number of perturbed re-rankings actually performed.
    pub trials: usize,
    /// Mean Kendall tau between the original and perturbed rankings.
    pub expected_kendall_tau: f64,
    /// Minimum Kendall tau observed over the trials (worst case).
    pub worst_kendall_tau: f64,
    /// Mean Jaccard overlap of the top-k sets (1.0 = identical top-k).
    pub expected_top_k_overlap: f64,
    /// Fraction of trials in which the rank-1 item changed.
    pub top_item_change_rate: f64,
    /// Verdict at the configured tau threshold.
    pub verdict: StabilityVerdict,
}

impl MonteCarloStability {
    /// Creates the estimator with default settings (100 trials, 5% noise).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of trials.
    ///
    /// # Errors
    /// Requires at least one trial.
    pub fn with_trials(mut self, trials: usize) -> StabilityResult<Self> {
        if trials == 0 {
            return Err(StabilityError::InvalidParameter {
                parameter: "trials",
                message: "at least one trial is required".to_string(),
            });
        }
        self.trials = trials;
        Ok(self)
    }

    /// Sets the noise magnitudes (data, weight), both as fractions.
    ///
    /// # Errors
    /// Requires non-negative finite fractions.
    pub fn with_noise(mut self, data_noise: f64, weight_noise: f64) -> StabilityResult<Self> {
        for (name, value) in [("data_noise", data_noise), ("weight_noise", weight_noise)] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(StabilityError::InvalidParameter {
                    parameter: if name == "data_noise" {
                        "data_noise"
                    } else {
                        "weight_noise"
                    },
                    message: format!("noise fraction must be non-negative and finite, got {value}"),
                });
            }
        }
        self.data_noise = data_noise;
        self.weight_noise = weight_noise;
        Ok(self)
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the audited top-k size.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Runs the estimator **sequentially** — the reference schedule: trials
    /// `0..trials` execute in order on the calling thread, each drawing from
    /// its own derived stream ([`trial_rng`]).
    ///
    /// # Errors
    /// Propagates scoring errors; requires a ranking of at least two items.
    pub fn evaluate(
        &self,
        table: &Table,
        scoring: &ScoringFunction,
        ranking: &Ranking,
    ) -> StabilityResult<MonteCarloSummary> {
        let plan = self.plan(table, None, scoring, ranking)?;
        let mut outcomes = Vec::with_capacity(self.trials);
        for trial in 0..self.trials {
            outcomes.push(plan.run_trial(trial)?);
        }
        Ok(self.summarize(&outcomes))
    }

    /// Runs the estimator with **one scheduler task per trial**, merging the
    /// per-trial outcomes in trial order.
    ///
    /// Because each trial owns its derived stream, the summary is
    /// byte-identical to [`evaluate`](Self::evaluate) at any worker count —
    /// asserted by `tests/integration_stability_mc.rs` across the three demo
    /// scenarios and by proptest over random seeds, trial counts, and worker
    /// counts.  Safe to call from inside a task already running on
    /// `scheduler` (e.g. the Stability widget builder): the blocking wait
    /// *helps* run the trial tasks instead of parking a worker.
    ///
    /// # Errors
    /// The first failing trial's error in trial order, or
    /// [`StabilityError::TrialPanic`] naming the first panicked trial.
    pub fn evaluate_on(
        &self,
        scheduler: &Scheduler,
        table: &Arc<Table>,
        scoring: &ScoringFunction,
        ranking: &Ranking,
    ) -> StabilityResult<MonteCarloSummary> {
        let plan = Arc::new(self.plan(table, Some(table), scoring, ranking)?);
        let jobs: Vec<_> = (0..self.trials)
            .map(|trial| {
                let plan = Arc::clone(&plan);
                move || plan.run_trial(trial)
            })
            .collect();
        let slots = scheduler.run_all(jobs);
        let mut outcomes = Vec::with_capacity(self.trials);
        for (trial, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok(outcome)) => outcomes.push(outcome),
                Some(Err(err)) => return Err(err),
                None => return Err(StabilityError::TrialPanic { trial }),
            }
        }
        Ok(self.summarize(&outcomes))
    }

    /// Validates the inputs and fits everything the trials share: the table
    /// perturbation model (column noise scales computed once), the original
    /// top-k set, and the clamped `k`.
    fn plan(
        &self,
        table: &Table,
        shared_table: Option<&Arc<Table>>,
        scoring: &ScoringFunction,
        ranking: &Ranking,
    ) -> StabilityResult<TrialPlan> {
        if ranking.len() < 2 {
            return Err(StabilityError::TooFewItems {
                available: ranking.len(),
                required: 2,
            });
        }
        if self.trials == 0 {
            return Err(StabilityError::InvalidParameter {
                parameter: "trials",
                message: "at least one trial is required".to_string(),
            });
        }
        let k = self.k.clamp(1, ranking.len());
        let perturber = if self.data_noise > 0.0 {
            let scoring_attributes: Vec<&str> = scoring.attribute_names();
            Some(TablePerturber::fit(
                table,
                &scoring_attributes,
                self.data_noise,
            )?)
        } else {
            None
        };
        // With data noise every trial builds its own perturbed table; without
        // it the trials rank the original, shared without copying when the
        // caller already holds it by `Arc`.
        let table = if perturber.is_some() {
            None
        } else {
            Some(
                shared_table
                    .map(Arc::clone)
                    .unwrap_or_else(|| Arc::new(table.clone())),
            )
        };
        Ok(TrialPlan {
            scoring: scoring.clone(),
            ranking: ranking.clone(),
            perturber,
            table,
            original_top_k: ranking.top_k_indices(k),
            original_top_item: ranking.order()[0],
            k,
            weight_noise: self.weight_noise,
            seed: self.seed,
        })
    }

    /// Folds per-trial outcomes (in trial order) into the summary.  Pure and
    /// order-sensitive only through float summation, which both schedules
    /// perform identically because outcomes arrive indexed by trial.
    fn summarize(&self, outcomes: &[TrialOutcome]) -> MonteCarloSummary {
        let count = outcomes.len() as f64;
        let expected_tau = outcomes.iter().map(|o| o.kendall_tau).sum::<f64>() / count;
        let worst_tau = outcomes
            .iter()
            .map(|o| o.kendall_tau)
            .fold(f64::INFINITY, f64::min);
        let expected_overlap = outcomes.iter().map(|o| o.top_k_overlap).sum::<f64>() / count;
        let top_changes = outcomes.iter().filter(|o| o.top_item_changed).count();
        let verdict = if expected_tau >= self.tau_threshold {
            StabilityVerdict::Stable
        } else {
            StabilityVerdict::Unstable
        };
        MonteCarloSummary {
            trials: outcomes.len(),
            expected_kendall_tau: expected_tau,
            worst_kendall_tau: worst_tau,
            expected_top_k_overlap: expected_overlap,
            top_item_change_rate: top_changes as f64 / count,
            verdict,
        }
    }
}

/// The RNG of one trial: an independent ChaCha stream derived as
/// `seed ⊕ trial` (then expanded through SplitMix64 by `seed_from_u64`).
/// Public so tests and benches can pin the derivation.
#[must_use]
pub fn trial_rng(seed: u64, trial: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ trial as u64)
}

/// What one perturbed re-ranking observed, relative to the original ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Kendall tau between the original and the perturbed ranking.
    pub kendall_tau: f64,
    /// Jaccard overlap of the original and perturbed top-k sets.
    pub top_k_overlap: f64,
    /// Whether the rank-1 item changed.
    pub top_item_changed: bool,
}

/// Everything the trials share, fitted once per evaluation and immutable
/// afterwards — safe to reference from concurrently running trial tasks.
#[derive(Debug)]
struct TrialPlan {
    scoring: ScoringFunction,
    ranking: Ranking,
    /// Fitted perturbation model; `None` when `data_noise == 0`.
    perturber: Option<TablePerturber>,
    /// The unperturbed table, retained only when no data noise is applied.
    table: Option<Arc<Table>>,
    original_top_k: Vec<usize>,
    original_top_item: usize,
    k: usize,
    weight_noise: f64,
    seed: u64,
}

impl TrialPlan {
    /// Runs trial `trial` on its own derived stream: perturb the data, jitter
    /// the weights, re-rank, compare.  Pure in `(plan, trial)`.
    fn run_trial(&self, trial: usize) -> StabilityResult<TrialOutcome> {
        let mut rng = trial_rng(self.seed, trial);
        // Draw order matches the historical estimator: data noise first,
        // then weight jitter.
        let perturbed_table = match &self.perturber {
            Some(perturber) => Some(perturber.perturb(&mut rng)?),
            None => None,
        };
        let scoring = if self.weight_noise > 0.0 {
            perturb_weights(&self.scoring, self.weight_noise, &mut rng)?
        } else {
            self.scoring.clone()
        };
        let table: &Table = match &perturbed_table {
            Some(table) => table,
            None => self.table.as_ref().expect("plan retains the table"),
        };
        let perturbed_ranking = scoring.rank_table(table)?;
        Ok(TrialOutcome {
            kendall_tau: kendall_tau_rankings(&self.ranking, &perturbed_ranking).unwrap_or(0.0),
            top_k_overlap: jaccard(
                &self.original_top_k,
                &perturbed_ranking.top_k_indices(self.k),
            ),
            top_item_changed: perturbed_ranking.order()[0] != self.original_top_item,
        })
    }
}

/// Jaccard similarity of two index sets.
fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let set_a: std::collections::HashSet<usize> = a.iter().copied().collect();
    let set_b: std::collections::HashSet<usize> = b.iter().copied().collect();
    let intersection = set_a.intersection(&set_b).count() as f64;
    let union = set_a.union(&set_b).count() as f64;
    intersection / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_table::Column;

    /// Table whose scores are widely spread: robust to small noise.
    fn spread_table(n: usize) -> Table {
        Table::from_columns(vec![(
            "x",
            Column::from_f64((0..n).map(|i| i as f64 * 10.0).collect()),
        )])
        .unwrap()
    }

    /// Table whose scores are nearly tied: fragile under noise.
    fn clustered_table(n: usize) -> Table {
        Table::from_columns(vec![(
            "x",
            Column::from_f64((0..n).map(|i| 100.0 + 1e-4 * i as f64).collect()),
        )])
        .unwrap()
    }

    #[test]
    fn spread_scores_are_stable_under_noise() {
        let t = spread_table(30);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(50)
            .unwrap()
            .with_noise(0.01, 0.01)
            .unwrap()
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert_eq!(summary.verdict, StabilityVerdict::Stable);
        assert!(summary.expected_kendall_tau > 0.95);
        assert!(summary.expected_top_k_overlap > 0.9);
        assert!(summary.top_item_change_rate < 0.1);
    }

    #[test]
    fn clustered_scores_are_unstable_under_noise() {
        let t = clustered_table(30);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(50)
            .unwrap()
            .with_noise(5.0, 0.0)
            .unwrap()
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert_eq!(summary.verdict, StabilityVerdict::Unstable);
        assert!(summary.expected_kendall_tau < 0.5);
        assert!(summary.expected_top_k_overlap < 0.9);
    }

    #[test]
    fn zero_noise_reproduces_original_ranking() {
        let t = spread_table(20);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(5)
            .unwrap()
            .with_noise(0.0, 0.0)
            .unwrap()
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert!((summary.expected_kendall_tau - 1.0).abs() < 1e-12);
        assert!((summary.expected_top_k_overlap - 1.0).abs() < 1e-12);
        assert_eq!(summary.top_item_change_rate, 0.0);
        assert_eq!(summary.worst_kendall_tau, 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t = spread_table(25);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(20)
            .unwrap()
            .with_seed(7);
        let s1 = estimator.evaluate(&t, &scoring, &ranking).unwrap();
        let s2 = estimator.evaluate(&t, &scoring, &ranking).unwrap();
        assert_eq!(s1, s2);
        // A different seed generally gives a (slightly) different estimate.
        let s3 = MonteCarloStability::new()
            .with_trials(20)
            .unwrap()
            .with_seed(8)
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert_eq!(s3.trials, 20);
    }

    #[test]
    fn parameter_validation() {
        assert!(MonteCarloStability::new().with_trials(0).is_err());
        assert!(MonteCarloStability::new().with_noise(-0.1, 0.0).is_err());
        assert!(MonteCarloStability::new()
            .with_noise(0.1, f64::NAN)
            .is_err());
        let t = spread_table(5);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let tiny = Ranking::from_scores(&[1.0]).unwrap();
        assert!(MonteCarloStability::new()
            .evaluate(&t, &scoring, &tiny)
            .is_err());
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn parallel_trials_match_the_sequential_reference_at_any_worker_count() {
        let t = Arc::new(spread_table(40));
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let estimator = MonteCarloStability::new()
            .with_trials(17)
            .unwrap()
            .with_noise(0.2, 0.1)
            .unwrap()
            .with_seed(99);
        let sequential = estimator.evaluate(&t, &scoring, &ranking).unwrap();
        for workers in [1usize, 2, 5] {
            let scheduler = Scheduler::new(workers);
            let parallel = estimator
                .evaluate_on(&scheduler, &t, &scoring, &ranking)
                .unwrap();
            assert_eq!(sequential, parallel, "{workers} workers");
        }
    }

    #[test]
    fn evaluate_on_runs_exactly_one_task_per_trial() {
        let t = Arc::new(spread_table(20));
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let scheduler = Scheduler::new(3);
        let before = scheduler.executed_jobs();
        MonteCarloStability::new()
            .with_trials(13)
            .unwrap()
            .evaluate_on(&scheduler, &t, &scoring, &ranking)
            .unwrap();
        assert_eq!(scheduler.executed_jobs() - before, 13);
    }

    #[test]
    fn trial_streams_are_independent_and_deterministic() {
        use rand::RngCore;
        let mut a = trial_rng(42, 3);
        let mut a_again = trial_rng(42, 3);
        let mut b = trial_rng(42, 4);
        let mut matched = 0;
        for _ in 0..64 {
            let word = a.next_u64();
            assert_eq!(word, a_again.next_u64());
            if word == b.next_u64() {
                matched += 1;
            }
        }
        assert!(matched < 4, "adjacent trial streams must decorrelate");
    }

    #[test]
    fn k_is_clamped_to_ranking_size() {
        let t = spread_table(5);
        let scoring = ScoringFunction::from_pairs([("x", 1.0)]).unwrap();
        let ranking = scoring.rank_table(&t).unwrap();
        let summary = MonteCarloStability::new()
            .with_trials(3)
            .unwrap()
            .with_k(100)
            .evaluate(&t, &scoring, &ranking)
            .unwrap();
        assert!(summary.expected_top_k_overlap > 0.0);
    }
}
