//! Error type for the stability estimators.

use std::fmt;

/// Result alias used throughout `rf-stability`.
pub type StabilityResult<T> = Result<T, StabilityError>;

/// Errors produced while estimating ranking stability.
#[derive(Debug, Clone, PartialEq)]
pub enum StabilityError {
    /// The ranking (or the requested prefix) has too few items for a slope fit.
    TooFewItems {
        /// Items available.
        available: usize,
        /// Items required.
        required: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        parameter: &'static str,
        /// Constraint description.
        message: String,
    },
    /// An underlying table error.
    Table(rf_table::TableError),
    /// An underlying ranking error.
    Ranking(rf_ranking::RankingError),
    /// An underlying statistics error.
    Stats(rf_stats::StatsError),
    /// A Monte-Carlo trial task panicked on the scheduler.
    TrialPanic {
        /// Zero-based index of the panicked trial.
        trial: usize,
    },
}

impl fmt::Display for StabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StabilityError::TooFewItems {
                available,
                required,
            } => write!(
                f,
                "stability needs at least {required} ranked items, got {available}"
            ),
            StabilityError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            StabilityError::Table(err) => write!(f, "table error: {err}"),
            StabilityError::Ranking(err) => write!(f, "ranking error: {err}"),
            StabilityError::Stats(err) => write!(f, "statistics error: {err}"),
            StabilityError::TrialPanic { trial } => {
                write!(f, "Monte-Carlo trial {trial} panicked on the scheduler")
            }
        }
    }
}

impl std::error::Error for StabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StabilityError::Table(err) => Some(err),
            StabilityError::Ranking(err) => Some(err),
            StabilityError::Stats(err) => Some(err),
            _ => None,
        }
    }
}

impl From<rf_table::TableError> for StabilityError {
    fn from(err: rf_table::TableError) -> Self {
        StabilityError::Table(err)
    }
}

impl From<rf_ranking::RankingError> for StabilityError {
    fn from(err: rf_ranking::RankingError) -> Self {
        StabilityError::Ranking(err)
    }
}

impl From<rf_stats::StatsError> for StabilityError {
    fn from(err: rf_stats::StatsError) -> Self {
        StabilityError::Stats(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_too_few_items() {
        let err = StabilityError::TooFewItems {
            available: 1,
            required: 2,
        };
        assert!(err.to_string().contains("at least 2"));
    }

    #[test]
    fn conversions() {
        let e: StabilityError = rf_table::TableError::Empty { operation: "x" }.into();
        assert!(matches!(e, StabilityError::Table(_)));
        let e: StabilityError = rf_ranking::RankingError::EmptyRanking.into();
        assert!(matches!(e, StabilityError::Ranking(_)));
        let e: StabilityError = rf_stats::StatsError::EmptyInput { operation: "x" }.into();
        assert!(matches!(e, StabilityError::Stats(_)));
    }
}
