//! Slope-based stability — the estimator shown in Figure 2 of the paper.
//!
//! "The stability of the ranking is quantified as the slope of the line that
//! is fit to the score distribution, at the top-10 and over-all.  A score
//! distribution is unstable if scores of items in adjacent ranks are close to
//! each other, and so a very small change in scores will lead to a change in
//! the ranking.  In this example the score distribution is considered
//! unstable if the slope is 0.25 or lower." (paper §2.2)
//!
//! The fit regresses the score against the **normalized rank position**
//! (`0` for rank 1, `1` for the last rank of the slice), so the magnitude of
//! the slope equals the total score spread a straight-line fit attributes to
//! the slice.  With min-max-normalized scores in `[0, 1]` this makes the
//! paper's 0.25 threshold directly meaningful: a slice whose fitted scores
//! span less than a quarter of the score range is called unstable.

use crate::error::{StabilityError, StabilityResult};
use rf_ranking::Ranking;
use rf_stats::LinearFit;

/// Default slope threshold below which a score distribution is called
/// unstable (the value used in the paper's example).
pub const DEFAULT_SLOPE_THRESHOLD: f64 = 0.25;

/// Stable / unstable verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StabilityVerdict {
    /// The score distribution has enough spread for the ranking to be robust.
    Stable,
    /// Scores of adjacent ranks are so close that tiny changes reorder them.
    Unstable,
}

impl StabilityVerdict {
    /// Label used by the rendered widget.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StabilityVerdict::Stable => "stable",
            StabilityVerdict::Unstable => "unstable",
        }
    }

    /// Builds a verdict by comparing a slope magnitude against a threshold.
    #[must_use]
    pub fn from_slope(slope_magnitude: f64, threshold: f64) -> Self {
        if slope_magnitude > threshold {
            StabilityVerdict::Stable
        } else {
            StabilityVerdict::Unstable
        }
    }
}

/// Slope statistics of one slice (top-k or over-all) of the score distribution.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SliceSlope {
    /// Number of items in the slice.
    pub items: usize,
    /// Magnitude of the fitted slope (score units across the whole slice).
    pub slope_magnitude: f64,
    /// Raw (signed) slope of the fit; negative because scores decrease with rank.
    pub raw_slope: f64,
    /// Intercept of the fit (the fitted score at rank 1).
    pub intercept: f64,
    /// R² of the fit.
    pub r_squared: f64,
    /// Verdict at the configured threshold.
    pub verdict: StabilityVerdict,
}

/// The Stability widget's content: slope analysis at the top-k and over-all.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SlopeStability {
    /// Top-k slice analysed (the paper uses k = 10).
    pub k: usize,
    /// Threshold used for the stable/unstable call.
    pub threshold: f64,
    /// Slope statistics of the top-k slice.
    pub top_k: SliceSlope,
    /// Slope statistics of the whole ranking.
    pub overall: SliceSlope,
}

impl SlopeStability {
    /// Overall verdict reported by the summary widget: the ranking is called
    /// stable only when both the top-k and the over-all score distributions
    /// are stable.
    #[must_use]
    pub fn verdict(&self) -> StabilityVerdict {
        if self.top_k.verdict == StabilityVerdict::Stable
            && self.overall.verdict == StabilityVerdict::Stable
        {
            StabilityVerdict::Stable
        } else {
            StabilityVerdict::Unstable
        }
    }

    /// The single stability score shown by the overview widget: the smaller of
    /// the two slope magnitudes (the weakest link).
    #[must_use]
    pub fn stability_score(&self) -> f64 {
        self.top_k.slope_magnitude.min(self.overall.slope_magnitude)
    }

    /// Computes slope stability of `ranking` at prefix `k` with the default
    /// threshold.
    ///
    /// # Errors
    /// Requires at least two ranked items and `2 <= k`.
    pub fn evaluate(ranking: &Ranking, k: usize) -> StabilityResult<Self> {
        Self::evaluate_with_threshold(ranking, k, DEFAULT_SLOPE_THRESHOLD)
    }

    /// Computes slope stability with an explicit threshold.
    ///
    /// # Errors
    /// Requires at least two ranked items, `2 <= k`, and a positive finite
    /// threshold.
    pub fn evaluate_with_threshold(
        ranking: &Ranking,
        k: usize,
        threshold: f64,
    ) -> StabilityResult<Self> {
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(StabilityError::InvalidParameter {
                parameter: "threshold",
                message: format!("threshold must be positive and finite, got {threshold}"),
            });
        }
        let scores = ranking.scores_in_rank_order();
        if scores.len() < 2 {
            return Err(StabilityError::TooFewItems {
                available: scores.len(),
                required: 2,
            });
        }
        let k = k.min(scores.len());
        if k < 2 {
            return Err(StabilityError::TooFewItems {
                available: k,
                required: 2,
            });
        }
        let top_k = slice_slope(&scores[..k], threshold)?;
        let overall = slice_slope(&scores, threshold)?;
        Ok(SlopeStability {
            k,
            threshold,
            top_k,
            overall,
        })
    }
}

/// Fits `score ~ normalized rank` for one slice and derives its verdict.
fn slice_slope(scores_in_rank_order: &[f64], threshold: f64) -> StabilityResult<SliceSlope> {
    let n = scores_in_rank_order.len();
    debug_assert!(n >= 2);
    let x: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
    let fit = match LinearFit::fit(&x, scores_in_rank_order) {
        Ok(fit) => fit,
        // A perfectly constant x cannot happen (n >= 2 distinct positions),
        // but constant scores produce slope 0 through the normal path.
        Err(err) => return Err(StabilityError::Stats(err)),
    };
    let slope_magnitude = fit.slope.abs();
    Ok(SliceSlope {
        items: n,
        slope_magnitude,
        raw_slope: fit.slope,
        intercept: fit.intercept,
        r_squared: fit.r_squared,
        verdict: StabilityVerdict::from_slope(slope_magnitude, threshold),
    })
}

/// Convenience: the slope magnitude of a score distribution given in rank
/// order (best first), fitted against normalized rank.
///
/// # Errors
/// Requires at least two scores.
pub fn score_distribution_slope(scores_in_rank_order: &[f64]) -> StabilityResult<f64> {
    if scores_in_rank_order.len() < 2 {
        return Err(StabilityError::TooFewItems {
            available: scores_in_rank_order.len(),
            required: 2,
        });
    }
    slice_slope(scores_in_rank_order, DEFAULT_SLOPE_THRESHOLD).map(|s| s.slope_magnitude)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking_from_scores(scores: &[f64]) -> Ranking {
        Ranking::from_scores(scores).unwrap()
    }

    #[test]
    fn verdict_threshold_logic() {
        assert_eq!(
            StabilityVerdict::from_slope(0.3, 0.25),
            StabilityVerdict::Stable
        );
        assert_eq!(
            StabilityVerdict::from_slope(0.25, 0.25),
            StabilityVerdict::Unstable
        );
        assert_eq!(StabilityVerdict::Stable.as_str(), "stable");
        assert_eq!(StabilityVerdict::Unstable.as_str(), "unstable");
    }

    #[test]
    fn spread_scores_are_stable() {
        // Scores spread evenly from 1.0 down to 0.0: slope magnitude 1.0.
        let scores: Vec<f64> = (0..20).map(|i| 1.0 - i as f64 / 19.0).collect();
        let ranking = ranking_from_scores(&scores);
        let s = SlopeStability::evaluate(&ranking, 10).unwrap();
        assert_eq!(s.verdict(), StabilityVerdict::Stable);
        assert!((s.overall.slope_magnitude - 1.0).abs() < 1e-9);
        assert!(s.stability_score() > 0.25);
        assert!(s.top_k.r_squared > 0.99);
    }

    #[test]
    fn clustered_scores_are_unstable() {
        // All scores within 0.01 of each other: tiny slope.
        let scores: Vec<f64> = (0..20).map(|i| 0.5 + 0.01 * (i as f64 / 19.0)).collect();
        let ranking = ranking_from_scores(&scores);
        let s = SlopeStability::evaluate(&ranking, 10).unwrap();
        assert_eq!(s.verdict(), StabilityVerdict::Unstable);
        assert!(s.stability_score() < 0.25);
    }

    #[test]
    fn top_k_can_differ_from_overall() {
        // Top 10 scores tightly clustered near 1.0, the rest spread widely:
        // the top-10 is unstable, over-all is stable.
        let mut scores: Vec<f64> = (0..10).map(|i| 0.99 - 0.001 * i as f64).collect();
        scores.extend((0..40).map(|i| 0.9 - i as f64 * 0.02));
        let ranking = ranking_from_scores(&scores);
        let s = SlopeStability::evaluate(&ranking, 10).unwrap();
        assert_eq!(s.top_k.verdict, StabilityVerdict::Unstable);
        assert_eq!(s.overall.verdict, StabilityVerdict::Stable);
        // The summary verdict is the conservative one.
        assert_eq!(s.verdict(), StabilityVerdict::Unstable);
        assert_eq!(s.stability_score(), s.top_k.slope_magnitude);
    }

    #[test]
    fn constant_scores_have_zero_slope() {
        let scores = vec![0.5; 12];
        let ranking = ranking_from_scores(&scores);
        let s = SlopeStability::evaluate(&ranking, 10).unwrap();
        assert_eq!(s.overall.slope_magnitude, 0.0);
        assert_eq!(s.verdict(), StabilityVerdict::Unstable);
    }

    #[test]
    fn k_larger_than_ranking_is_clamped() {
        let scores = vec![0.9, 0.5, 0.1];
        let ranking = ranking_from_scores(&scores);
        let s = SlopeStability::evaluate(&ranking, 10).unwrap();
        assert_eq!(s.k, 3);
        assert_eq!(s.top_k.items, 3);
    }

    #[test]
    fn too_few_items_is_error() {
        let ranking = ranking_from_scores(&[1.0]);
        assert!(matches!(
            SlopeStability::evaluate(&ranking, 10),
            Err(StabilityError::TooFewItems { .. })
        ));
    }

    #[test]
    fn threshold_validation() {
        let ranking = ranking_from_scores(&[1.0, 0.5, 0.0]);
        assert!(SlopeStability::evaluate_with_threshold(&ranking, 3, 0.0).is_err());
        assert!(SlopeStability::evaluate_with_threshold(&ranking, 3, f64::NAN).is_err());
        assert!(SlopeStability::evaluate_with_threshold(&ranking, 3, 0.5).is_ok());
    }

    #[test]
    fn custom_threshold_changes_verdict() {
        let scores: Vec<f64> = (0..10).map(|i| 0.5 - 0.01 * i as f64).collect();
        let ranking = ranking_from_scores(&scores);
        let strict = SlopeStability::evaluate_with_threshold(&ranking, 10, 0.25).unwrap();
        let lenient = SlopeStability::evaluate_with_threshold(&ranking, 10, 0.01).unwrap();
        assert_eq!(strict.verdict(), StabilityVerdict::Unstable);
        assert_eq!(lenient.verdict(), StabilityVerdict::Stable);
    }

    #[test]
    fn slope_helper_matches_struct() {
        let scores: Vec<f64> = (0..15).map(|i| 1.0 - i as f64 * 0.05).collect();
        let ranking = ranking_from_scores(&scores);
        let s = SlopeStability::evaluate(&ranking, 15).unwrap();
        let direct = score_distribution_slope(&ranking.scores_in_rank_order()).unwrap();
        assert!((s.overall.slope_magnitude - direct).abs() < 1e-12);
        assert!(score_distribution_slope(&[1.0]).is_err());
    }

    #[test]
    fn raw_slope_is_negative_for_decreasing_scores() {
        let scores: Vec<f64> = (0..10).map(|i| 1.0 - i as f64 * 0.1).collect();
        let ranking = ranking_from_scores(&scores);
        let s = SlopeStability::evaluate(&ranking, 10).unwrap();
        assert!(s.overall.raw_slope < 0.0);
        assert!(s.overall.slope_magnitude > 0.0);
        // The intercept approximates the top score.
        assert!((s.overall.intercept - 1.0).abs() < 0.05);
    }
}
