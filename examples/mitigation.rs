//! Mitigation: the paper's planned extension (§4) — "methods that help the
//! user mitigate lack of fairness and diversity by suggesting modified
//! scoring functions".
//!
//! The example builds a ranking in which small departments never reach the
//! top-k, asks the mitigation search for alternative weight vectors, and shows
//! how the label's verdicts change under the best suggestion.
//!
//! Run with:
//! ```sh
//! cargo run -p rf-core --example mitigation
//! ```

use rf_core::{LabelConfig, MitigationSearch, NutritionalLabel};
use rf_datasets::CsDepartmentsConfig;
use rf_ranking::ScoringFunction;

fn main() {
    let table = CsDepartmentsConfig::default()
        .generate()
        .expect("dataset generation");

    // A deliberately size-driven recipe: publications and faculty dominate.
    let scoring =
        ScoringFunction::from_pairs([("PubCount", 0.45), ("Faculty", 0.45), ("GRE", 0.10)])
            .expect("valid scoring function");
    let config = LabelConfig::new(scoring)
        .with_top_k(10)
        .with_ingredient_count(2)
        .with_dataset_name("CS departments (synthetic)")
        .with_sensitive_attribute("DeptSizeBin", ["small"])
        .with_diversity_attribute("DeptSizeBin");

    let original = NutritionalLabel::generate(&table, &config).expect("label generation");
    println!("Original recipe headline: {}", original.headline());

    let suggestions = MitigationSearch::new()
        .with_factors(vec![0.25, 0.5, 1.0, 2.0, 4.0])
        .expect("valid factors")
        .with_max_suggestions(5)
        .with_min_similarity(0.1)
        .suggest(&table, &config)
        .expect("mitigation search");

    println!("\nSuggested scoring functions (best first):");
    for (i, suggestion) in suggestions.iter().enumerate() {
        let weights: Vec<String> = suggestion
            .weights
            .iter()
            .map(|w| format!("{}={:.2}", w.attribute, w.weight))
            .collect();
        println!(
            "{}. {}  unfair features: {}  attributes losing categories: {}  similarity to original: {:.2}{}",
            i + 1,
            weights.join(", "),
            suggestion.unfair_features,
            suggestion.attributes_losing_categories,
            suggestion.similarity_to_original,
            if suggestion.is_original { "  (original)" } else { "" },
        );
    }

    // Re-label under the best non-original suggestion to show the change.
    if let Some(best) = suggestions.iter().find(|s| !s.is_original) {
        let new_scoring = ScoringFunction::with_normalization(
            best.weights.clone(),
            config.scoring.normalization(),
        )
        .expect("valid suggested scoring");
        let new_config = LabelConfig {
            scoring: new_scoring,
            ..config
        };
        let relabelled = NutritionalLabel::generate(&table, &new_config).expect("label");
        println!("\nBest suggestion headline: {}", relabelled.headline());
    }
}
