//! Demonstration scenario 2 — COMPAS criminal risk assessment (paper §3).
//!
//! Ranks individuals by a risk score built from the COMPAS decile score and
//! prior offence count, then audits fairness with respect to race and sex.
//! The synthetic generator reproduces the racial score disparity documented
//! by ProPublica, so the Fairness widget flags the protected group.
//!
//! Run with:
//! ```sh
//! cargo run -p rf-core --example compas
//! ```

use rf_core::{LabelConfig, NutritionalLabel};
use rf_datasets::CompasConfig;
use rf_ranking::ScoringFunction;

fn main() {
    // 2,000 rows keeps the example fast; pass the default (6,889) for the
    // full-size scenario used by the benchmark harness.
    let table = CompasConfig::with_rows(2_000)
        .generate()
        .expect("dataset generation");

    // "High risk first": rank by COMPAS decile score plus prior offences —
    // the ordering a decision maker reviewing risk would look at.
    let scoring = ScoringFunction::from_pairs([("decile_score", 0.7), ("priors_count", 0.3)])
        .expect("valid scoring function");

    let config = LabelConfig::new(scoring)
        .with_top_k(100)
        .with_dataset_name("COMPAS recidivism (synthetic)")
        .with_sensitive_attribute("race", ["African-American"])
        .with_sensitive_attribute("sex", ["Female"])
        .with_diversity_attribute("race")
        .with_diversity_attribute("age_cat");

    let label = NutritionalLabel::generate(&table, &config).expect("label generation");
    println!("{}", label.to_text());

    println!("--- Walk-through observations ---");
    for report in &label.fairness.reports {
        println!(
            "* {} = {}: top-{} share {:.1}% vs over-all {:.1}% → {}",
            report.attribute,
            report.protected_value,
            report.proportion.k,
            report.proportion.top_k_proportion * 100.0,
            report.proportion.overall_proportion * 100.0,
            if report.any_unfair() {
                "flagged as UNFAIR"
            } else {
                "fair"
            },
        );
    }
}
