//! Calibrating the fairness measures with the SSDBM 2017 generative model.
//!
//! The Fairness widget turns raw statistics into fair/unfair verdicts, and the
//! paper explains that those statistics were designed around "a generative
//! method to describe rankings that meet a particular fairness criterion
//! (fairness probability f) and are drawn from a dataset with a given
//! proportion of members of a binary protected group (p)" (§2.3).
//!
//! This example reproduces that calibration: it sweeps the fairness
//! probability `f` from strongly suppressing the protected group to strongly
//! boosting it, samples rankings from the generative process at each setting,
//! and reports how rND / rKL / rRD and the pairwise preference respond — the
//! evidence behind the thresholds the widget uses.
//!
//! Run with:
//! ```sh
//! cargo run -p rf-core --example generative_calibration
//! ```

use rf_fairness::GenerativeModel;

fn main() {
    // A population of 1,000 ranked items, 30% of which are protected — the
    // shape of the demo datasets.
    let n = 1_000;
    let n_protected = 300;
    let p = n_protected as f64 / n as f64;
    let runs = 200;

    println!(
        "population: {n} items, {n_protected} protected (p = {p:.2}); {runs} sampled rankings \
         per setting\n"
    );
    println!(
        "{:>6}  {:>10}  {:>10}  {:>10}  {:>10}",
        "f", "rND", "rKL", "rRD", "pairwise"
    );

    for &f in &[0.05, 0.15, p, 0.5, 0.7, 0.9] {
        let model = GenerativeModel::new(n, n_protected, f).expect("valid model");
        let summary = model
            .measure_distribution(runs, 42)
            .expect("measure distribution");
        let marker = if (f - p).abs() < 1e-9 {
            "  <- statistical parity (f = p)"
        } else {
            ""
        };
        println!(
            "{f:>6.2}  {:>10.4}  {:>10.4}  {:>10.4}  {:>10.4}{marker}",
            summary.rnd.mean, summary.rkl.mean, summary.rrd.mean, summary.pairwise.mean
        );
    }

    println!(
        "\nReading the table: every divergence measure bottoms out when the generator places \
         protected items with probability equal to their population share (f = p) and grows as \
         the process departs from parity in either direction, while the pairwise preference \
         crosses 1/2 exactly there — which is why the widget tests it against 1/2."
    );
}
