//! The scoring-function design view (Figure 3 of the paper).
//!
//! Shows the steps a demo user goes through before the label is generated:
//! preview the data, inspect attribute distributions (histograms, raw vs
//! normalized summaries), pick scoring attributes and weights, and preview
//! the resulting ranking.
//!
//! Run with:
//! ```sh
//! cargo run -p rf-core --example scoring_designer
//! ```

use rf_core::DesignView;
use rf_datasets::CsDepartmentsConfig;
use rf_ranking::ScoringFunction;
use rf_table::NormalizationMethod;

fn main() {
    let table = CsDepartmentsConfig::default()
        .generate()
        .expect("dataset generation");

    // Build the design view with min-max normalization (the checkbox at the
    // top-left of Figure 3) and 10-bin histograms.
    let view = DesignView::build(&table, NormalizationMethod::MinMax, 8, 10).expect("design view");

    println!("=== Data preview ({} rows) ===", view.rows);
    println!("{}", view.data_preview);

    println!("=== Candidate attributes ===");
    println!("numeric (scoring):     {:?}", view.numeric_attributes);
    println!("categorical (sensitive): {:?}", view.categorical_attributes);
    println!();

    // Figure 3 shows the distribution of GRE; print its preview.
    if let Some(gre) = view.attribute_preview("GRE") {
        println!("=== Attribute: GRE ===");
        println!(
            "raw:        min {:.1}  median {:.1}  max {:.1}",
            gre.raw_summary.min, gre.raw_summary.median, gre.raw_summary.max
        );
        if let Some(norm) = &gre.normalized_summary {
            println!(
                "normalized: min {:.2}  median {:.2}  max {:.2}",
                norm.min, norm.median, norm.max
            );
        }
        println!("histogram:");
        print!("{}", gre.histogram.to_ascii(40));
        println!();
    }

    // The user picks scoring attributes and weights, then previews the ranking.
    let scoring = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
        .expect("valid scoring function");
    let preview = view
        .preview_ranking(&table, &scoring, 10)
        .expect("ranking preview");

    println!("=== Ranking preview (top-10) ===");
    for (item, score) in preview.top_items.iter().zip(preview.top_scores.iter()) {
        println!("{item:<12} {score:.4}");
    }
}
