//! Quickstart: build a tiny dataset in code, design a scoring function, and
//! print its nutritional label.
//!
//! Run with:
//! ```sh
//! cargo run -p rf-core --example quickstart
//! ```

use rf_core::{LabelConfig, NutritionalLabel};
use rf_ranking::ScoringFunction;
use rf_table::{Column, Table};

fn main() {
    // A small table of CS departments: name, publications, faculty count,
    // average GRE, and a binary department-size attribute.
    let table = Table::from_columns(vec![
        (
            "Dept",
            Column::from_strings([
                "Alpha", "Bravo", "Charlie", "Delta", "Echo", "Foxtrot", "Golf", "Hotel", "India",
                "Juliett", "Kilo", "Lima",
            ]),
        ),
        (
            "PubCount",
            Column::from_f64(vec![
                9.2, 8.7, 7.9, 7.1, 6.4, 5.8, 4.9, 4.1, 3.2, 2.5, 1.8, 0.9,
            ]),
        ),
        (
            "Faculty",
            Column::from_i64(vec![68, 61, 55, 52, 47, 41, 33, 28, 22, 18, 14, 9]),
        ),
        (
            "GRE",
            Column::from_f64(vec![
                161.0, 159.5, 163.0, 160.0, 158.5, 162.0, 159.0, 161.5, 160.5, 158.0, 162.5, 159.8,
            ]),
        ),
        (
            "DeptSizeBin",
            Column::from_strings([
                "large", "large", "large", "large", "large", "large", "small", "small", "small",
                "small", "small", "small",
            ]),
        ),
    ])
    .expect("table construction");

    // The Recipe: 40% publications, 40% faculty, 20% GRE, min-max normalized —
    // the weighting used in the paper's walk-through.
    let scoring = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
        .expect("valid scoring function");

    let config = LabelConfig::new(scoring)
        .with_top_k(5)
        .with_dataset_name("Quickstart departments")
        .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
        .with_diversity_attribute("DeptSizeBin");

    let label = NutritionalLabel::generate(&table, &config).expect("label generation");

    println!("{}", label.to_text());
    println!("Headline: {}", label.headline());
}
