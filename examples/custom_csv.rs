//! Uploading your own dataset: the "fully populated table in CSV format" flow
//! from the paper's §3.
//!
//! The example writes a small CSV to a temporary file, loads it through the
//! dataset loader (which performs the same validation the web tool applies),
//! inspects the dataset summary, and generates a label for a user-specified
//! scoring function.
//!
//! Run with:
//! ```sh
//! cargo run -p rf-core --example custom_csv
//! ```

use rf_core::{LabelConfig, NutritionalLabel};
use rf_datasets::load_csv_file;
use rf_ranking::ScoringFunction;

const CSV: &str = "\
college,graduation_rate,median_earnings,net_price,public
Aurora,0.92,74000,21000,false
Borealis,0.88,69000,14500,true
Cascadia,0.83,61000,11000,true
Dunes,0.79,56000,18000,false
Estuary,0.74,52000,9800,true
Foothills,0.70,49500,15500,false
Glacier,0.66,47000,8700,true
Harbor,0.61,44000,13200,true
Inlet,0.55,41500,16800,false
Juniper,0.49,39000,7900,true
Keystone,0.42,36500,12400,true
Lagoon,0.35,34000,10100,false
";

fn main() {
    // Write the CSV to a temporary location to exercise the file-based loader.
    let path = std::env::temp_dir().join("ranking_facts_custom_dataset.csv");
    std::fs::write(&path, CSV).expect("write temporary CSV");

    let (table, summary) = load_csv_file(&path).expect("CSV loads and validates");
    println!("Loaded {} rows x {} columns", summary.rows, summary.columns);
    println!(
        "Numeric attributes (scoring candidates): {:?}",
        summary.numeric_columns
    );
    println!(
        "Categorical attributes (sensitive candidates): {:?}",
        summary.categorical_columns
    );
    println!();

    // Score colleges: reward graduation rate and earnings, penalize net price.
    let scoring = ScoringFunction::from_pairs([
        ("graduation_rate", 0.5),
        ("median_earnings", 0.3),
        ("net_price", -0.2),
    ])
    .expect("valid scoring function");

    let config = LabelConfig::new(scoring)
        .with_top_k(5)
        .with_dataset_name("College outcomes (user upload)")
        .with_sensitive_attribute("public", ["true", "false"])
        .with_diversity_attribute("public");

    let label = NutritionalLabel::generate(&table, &config).expect("label generation");
    println!("{}", label.to_text());

    std::fs::remove_file(&path).ok();
}
