//! Demonstration scenario 1 — CS departments (Figure 1 of the paper).
//!
//! Generates the synthetic CS Rankings + NRC dataset, ranks departments with
//! the paper's scoring function (PubCount, Faculty, GRE), and prints the full
//! nutritional label plus the walk-through observations from §3:
//! GRE appears in the Recipe but is not material to the outcome, and only
//! large departments reach the top-10.
//!
//! Run with:
//! ```sh
//! cargo run -p rf-core --example cs_rankings
//! ```

use rf_core::{LabelConfig, NutritionalLabel};
use rf_datasets::CsDepartmentsConfig;
use rf_ranking::ScoringFunction;

fn main() {
    let table = CsDepartmentsConfig::default()
        .generate()
        .expect("dataset generation");

    let scoring = ScoringFunction::from_pairs([("PubCount", 0.4), ("Faculty", 0.4), ("GRE", 0.2)])
        .expect("valid scoring function");

    let config = LabelConfig::new(scoring)
        .with_top_k(10)
        .with_ingredient_count(2)
        .with_dataset_name("CS departments (synthetic CSR + NRC)")
        .with_sensitive_attribute("DeptSizeBin", ["large", "small"])
        .with_diversity_attribute("DeptSizeBin")
        .with_diversity_attribute("Region");

    let label = NutritionalLabel::generate(&table, &config).expect("label generation");
    println!("{}", label.to_text());

    // The observations the demo presenter walks the user through (paper §3).
    println!("--- Walk-through observations ---");
    if label
        .ingredients
        .recipe_attributes_not_material
        .contains(&"GRE".to_string())
    {
        println!("* GRE is a scoring attribute but does not correlate with the ranked outcome.");
    }
    if let Some(report) = label
        .diversity
        .reports
        .iter()
        .find(|r| r.attribute == "DeptSizeBin")
    {
        let large_share = report.top_k.proportion_of("large");
        println!(
            "* Large departments make up {:.0}% of the top-10 (vs {:.0}% over-all).",
            large_share * 100.0,
            report.overall.proportion_of("large") * 100.0
        );
    }
    for (attribute, value) in label.fairness.unfair_features() {
        println!("* The ranking is UNFAIR with respect to {attribute} = {value}.");
    }
}
