//! Online set selection with fairness and diversity constraints.
//!
//! The nutritional-label paper builds its Fairness and Diversity widgets on
//! the authors' companion work on constrained set selection (EDBT 2018,
//! reference [11]).  This example runs that machinery on the synthetic
//! COMPAS-like dataset: select 50 individuals for a (hypothetical) review
//! panel by risk score while (a) guaranteeing the non-protected group is not
//! crowded out and (b) capping the protected group — once offline with full
//! information, and once online where candidates arrive in random order and
//! every decision is irrevocable.
//!
//! Run with:
//! ```sh
//! cargo run -p rf-setsel --example online_selection
//! ```

use rf_datasets::CompasConfig;
use rf_setsel::{
    evaluate_online, expected_utility_ratio, offline_select, Candidate, ConstraintSet,
    GroupConstraint, OnlineSelector, OnlineStrategy,
};

fn main() {
    // 2,000 synthetic individuals with the published racial score disparity.
    let table = CompasConfig {
        rows: 2_000,
        ..CompasConfig::default()
    }
    .generate()
    .expect("dataset generation");

    // Utility = COMPAS decile score, grouping attribute = race.
    let candidates = Candidate::from_table(&table, "decile_score", "race").expect("candidate pool");
    println!("candidate pool: {} individuals", candidates.len());

    // Select k = 50 with a floor on the non-protected group and a ceiling on
    // the protected group — a diversity constraint that counteracts the score
    // skew documented by the ProPublica investigation.
    let constraints = ConstraintSet::new(
        50,
        vec![
            GroupConstraint::at_least("Other", 20).expect("valid floor"),
            GroupConstraint::at_most("African-American", 30).expect("valid ceiling"),
        ],
    )
    .expect("consistent constraints");

    // Offline optimum: full information.
    let offline = offline_select(&candidates, &constraints).expect("feasible selection");
    println!(
        "\noffline optimum: total utility {:.0}; per-group counts {:?}; {} item(s) taken only \
         because of a floor",
        offline.total_utility, offline.category_counts, offline.forced_by_floors
    );

    // Online: candidates arrive one at a time in random order.
    for (name, strategy) in [
        ("greedy", OnlineStrategy::Greedy),
        ("secretary (1/e warm-up)", OnlineStrategy::secretary()),
    ] {
        let selector = OnlineSelector::new(constraints.clone(), strategy).expect("valid selector");
        let one_run = selector
            .run_shuffled(&candidates, 42)
            .expect("feasible stream");
        let eval = evaluate_online(&candidates, &constraints, one_run).expect("evaluation");
        let summary = expected_utility_ratio(&candidates, &selector, 100, 7).expect("simulation");
        println!(
            "\nonline strategy: {name}\n  one run (seed 42): utility {:.0} = {:.1}% of the \
             offline optimum; constraints satisfied: {}\n  over 100 random arrival orders: mean \
             ratio {:.3} (min {:.3}, max {:.3}); constraints satisfied in {:.0}% of runs",
            eval.online.total_utility,
            100.0 * eval.utility_ratio,
            eval.constraints_satisfied,
            summary.mean,
            summary.min,
            summary.max,
            100.0 * summary.constraint_satisfaction_rate,
        );
    }

    println!(
        "\nTake-away: the warm-up strategy closes most of the gap to the offline optimum while \
         both strategies always honour the floors and ceilings — the guarantee the widgets rely on."
    );
}
