//! Demonstration scenario 3 — German credit (paper §3).
//!
//! Ranks loan applicants by credit-worthiness and audits fairness with
//! respect to sex and age group.  The synthetic generator applies a mild
//! score penalty to young applicants, so the age-group audit is the
//! interesting one.
//!
//! Run with:
//! ```sh
//! cargo run -p rf-core --example german_credit
//! ```

use rf_core::{LabelConfig, NutritionalLabel};
use rf_datasets::GermanCreditConfig;
use rf_ranking::ScoringFunction;

fn main() {
    let table = GermanCreditConfig::default()
        .generate()
        .expect("dataset generation");

    // Rank by the credit score, refined by employment history and (inversely)
    // by the requested amount relative to the loan duration.
    let scoring = ScoringFunction::from_pairs([
        ("credit_score", 0.7),
        ("employment_years", 0.2),
        ("credit_amount", -0.1),
    ])
    .expect("valid scoring function");

    let config = LabelConfig::new(scoring)
        .with_top_k(100)
        .with_dataset_name("German credit (synthetic)")
        .with_sensitive_attribute("sex", ["female"])
        .with_sensitive_attribute("age_group", ["young"])
        .with_diversity_attribute("housing")
        .with_diversity_attribute("checking_status");

    let label = NutritionalLabel::generate(&table, &config).expect("label generation");
    println!("{}", label.to_text());

    println!("--- Walk-through observations ---");
    for report in &label.fairness.reports {
        println!(
            "* {} = {}: pairwise preference {:.3} (0.5 = parity), p = {:.4} → {}",
            report.attribute,
            report.protected_value,
            report.pairwise.preference_probability,
            report.pairwise.p_value,
            if report.any_unfair() {
                "flagged as UNFAIR"
            } else {
                "fair"
            },
        );
    }
}
