//! FA*IR re-ranking: diagnose an unfair ranking with the Fairness widget's
//! FA*IR test, repair it with the constructive FA*IR algorithm, and compare
//! the label's verdicts before and after.
//!
//! The scenario mirrors the paper's German-credit demonstration (§3): young
//! applicants are pushed down by the credit-worthiness score, the FA*IR test
//! flags the ranking, and re-ranking restores ranked group fairness at a
//! small, quantified utility cost.
//!
//! Run with:
//! ```sh
//! cargo run -p rf-core --example fair_rerank
//! ```

use rf_datasets::GermanCreditConfig;
use rf_fairness::{FairRerank, FairStarTest, ProtectedGroup};
use rf_ranking::ScoringFunction;

fn main() {
    // 1,000 synthetic loan applicants with the documented age-based skew.
    let table = GermanCreditConfig::default()
        .generate()
        .expect("dataset generation");

    // Rank by the credit-worthiness score alone (the pre-populated option of
    // the demo), and audit the top-50 for the protected group age_group=young.
    let scoring =
        ScoringFunction::from_pairs([("credit_score", 1.0)]).expect("valid scoring function");
    let ranking = scoring.rank_table(&table).expect("ranking");
    let group =
        ProtectedGroup::from_table(&table, "age_group", "young").expect("binary protected group");

    let k = 50;
    let p = group.protected_proportion();
    println!(
        "protected feature: age_group=young  (overall proportion {:.1}%)",
        100.0 * p
    );

    // Diagnose.
    let test = FairStarTest::new(k, p).expect("valid test");
    let before = test.evaluate(&group, &ranking).expect("evaluation");
    println!(
        "before re-ranking: {}  (p-value {:.4}; {} young applicants in the top-{k})",
        if before.satisfied { "FAIR" } else { "UNFAIR" },
        before.p_value,
        before.observed_counts.last().copied().unwrap_or(0),
    );

    // Repair.
    let reranker = FairRerank::new(k, p).expect("valid re-ranker");
    let outcome = reranker.rerank(&group, &ranking).expect("feasible re-rank");
    let after = test
        .evaluate(&group, &outcome.reranked)
        .expect("evaluation of the repaired ranking");
    println!(
        "after  re-ranking: {}  (p-value {:.4}; {} young applicants in the top-{k})",
        if after.satisfied { "FAIR" } else { "UNFAIR" },
        after.p_value,
        after.observed_counts.last().copied().unwrap_or(0),
    );

    // What did the repair cost?
    println!(
        "\nrepair cost: {} applicant(s) boosted into the top-{k}; the largest boost moved an \
         applicant up {} positions;\ntotal score sacrificed over the audited prefix: {:.4} \
         (mean {:.4} per position); Kendall tau to the original ranking: {:.4}",
        outcome.boosted_into_top_k.len(),
        outcome.max_rank_boost,
        outcome.total_score_loss,
        outcome.mean_score_loss(),
        outcome.kendall_tau_to_original,
    );

    // The repaired ranking is a permutation of the same applicants: nobody is
    // added or removed, only the order changes.
    assert_eq!(outcome.reranked.len(), ranking.len());
    println!(
        "\nfirst ten of the repaired ranking (row indices): {:?}",
        outcome.reranked.top_k_indices(10)
    );
}
